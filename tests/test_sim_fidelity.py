"""Simulator fidelity cross-validation.

The paper validates its simulator against the real testbed (<= 3 % error,
Section 6.1).  We have no testbed, but we can validate the event-driven
engine against an *independent* reconstruction: the recorded timeline gives
every job's allocation on every inter-event segment, so integrating
throughput over those segments must reproduce each job's work and
completion time exactly (overheads disabled).  This catches any
inconsistency between the engine's closed-form completion projection and
its piecewise progress accounting.
"""

import numpy as np
import pytest

from repro.baselines import make_policy
from repro.cluster import ClusterSpec
from repro.core import JobSpec
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator

MODEL = ThroughputModel()


def build_workload(seed: int, n_jobs: int):
    rng = np.random.default_rng(seed)
    pool = [("resnet50", 128), ("vgg16", 64), ("bert", 64), ("inceptionv3", 128)]
    specs = []
    for i in range(n_jobs):
        name, batch = pool[int(rng.integers(len(pool)))]
        one = MODEL.curve(name, batch).throughput(1)
        seconds = float(rng.uniform(600, 2400))
        submit = float(rng.uniform(0, 1200))
        lam = float(rng.uniform(0.6, 1.4))
        specs.append(
            JobSpec(
                job_id=f"j{i}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + lam * seconds,
                requested_gpus=int(2 ** rng.integers(0, 3)),
            )
        )
    return specs


def reconstruct_progress(result, specs):
    """Integrate throughput over the recorded allocation segments.

    Uses compact-placement curves, which is what the engine's buddy
    placement guarantees for power-of-two blocks.
    """
    by_id = {spec.job_id: spec for spec in specs}
    samples = result.timeline.samples
    integrated = {spec.job_id: 0.0 for spec in specs}
    for current, nxt in zip(samples, samples[1:]):
        dt = nxt.time - current.time
        if dt <= 0:
            continue
        for job_id, gpus in current.allocations.items():
            spec = by_id[job_id]
            curve = MODEL.curve(spec.model_name, spec.global_batch_size)
            integrated[job_id] += curve.effective_throughput(gpus) * dt
    return integrated


@pytest.mark.parametrize("policy_name", ["elasticflow", "edf", "gandiva"])
def test_event_engine_matches_segment_integration(policy_name):
    specs = build_workload(seed=11, n_jobs=12)
    result = Simulator(
        ClusterSpec(2, 8),
        make_policy(policy_name),
        specs,
        throughput=MODEL,
        executor=ElasticExecutor.disabled(),
    ).run()
    integrated = reconstruct_progress(result, specs)
    for spec in specs:
        outcome = result.outcome_of(spec.job_id)
        if outcome.completion_time is None:
            continue
        # The independent integration recovers the job's full work within
        # float tolerance (a <=3e-6 relative error budget, far inside the
        # paper's 3 % simulator-validation bar).
        assert integrated[spec.job_id] == pytest.approx(
            spec.max_iterations, rel=3e-6, abs=1e-2
        ), spec.job_id


def test_completion_times_match_inverse_integration():
    """Each completion lands exactly where the integral crosses the work."""
    specs = build_workload(seed=23, n_jobs=8)
    result = Simulator(
        ClusterSpec(2, 8),
        make_policy("elasticflow"),
        specs,
        throughput=MODEL,
        executor=ElasticExecutor.disabled(),
    ).run()
    samples = result.timeline.samples
    by_id = {spec.job_id: spec for spec in specs}
    for spec in specs:
        outcome = result.outcome_of(spec.job_id)
        if outcome.completion_time is None:
            continue
        curve = MODEL.curve(spec.model_name, spec.global_batch_size)
        accumulated = 0.0
        crossing = None
        for current, nxt in zip(samples, samples[1:]):
            gpus = current.allocations.get(spec.job_id, 0)
            rate = curve.effective_throughput(gpus)
            dt = nxt.time - current.time
            if rate > 0 and accumulated + rate * dt >= spec.max_iterations - 1e-6:
                crossing = current.time + (spec.max_iterations - accumulated) / rate
                break
            accumulated += rate * dt
        assert crossing is not None, spec.job_id
        assert crossing == pytest.approx(outcome.completion_time, rel=1e-6, abs=1e-3)


def test_attained_service_matches_allocation_integral():
    """job.gpu_seconds equals the integral of its allocation over time."""
    specs = build_workload(seed=31, n_jobs=8)
    sim = Simulator(
        ClusterSpec(2, 8),
        make_policy("tiresias"),
        specs,
        throughput=MODEL,
        executor=ElasticExecutor.disabled(),
    )
    result = sim.run()
    samples = result.timeline.samples
    for spec in specs:
        expected = 0.0
        for current, nxt in zip(samples, samples[1:]):
            expected += current.allocations.get(spec.job_id, 0) * (
                nxt.time - current.time
            )
        job = sim.jobs[spec.job_id]
        # The final segment after the last sample contributes nothing (the
        # last sample is the last event, where all allocations are zero).
        assert job.gpu_seconds == pytest.approx(expected, rel=1e-6, abs=1e-3)
