"""Unit tests for the DNN model zoo (paper Table 1)."""

import pytest

from repro.errors import ConfigurationError, UnknownModelError
from repro.profiles import MODEL_ZOO, TABLE1_SETTINGS, ModelProfile, get_model, list_models


class TestZooContents:
    def test_all_table1_models_present(self):
        expected = {"resnet50", "vgg16", "inceptionv3", "bert", "gpt2", "deepspeech2"}
        assert set(MODEL_ZOO) == expected

    def test_list_models_sorted(self):
        assert list_models() == sorted(MODEL_ZOO)

    def test_table1_settings_reference_known_models(self):
        for name, batch in TABLE1_SETTINGS:
            profile = get_model(name)
            assert batch >= 1
            assert profile.name == name

    def test_table1_covers_every_model(self):
        assert {name for name, _ in TABLE1_SETTINGS} == set(MODEL_ZOO)

    def test_tasks_match_table1(self):
        assert get_model("resnet50").task == "cv"
        assert get_model("bert").task == "nlp"
        assert get_model("deepspeech2").task == "speech"

    def test_get_model_unknown_raises(self):
        with pytest.raises(UnknownModelError):
            get_model("alexnet")

    def test_unknown_model_error_names_candidates(self):
        with pytest.raises(UnknownModelError, match="resnet50"):
            get_model("nope")


class TestModelProfile:
    def test_gradient_bytes_fp32(self):
        profile = get_model("resnet50")
        assert profile.gradient_bytes == pytest.approx(25.6e6 * 4)

    def test_checkpoint_larger_than_gradients(self):
        for profile in MODEL_ZOO.values():
            assert profile.checkpoint_bytes > profile.gradient_bytes

    def test_compute_seconds_linear_in_batch(self):
        profile = get_model("resnet50")
        t64 = profile.compute_seconds(64)
        t128 = profile.compute_seconds(128)
        # Affine: doubling the batch less than doubles the time (fixed base).
        assert t64 < t128 < 2 * t64

    def test_compute_seconds_gradient_accumulation(self):
        profile = get_model("gpt2")  # max_local_batch=32
        no_accum = profile.compute_seconds(32)
        accum = profile.compute_seconds(64)
        linear_only = (
            profile.compute_base_ms + profile.compute_per_sample_ms * 64
        ) / 1e3
        # Accumulation adds overhead beyond the linear extrapolation.
        assert accum > linear_only
        assert accum > no_accum

    def test_compute_seconds_rejects_zero_batch(self):
        with pytest.raises(ConfigurationError):
            get_model("vgg16").compute_seconds(0)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelProfile(
                name="bad",
                task="cv",
                dataset="x",
                parameters_m=-1.0,
                compute_base_ms=1.0,
                compute_per_sample_ms=1.0,
                max_local_batch=8,
            )

    def test_zero_per_sample_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelProfile(
                name="bad",
                task="cv",
                dataset="x",
                parameters_m=10.0,
                compute_base_ms=1.0,
                compute_per_sample_ms=0.0,
                max_local_batch=8,
            )
