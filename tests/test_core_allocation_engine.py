"""Tests for the vectorized Algorithm 2 upgrade engine.

The engine path (``_allocate_with_engine``) must be *decision-equivalent*
to the sequential revalidating loop and to the cache-disabled reference —
same final plans, bit for bit — because the escape hatches exist precisely
to prove that.  The equivalence classes here run the identical scenario
under all three configurations and compare the full per-job plans.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdmissionController, Ledger, SlotGrid, allocate_leftover
from repro.core.allocation import Upgrade, _UpgradeEngine
from repro.perf import probe
from repro.perf.coherence import coherence_report
from repro.perf.tables import batched_solver_disabled, planning_cache_disabled

from conftest import synthetic_planning_job

FIG_CURVE = {1: 1.0, 2: 1.5, 4: 2.0}


def unit_grid(horizon: int = 5) -> SlotGrid:
    return SlotGrid(origin=0.0, slot_seconds=1.0, horizon=horizon)


def run_algorithm2(make_infos, grid, capacity, warm_hints=None):
    """Algorithm 1 then Algorithm 2 on fresh views; returns final plans."""
    infos = make_infos()
    controller = AdmissionController(capacity)
    result = controller.plan_shares(infos, grid, stop_on_failure=False)
    decisions = allocate_leftover(
        infos, result.ledger, grid.slot_seconds, warm_hints=warm_hints
    )
    plans = {info.job_id: result.ledger.plan_of(info.job_id) for info in infos}
    return decisions, plans


def assert_three_way_equivalence(make_infos, grid, capacity, warm_hints=None):
    """Engine path == sequential solver == cache-disabled reference."""

    def hints():
        return None if warm_hints is None else dict(warm_hints)

    engine_decisions, engine_plans = run_algorithm2(
        make_infos, grid, capacity, hints()
    )
    with batched_solver_disabled():
        seq_decisions, seq_plans = run_algorithm2(
            make_infos, grid, capacity, hints()
        )
    with planning_cache_disabled():
        ref_decisions, ref_plans = run_algorithm2(
            make_infos, grid, capacity, hints()
        )
    assert engine_decisions == seq_decisions == ref_decisions
    for job_id in engine_plans:
        assert np.array_equal(engine_plans[job_id], seq_plans[job_id])
        assert np.array_equal(engine_plans[job_id], ref_plans[job_id])


class TestEngineEquivalence:
    def test_contended_slo_mix(self):
        grid = unit_grid()

        def make():
            return [
                synthetic_planning_job("a", 3.0, 4.0, grid, 8, FIG_CURVE),
                synthetic_planning_job(
                    "b", 3.0, 4.0, grid, 8, {1: 1.0, 2: 1.9, 4: 3.6}
                ),
                synthetic_planning_job(
                    "c", 2.0, 3.0, grid, 8, {1: 1.0, 2: 1.1, 4: 1.2}
                ),
            ]

        assert_three_way_equivalence(make, grid, 6, warm_hints={})

    def test_best_effort_and_slo_mix(self):
        grid = unit_grid()

        def make():
            return [
                synthetic_planning_job("slo", 3.0, 2.0, grid, 4, FIG_CURVE),
                synthetic_planning_job(
                    "be", 5.0, math.inf, grid, 4, FIG_CURVE, best_effort=True
                ),
            ]

        assert_three_way_equivalence(make, grid, 4, warm_hints={})

    def test_junk_warm_hints_are_harmless(self):
        """Hints pointing at caps outside the ladder must not change plans."""
        grid = unit_grid()

        def make():
            return [
                synthetic_planning_job("a", 3.0, 4.0, grid, 8, FIG_CURVE),
                synthetic_planning_job("b", 2.5, 4.0, grid, 8, FIG_CURVE),
            ]

        junk = {("a", 1): 3, ("b", 1): 999, ("ghost", 1): 2}
        assert_three_way_equivalence(make, grid, 6, warm_hints=junk)

    def test_warm_hints_reused_across_calls(self):
        """A second pass with the hints the first populated stays equivalent."""
        grid = unit_grid()

        def make():
            return [
                synthetic_planning_job("a", 3.0, 4.0, grid, 8, FIG_CURVE),
                synthetic_planning_job("b", 3.0, 4.0, grid, 8, FIG_CURVE),
            ]

        hints: dict = {}
        run_algorithm2(make, grid, 6, hints)  # populate
        assert_three_way_equivalence(make, grid, 6, warm_hints=hints)

    @settings(max_examples=30, deadline=None)
    @given(
        thr2=st.floats(min_value=1.01, max_value=2.0),
        thr4=st.floats(min_value=1.01, max_value=4.0),
        work_a=st.floats(min_value=0.5, max_value=4.0),
        work_b=st.floats(min_value=0.5, max_value=4.0),
        deadline_b=st.floats(min_value=2.0, max_value=5.0),
        capacity=st.integers(min_value=3, max_value=8),
        best_effort=st.booleans(),
    )
    def test_random_instances_equivalent(
        self, thr2, thr4, work_a, work_b, deadline_b, capacity, best_effort
    ):
        grid = unit_grid(horizon=6)
        curve_a = {1: 1.0, 2: thr2, 4: max(thr2, thr4)}
        curve_b = {1: 1.0, 2: thr2 * 0.9 + 0.1}

        def make():
            return [
                synthetic_planning_job("a", work_a, 4.0, grid, 8, curve_a),
                synthetic_planning_job(
                    "b",
                    work_b,
                    math.inf if best_effort else deadline_b,
                    grid,
                    8,
                    curve_b,
                    best_effort=best_effort,
                ),
            ]

        assert_three_way_equivalence(make, grid, capacity, warm_hints={})


class TestEngineState:
    def ledger(self, capacity=8, horizon=5):
        return Ledger(capacity, horizon)

    def test_note_apply_slot0_only_records_past_horizon(self):
        ledger = self.ledger()
        engine = _UpgradeEngine(ledger, None)
        old = np.array([1, 1, 1, 0, 0])
        new = np.array([2, 1, 1, 0, 0])
        engine.note_apply(old, new, version_after=7)
        assert engine._perturb_versions == [7]
        assert engine._perturb_watermarks == [ledger.horizon + 1]

    def test_note_apply_stack_stays_monotone(self):
        ledger = self.ledger()
        engine = _UpgradeEngine(ledger, None)
        engine.note_apply(
            np.array([1, 1, 1, 0, 0]), np.array([2, 1, 1, 0, 0]), 3
        )  # slot 0 only: watermark horizon+1
        engine.note_apply(
            np.array([2, 1, 1, 0, 0]), np.array([2, 1, 2, 0, 0]), 4
        )  # first tail change at slot 2: dominates the earlier entry
        assert engine._perturb_versions == [4]
        assert engine._perturb_watermarks == [2]
        engine.note_apply(
            np.array([2, 1, 2, 0, 0]), np.array([2, 1, 2, 1, 0]), 5
        )  # slot 3: strictly above, so both survive
        assert engine._perturb_versions == [4, 5]
        assert engine._perturb_watermarks == [2, 3]

    def upgrade(self, version, available):
        return Upgrade(
            job_id="a",
            plan=np.zeros(5, dtype=np.int64),
            added_gpus=1,
            priority=0.0,
            tiebreak=0.0,
            ledger_version=version,
            available=available,
        )

    def test_window_undisturbed_without_snapshot(self):
        engine = _UpgradeEngine(self.ledger(), None)
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid(), 4, FIG_CURVE)
        engine.note_apply(np.array([1, 1, 0, 0, 0]), np.array([1, 2, 0, 0, 0]), 9)
        assert engine.window_undisturbed(self.upgrade(1, None), info)

    def test_window_undisturbed_by_version_and_watermark(self):
        engine = _UpgradeEngine(self.ledger(), None)
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid(), 4, FIG_CURVE)
        usable = info.window(1)
        assert usable >= 2
        snapshot = np.full(5, 4, dtype=np.int64)
        # No applies newer than the proposal: undisturbed.
        assert engine.window_undisturbed(self.upgrade(10, snapshot), info)
        # A newer apply whose first tail change is past the window's end.
        engine._perturb_versions.append(11)
        engine._perturb_watermarks.append(1 + usable)
        assert engine.window_undisturbed(self.upgrade(10, snapshot), info)
        # ... but an apply inside the window is inconclusive.
        engine._perturb_versions[-1:] = [12]
        engine._perturb_watermarks[-1:] = [usable]
        assert not engine.window_undisturbed(self.upgrade(10, snapshot), info)
        # Entries at or before the proposal's version never disturb it.
        assert engine.window_undisturbed(self.upgrade(12, snapshot), info)

    def test_try_warm_plan_gates(self):
        ledger = self.ledger()
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid(), 4, FIG_CURVE)
        avail_slots = np.full(5, 4, dtype=np.int64)
        current = np.zeros(5, dtype=np.int64)
        # No hint store at all.
        assert (
            _UpgradeEngine(ledger, None).try_warm_plan(info, avail_slots, current, 2)
            is None
        )
        # Hint store without an entry for this job.
        assert (
            _UpgradeEngine(ledger, {}).try_warm_plan(info, avail_slots, current, 2)
            is None
        )
        # Clamped window: min availability + own plan below the hinted cap.
        clamped = np.array([4, 4, 0, 4, 4], dtype=np.int64)
        engine = _UpgradeEngine(ledger, {("a", 1): 2})
        assert engine.try_warm_plan(info, clamped, current, 2) is None
        # A cap outside the job's ladder (stale hint).
        stale = _UpgradeEngine(ledger, {("a", 1): 3})
        assert stale.try_warm_plan(info, avail_slots, current, 2) is None

    def test_try_warm_plan_matches_fallback(self):
        """An accepted warm plan equals what progressive filling emits."""
        from repro.core.admission import progressive_filling

        ledger = self.ledger()
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid(), 4, FIG_CURVE)
        ledger.set_plan("a", np.array([1, 1, 1, 0, 0], dtype=np.int64))
        avail_slots = ledger.available()
        current = ledger.plan_view("a")
        engine = _UpgradeEngine(ledger, {("a", 1): 1})
        warm = engine.try_warm_plan(info, avail_slots, current, 2)
        assert warm is not None
        plan, top_free, new_cost = warm
        head = np.zeros(5, dtype=np.int64)
        head[0] = 2
        fallback = progressive_filling(
            info, avail_slots + current, start_slot=1, head=head
        )
        assert np.array_equal(plan, fallback)
        assert top_free  # the whole window clears the job's top size
        assert new_cost == info.gpu_seconds_of(plan)
        # The emitted plan is memoized: a second ask returns it verbatim.
        before = engine.counters["alg2_plan_cache_hits"]
        again = engine.try_warm_plan(info, avail_slots, current, 2)
        assert again is not None and again[0] is plan
        assert engine.counters["alg2_plan_cache_hits"] == before + 1

    def test_plan_cache_verdicts(self):
        """Adopted and rejected keys short-circuit without row work."""
        ledger = self.ledger()
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid(), 4, FIG_CURVE)
        avail_slots = np.full(5, 4, dtype=np.int64)
        current = np.zeros(5, dtype=np.int64)
        engine = _UpgradeEngine(ledger, {("a", 1): 1})
        engine.reject_plan("a", 1, 2)
        assert engine.try_warm_plan(info, avail_slots, current, 2) is None
        memo = np.array([2, 1, 1, 1, 0], dtype=np.int64)
        engine.adopt_plan("a", 1, 2, memo, 7.5)
        warm = engine.try_warm_plan(info, avail_slots, current, 2)
        assert warm is not None
        plan, top_free, new_cost = warm
        assert plan is memo and new_cost == 7.5
        # The state-dependent gate still runs on a memo hit.
        clamped = np.array([4, 0, 4, 4, 4], dtype=np.int64)
        assert engine.try_warm_plan(info, clamped, current, 2) is None

    def test_current_cost_memoizes_until_refreshed(self):
        ledger = self.ledger()
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid(), 4, FIG_CURVE)
        engine = _UpgradeEngine(ledger, None)
        plan = np.array([1, 1, 0, 0, 0], dtype=np.int64)
        cost = engine.current_cost(info, plan)
        assert cost == info.gpu_seconds_of(plan)
        # Served from the memo even for a different array (apply updates it).
        other = np.array([4, 4, 4, 4, 4], dtype=np.int64)
        assert engine.current_cost(info, other) == cost
        engine.job_cost["a"] = 42.0
        assert engine.current_cost(info, other) == 42.0

    def test_counters_flush_to_probe(self):
        grid = unit_grid()
        infos = [
            synthetic_planning_job("a", 3.0, 4.0, grid, 8, FIG_CURVE),
            synthetic_planning_job("b", 3.0, 4.0, grid, 8, FIG_CURVE),
        ]
        controller = AdmissionController(6)
        result = controller.plan_shares(infos, grid, stop_on_failure=False)
        probe.reset_counters()
        allocate_leftover(infos, result.ledger, 1.0, warm_hints={})
        counters = probe.counters()
        assert counters["alg2_heap_pushes"] > 0
        assert counters["alg2_heap_pops"] > 0
        assert counters["alg2_heap_pops"] <= counters["alg2_heap_pushes"]
        probe.reset_counters()
        assert probe.counters() == {}


def test_engine_coherence_declarations():
    """Satellite: the engine's shared state is under the coherence linter."""
    report = coherence_report(_UpgradeEngine)
    assert report["coherent_fields"] == {
        "_handles": "verified:try_warm_plan",
        "_perturb_versions": "verified:window_undisturbed",
        "_plan_cache": "verified:try_warm_plan",
    }
    assert report["mutators"]["register"] == ("_handles",)
    assert report["mutators"]["try_warm_plan"] == ("_handles", "_plan_cache")
    assert report["mutators"]["adopt_plan"] == ("_plan_cache",)
    assert report["mutators"]["reject_plan"] == ("_plan_cache",)
    assert report["mutators"]["note_apply"] == ("_perturb_versions",)
