"""Tests for the synthetic trace generators, deadlines, and workload builder."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.profiles import ThroughputModel
from repro.traces import (
    PRODUCTION_CLUSTERS,
    ClusterTraceConfig,
    DeadlineAssigner,
    build_jobs,
    generate_trace,
    philly_config,
)

MODEL = ThroughputModel()


class TestClusterConfigs:
    def test_ten_production_clusters(self):
        assert len(PRODUCTION_CLUSTERS) == 10
        names = {c.name for c in PRODUCTION_CLUSTERS}
        assert len(names) == 10

    def test_sizes_span_paper_range(self):
        sizes = [c.cluster_gpus for c in PRODUCTION_CLUSTERS]
        jobs = [c.n_jobs for c in PRODUCTION_CLUSTERS]
        assert min(sizes) == 128 and max(sizes) == 2048
        assert min(jobs) == 260 and max(jobs) == 15802

    def test_invalid_configs_rejected(self):
        with pytest.raises(TraceError):
            ClusterTraceConfig("x", cluster_gpus=100, n_jobs=10)
        with pytest.raises(TraceError):
            ClusterTraceConfig("x", cluster_gpus=128, n_jobs=0)
        with pytest.raises(TraceError):
            ClusterTraceConfig("x", 128, 10, target_load=0.0)
        with pytest.raises(TraceError):
            ClusterTraceConfig("x", 128, 10, gpu_weights={3: 1.0})
        with pytest.raises(TraceError):
            ClusterTraceConfig("x", 128, 10, burst_fraction=1.0)
        with pytest.raises(TraceError):
            ClusterTraceConfig("x", 128, 10, duration_max_s=10.0)

    def test_scaled_preserves_load(self):
        config = PRODUCTION_CLUSTERS[5]
        small = config.scaled(0.1)
        assert small.cluster_gpus < config.cluster_gpus
        assert small.cluster_gpus & (small.cluster_gpus - 1) == 0
        assert small.target_load == config.target_load
        # Size distribution keys capped at the smaller cluster.
        assert max(small.gpu_weights) <= small.cluster_gpus

    def test_scaled_invalid_factor(self):
        with pytest.raises(TraceError):
            PRODUCTION_CLUSTERS[0].scaled(0.0)
        with pytest.raises(TraceError):
            PRODUCTION_CLUSTERS[0].scaled(2.0)


class TestGenerateTrace:
    def test_deterministic_per_seed(self):
        config = PRODUCTION_CLUSTERS[0]
        a = generate_trace(config, seed=7)
        b = generate_trace(config, seed=7)
        c = generate_trace(config, seed=8)
        assert a.jobs == b.jobs
        assert a.jobs != c.jobs

    def test_row_count_and_validity(self):
        trace = generate_trace(PRODUCTION_CLUSTERS[0], seed=1)
        assert len(trace) == PRODUCTION_CLUSTERS[0].n_jobs
        for job in trace.jobs:
            assert job.n_gpus & (job.n_gpus - 1) == 0
            assert job.duration_s >= 120.0

    def test_sizes_within_cluster(self):
        config = ClusterTraceConfig("tiny", 16, 200, gpu_weights={1: 0.5, 32: 0.5})
        trace = generate_trace(config, seed=1)
        assert all(j.n_gpus <= 16 for j in trace.jobs)

    def test_bursts_create_concentration(self):
        bursty = ClusterTraceConfig(
            "bursty", 128, 1000, burst_fraction=0.5, n_bursts=1
        )
        trace = generate_trace(bursty, seed=1)
        arrivals = np.array([j.submit_time for j in trace.jobs])
        # Half the jobs land inside a window of about 1% of the span, which
        # covers at most two adjacent histogram bins.
        histogram, _ = np.histogram(arrivals, bins=50)
        top_two = np.sort(histogram)[-2:].sum()
        assert top_two >= 0.4 * len(trace)

    def test_philly_config_generates(self):
        trace = generate_trace(philly_config(cluster_gpus=128, n_jobs=300), seed=1)
        assert len(trace) == 300
        ones = sum(j.n_gpus == 1 for j in trace.jobs)
        assert ones / len(trace) > 0.55  # single-GPU dominated


class TestDeadlineAssigner:
    def test_draw_within_range(self):
        assigner = DeadlineAssigner(0.5, 1.5)
        rng = np.random.default_rng(0)
        draws = [assigner.draw(rng) for _ in range(200)]
        assert all(0.5 <= value <= 1.5 for value in draws)

    def test_fixed_lambda(self):
        assigner = DeadlineAssigner(1.5, 1.5)
        rng = np.random.default_rng(0)
        assert assigner.draw(rng) == 1.5

    def test_deadline_after_submission(self):
        from repro.traces import TraceJob

        assigner = DeadlineAssigner()
        rng = np.random.default_rng(0)
        job = TraceJob(job_id="a", submit_time=100.0, n_gpus=2, duration_s=600.0)
        deadline = assigner.deadline_for(job, rng)
        assert 100.0 + 0.5 * 600.0 <= deadline <= 100.0 + 1.5 * 600.0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(TraceError):
            DeadlineAssigner(0.0, 1.0)
        with pytest.raises(TraceError):
            DeadlineAssigner(1.0, 0.5)


class TestBuildJobs:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(PRODUCTION_CLUSTERS[0], seed=3).head(50)

    def test_one_spec_per_row(self, trace):
        specs = build_jobs(trace, MODEL, seed=0)
        assert len(specs) == 50
        assert {s.job_id for s in specs} == {j.job_id for j in trace.jobs}

    def test_deterministic(self, trace):
        assert build_jobs(trace, MODEL, seed=0) == build_jobs(trace, MODEL, seed=0)

    def test_iterations_match_duration_at_requested_size(self, trace):
        specs = build_jobs(trace, MODEL, seed=0)
        by_id = {j.job_id: j for j in trace.jobs}
        for spec in specs:
            row = by_id[spec.job_id]
            rate = MODEL.curve(
                spec.model_name, spec.global_batch_size
            ).effective_throughput(row.n_gpus)
            assert spec.max_iterations == pytest.approx(
                row.duration_s * rate, rel=0.01, abs=1.0
            )

    def test_deadline_tightness_range(self, trace):
        specs = build_jobs(trace, MODEL, seed=0)
        by_id = {j.job_id: j for j in trace.jobs}
        for spec in specs:
            row = by_id[spec.job_id]
            lam = (spec.deadline - spec.submit_time) / row.duration_s
            assert 0.5 - 1e-9 <= lam <= 1.5 + 1e-9

    def test_best_effort_fraction(self, trace):
        specs = build_jobs(trace, MODEL, seed=0, best_effort_fraction=1.0)
        assert all(s.best_effort for s in specs)
        specs = build_jobs(trace, MODEL, seed=0, best_effort_fraction=0.0)
        assert not any(s.best_effort for s in specs)

    def test_empty_trace_rejected(self):
        from repro.traces import Trace

        with pytest.raises(TraceError):
            build_jobs(Trace(name="t", cluster_gpus=8), MODEL)

    def test_invalid_fraction_rejected(self, trace):
        with pytest.raises(TraceError):
            build_jobs(trace, MODEL, best_effort_fraction=1.5)

    def test_empty_pool_rejected(self, trace):
        with pytest.raises(TraceError):
            build_jobs(trace, MODEL, model_pool=())

    @settings(max_examples=10, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_fraction_roughly_respected(self, trace, fraction):
        specs = build_jobs(trace, MODEL, seed=1, best_effort_fraction=fraction)
        share = sum(s.best_effort for s in specs) / len(specs)
        assert abs(share - fraction) < 0.35
