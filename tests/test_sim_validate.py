"""Tests for the public simulation-validation API."""

import numpy as np
import pytest

from repro.baselines import make_policy
from repro.cluster import ClusterSpec
from repro.core import JobSpec
from repro.errors import ConfigurationError
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator, validate_result

MODEL = ThroughputModel()


def workload(seed=7, n_jobs=8):
    rng = np.random.default_rng(seed)
    pool = [("resnet50", 128), ("bert", 64)]
    specs = []
    for i in range(n_jobs):
        name, batch = pool[int(rng.integers(len(pool)))]
        one = MODEL.curve(name, batch).throughput(1)
        seconds = float(rng.uniform(600, 2400))
        submit = float(rng.uniform(0, 600))
        specs.append(
            JobSpec(
                job_id=f"j{i}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + 2.0 * seconds,
            )
        )
    return specs


def run(specs, *, overheads=False, timeline=True, policy="elasticflow"):
    return Simulator(
        ClusterSpec(2, 8),
        make_policy(policy),
        specs,
        throughput=MODEL,
        executor=ElasticExecutor() if overheads else ElasticExecutor.disabled(),
        record_timeline=timeline,
    ).run()


class TestValidateResult:
    def test_overhead_free_run_is_consistent(self):
        specs = workload()
        report = validate_result(run(specs), specs, MODEL)
        assert report.consistent, report.max_relative_error
        assert report.total_implied_stall_seconds == pytest.approx(0.0, abs=1.0)
        assert len(report.jobs) == len(specs)

    def test_every_policy_validates(self):
        specs = workload(seed=9)
        for name in ("edf", "gandiva", "tiresias", "pollux"):
            report = validate_result(run(specs, policy=name), specs, MODEL)
            assert report.consistent, name

    def test_overheads_show_up_as_implied_stall(self):
        specs = workload(seed=3)
        report = validate_result(run(specs, overheads=True), specs, MODEL)
        # Stalls reconcile the books instead of being flagged as errors.
        assert report.consistent
        assert report.total_implied_stall_seconds > 0.0

    def test_missing_timeline_rejected(self):
        specs = workload()
        result = run(specs, timeline=False)
        with pytest.raises(ConfigurationError):
            validate_result(result, specs, MODEL)

    def test_missing_spec_rejected(self):
        specs = workload()
        result = run(specs)
        with pytest.raises(ConfigurationError):
            validate_result(result, specs[:-1], MODEL)

    def test_wrong_throughput_model_is_caught(self):
        """Validating against different curves must expose the mismatch."""
        from repro.profiles import ScaledThroughputModel

        specs = workload()
        result = run(specs)
        report = validate_result(
            result, specs, ScaledThroughputModel(MODEL, 0.5), tolerance=1e-5
        )
        # Half-speed curves under-integrate every job by ~50 %.
        assert not report.consistent
        assert report.max_relative_error > 0.3
