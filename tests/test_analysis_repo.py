"""Repo-level analysis tests: the committed tree is finding-free, and the
``python -m repro.analysis`` CLI honours the documented exit-code contract."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import run_analysis

REPO_ROOT = Path(__file__).parent.parent


def _cli(*argv: str, cwd: Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd or REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def test_live_tree_is_finding_free() -> None:
    report = run_analysis()  # defaults to the installed repro package
    assert not report.findings, [f.format_human() for f in report.findings]
    assert report.ok
    assert report.files_analyzed > 50
    assert report.rules_run == 19
    # The interprocedural engine ran, resolved the acceptance bar of call
    # sites, and reported honest numbers for the rest.
    assert report.callgraph["call_sites"] > 1000
    assert report.callgraph["coverage"] >= 0.95


def test_cli_clean_tree_exits_zero_with_json() -> None:
    result = _cli("--format", "json")
    assert result.returncode == 0, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["ok"] is True
    assert document["counts"]["new"] == 0


def test_cli_lists_all_rules() -> None:
    result = _cli("--list-rules")
    assert result.returncode == 0
    listed = [line.split()[0] for line in result.stdout.splitlines() if line]
    assert len(listed) == 19
    for rule_id in (
        "DET001",
        "CC001",
        "CC005",
        "NH001",
        "SIM001",
        "SUP001",
        "IP001",
        "IP002",
        "IP003",
        "IP004",
        "IP005",
    ):
        assert rule_id in listed


def test_cli_exits_one_on_new_finding(tmp_path: Path) -> None:
    bad = tmp_path / "bad_module.py"
    bad.write_text(
        "# lint-module: repro.core.fixture_cli\n"
        "import time\n"
        "\n"
        "def stamp() -> float:\n"
        "    return time.time()\n"
    )
    result = _cli(
        str(bad),
        "--format",
        "json",
        "--baseline",
        str(tmp_path / "baseline.json"),
    )
    assert result.returncode == 1, result.stdout + result.stderr
    document = json.loads(result.stdout)
    assert document["ok"] is False
    assert [f["rule"] for f in document["findings"]] == ["DET001"]


def test_cli_update_baseline_then_clean(tmp_path: Path) -> None:
    bad = tmp_path / "bad_module.py"
    bad.write_text(
        "# lint-module: repro.core.fixture_cli\n"
        "import time\n"
        "\n"
        "def stamp() -> float:\n"
        "    return time.time()\n"
    )
    baseline = tmp_path / "baseline.json"
    first = _cli(str(bad), "--baseline", str(baseline), "--update-baseline")
    assert first.returncode == 0, first.stdout + first.stderr
    assert json.loads(baseline.read_text())["findings"]
    second = _cli(str(bad), "--baseline", str(baseline))
    assert second.returncode == 0, second.stdout + second.stderr


def test_cli_bench_out_records_budget(tmp_path: Path) -> None:
    bench = tmp_path / "bench.json"
    result = _cli("--bench-out", str(bench))
    assert result.returncode == 0
    record = json.loads(bench.read_text())
    assert record["schema"] == 2
    assert record["files_analyzed"] > 50
    assert record["budget_seconds"] == 10.0
    assert record["within_budget"] is True
    assert record["callgraph"]["coverage"] >= 0.95
    assert len(record["rule_seconds"]) == 19  # a timing for every rule
