"""Tests for allocation plans and the occupancy ledger."""

import numpy as np
import pytest

from repro.core import Ledger
from repro.core.plan import zero_plan
from repro.errors import ConfigurationError, SchedulingError


class TestZeroPlan:
    def test_shape_and_dtype(self):
        plan = zero_plan(4)
        assert plan.tolist() == [0, 0, 0, 0]
        assert plan.dtype == np.int64

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            zero_plan(0)


class TestLedger:
    def test_fresh_ledger_fully_available(self):
        ledger = Ledger(capacity=8, horizon=3)
        assert ledger.available().tolist() == [8, 8, 8]
        assert ledger.job_ids == []

    def test_set_plan_claims_capacity(self):
        ledger = Ledger(capacity=8, horizon=3)
        ledger.set_plan("a", np.array([2, 4, 0]))
        assert ledger.available().tolist() == [6, 4, 8]
        assert ledger.plan_of("a").tolist() == [2, 4, 0]

    def test_replace_plan(self):
        ledger = Ledger(capacity=8, horizon=2)
        ledger.set_plan("a", np.array([4, 4]))
        ledger.set_plan("a", np.array([1, 0]))
        assert ledger.available().tolist() == [7, 8]

    def test_replace_plan_capacity_check_uses_replacement(self):
        ledger = Ledger(capacity=8, horizon=1)
        ledger.set_plan("a", np.array([8]))
        # Swapping a's plan for another size-8 plan is fine.
        ledger.set_plan("a", np.array([8]))
        assert ledger.available().tolist() == [0]

    def test_overflow_rejected_and_state_unchanged(self):
        ledger = Ledger(capacity=8, horizon=2)
        ledger.set_plan("a", np.array([6, 0]))
        with pytest.raises(SchedulingError, match="overflows"):
            ledger.set_plan("b", np.array([4, 0]))
        assert ledger.available().tolist() == [2, 8]
        assert not ledger.has_plan("b")

    def test_remove_plan(self):
        ledger = Ledger(capacity=8, horizon=2)
        ledger.set_plan("a", np.array([3, 3]))
        ledger.remove_plan("a")
        assert ledger.available().tolist() == [8, 8]
        with pytest.raises(SchedulingError):
            ledger.remove_plan("a")

    def test_plan_of_unknown_rejected(self):
        with pytest.raises(SchedulingError):
            Ledger(4, 2).plan_of("ghost")

    def test_clear(self):
        ledger = Ledger(capacity=4, horizon=2)
        ledger.set_plan("a", np.array([1, 1]))
        ledger.clear()
        assert ledger.available().tolist() == [4, 4]
        assert ledger.job_ids == []

    def test_plan_shape_validated(self):
        ledger = Ledger(capacity=4, horizon=2)
        with pytest.raises(SchedulingError):
            ledger.set_plan("a", np.array([1, 1, 1]))

    def test_plan_dtype_validated(self):
        ledger = Ledger(capacity=4, horizon=2)
        with pytest.raises(SchedulingError):
            ledger.set_plan("a", np.array([0.5, 1.0]))

    def test_negative_plan_rejected(self):
        ledger = Ledger(capacity=4, horizon=2)
        with pytest.raises(SchedulingError):
            ledger.set_plan("a", np.array([-1, 1]))

    def test_version_bumps_on_mutation(self):
        ledger = Ledger(capacity=4, horizon=2)
        v0 = ledger.version
        ledger.set_plan("a", np.array([1, 1]))
        v1 = ledger.version
        ledger.remove_plan("a")
        v2 = ledger.version
        assert v0 < v1 < v2

    def test_stored_plan_is_a_copy(self):
        ledger = Ledger(capacity=4, horizon=2)
        source = np.array([1, 1])
        ledger.set_plan("a", source)
        source[0] = 99
        assert ledger.plan_of("a").tolist() == [1, 1]

    def test_used_view_read_only(self):
        ledger = Ledger(capacity=4, horizon=2)
        with pytest.raises(ValueError):
            ledger.used[0] = 3

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Ledger(capacity=0, horizon=2)
        with pytest.raises(ConfigurationError):
            Ledger(capacity=4, horizon=0)
