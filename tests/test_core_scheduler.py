"""Unit tests for ElasticFlowPolicy internals (grid, hysteresis, reserves)."""

import math

import pytest

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, Job, JobSpec
from repro.errors import ConfigurationError
from repro.profiles import ScaledThroughputModel, ThroughputModel
from repro.sim import PolicyContext

MODEL = ThroughputModel()
SMALL = ClusterSpec(n_nodes=2, gpus_per_node=8)


def bound(policy: ElasticFlowPolicy, slot_seconds: float = 600.0) -> ElasticFlowPolicy:
    policy.bind(PolicyContext(cluster=SMALL, throughput=MODEL, slot_seconds=slot_seconds))
    return policy


def job(i, submit=0.0, deadline_rel=3600.0, iters=10_000, n_gpus=0,
        best_effort=False, model="resnet50", batch=128):
    runtime = Job(
        spec=JobSpec(
            job_id=f"j{i}",
            model_name=model,
            global_batch_size=batch,
            max_iterations=iters,
            submit_time=submit,
            deadline=None if best_effort else submit + deadline_rel,
        )
    )
    runtime.mark_admitted(submit)
    runtime.n_gpus = n_gpus
    return runtime


class TestConstruction:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            ElasticFlowPolicy(safety_margin=-0.1)
        with pytest.raises(ConfigurationError):
            ElasticFlowPolicy(deadline_padding_s=-1.0)
        with pytest.raises(ConfigurationError):
            ElasticFlowPolicy(max_horizon=0)
        with pytest.raises(ConfigurationError):
            ElasticFlowPolicy(stability_threshold=-0.1)
        with pytest.raises(ConfigurationError):
            ElasticFlowPolicy(failure_reserve_gpus=-1)


class TestGrid:
    def test_grid_covers_deadlines(self):
        policy = bound(ElasticFlowPolicy())
        grid = policy._grid(0.0, [job(0, deadline_rel=7200.0)])
        assert grid.origin == 0.0
        assert grid.end >= 7200.0

    def test_grid_widens_beyond_max_horizon(self):
        policy = bound(ElasticFlowPolicy(max_horizon=10))
        far = job(0, deadline_rel=1e6)
        grid = policy._grid(0.0, [far])
        assert grid.horizon <= 10
        assert grid.end >= 1e6
        assert grid.slot_seconds > 600.0  # widened

    def test_best_effort_only_gives_minimal_grid(self):
        policy = bound(ElasticFlowPolicy())
        grid = policy._grid(50.0, [job(0, best_effort=True)])
        assert grid.origin == 50.0
        assert grid.horizon == 1


class TestPlanningCapacity:
    def test_full_capacity_without_reserve(self):
        policy = bound(ElasticFlowPolicy())
        assert policy._planning_capacity() == 16

    def test_reserve_withheld_when_healthy(self):
        policy = bound(ElasticFlowPolicy(failure_reserve_gpus=8))
        assert policy._planning_capacity() == 8

    def test_reserve_spent_during_outage(self):
        policy = bound(ElasticFlowPolicy(failure_reserve_gpus=8))
        policy.context.usable_gpus = 8  # one node down
        assert policy._planning_capacity() == 8  # insurance used, not doubled

    def test_outage_beyond_reserve_shrinks_planning(self):
        policy = bound(ElasticFlowPolicy(failure_reserve_gpus=4))
        policy.context.usable_gpus = 8
        assert policy._planning_capacity() == 8


class TestAllocateBasics:
    def test_empty_active_list(self):
        policy = bound(ElasticFlowPolicy())
        assert policy.allocate([], 0.0) == {}

    def test_total_outage_all_zero(self):
        policy = bound(ElasticFlowPolicy())
        policy.context.usable_gpus = 0
        decisions = policy.allocate([job(0)], 0.0)
        assert decisions == {"j0": 0}

    def test_allocations_cover_all_jobs(self):
        policy = bound(ElasticFlowPolicy())
        jobs = [job(i, deadline_rel=3600.0 * (i + 1)) for i in range(3)]
        decisions = policy.allocate(jobs, 0.0)
        assert set(decisions) == {"j0", "j1", "j2"}
        assert sum(decisions.values()) <= 16


class TestStabilize:
    def test_zero_threshold_never_interferes(self):
        eager = bound(ElasticFlowPolicy(stability_threshold=0.0))
        sticky = bound(ElasticFlowPolicy(stability_threshold=0.5))
        fresh = [job(i, deadline_rel=7200.0) for i in range(2)]
        # With no current allocations both behave identically.
        assert eager.allocate(fresh, 0.0) == sticky.allocate(fresh, 0.0)

    def test_small_change_suppressed(self):
        policy = bound(ElasticFlowPolicy(stability_threshold=0.9))
        running = job(0, deadline_rel=86400.0, n_gpus=8)
        decisions = policy.allocate([running], 0.0)
        # A lone job would normally grow to its peak size (16); with an
        # aggressive threshold it keeps its current 8 (the gain is < 90 %).
        assert decisions["j0"] == 8

    def test_deadline_pressure_overrides_hysteresis(self):
        policy = bound(ElasticFlowPolicy(stability_threshold=10.0))
        # Needs far more than 1 GPU to make the deadline.
        one = MODEL.curve("resnet50", 128).throughput(1)
        urgent = job(0, deadline_rel=600.0, iters=int(one * 1800), n_gpus=1)
        decisions = policy.allocate([urgent], 0.0)
        assert decisions["j0"] > 1  # min share forces the move


class TestPlanningThroughputOverride:
    def test_pessimistic_planning_admits_less(self):
        normal = bound(ElasticFlowPolicy())
        pessimist = bound(
            ElasticFlowPolicy(
                planning_throughput=ScaledThroughputModel(MODEL, 0.4)
            )
        )
        one = MODEL.curve("resnet50", 128).throughput(1)
        # Feasible at true speed, infeasible at 0.4x of it (needs > peak).
        peak = MODEL.curve("resnet50", 128).effective_throughput(16)
        seconds = 1200.0
        iters = int(peak * seconds * 0.8)
        candidate = Job(
            spec=JobSpec(
                job_id="edge",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=iters,
                submit_time=0.0,
                deadline=seconds,
            )
        )
        assert normal.admit(candidate, [], 0.0)
        assert not pessimist.admit(candidate, [], 0.0)

    def test_execution_curves_untouched(self):
        policy = bound(
            ElasticFlowPolicy(planning_throughput=ScaledThroughputModel(MODEL, 0.4))
        )
        # The context (execution) model is still the true one.
        true_rate = MODEL.curve("resnet50", 128).throughput(4)
        assert policy.context.curve_for(job(0)).throughput(4) == pytest.approx(
            true_rate
        )
        planning_rate = policy._planning_curve(job(0)).throughput(4)
        assert planning_rate == pytest.approx(0.4 * true_rate)
