"""Tests for Algorithm 2 — greedy marginal-return allocation.

Theorem 2 of the paper states the greedy is optimal for the total-GPU-time
objective under concave curves; ``TestOptimality`` checks this against
brute-force enumeration on small instances.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdmissionController, Ledger, SlotGrid, allocate_leftover
from repro.core.admission import progressive_filling

from conftest import synthetic_planning_job

FIG_CURVE = {1: 1.0, 2: 1.5, 4: 2.0}


def plan_and_allocate(infos, grid, capacity):
    """Run Algorithm 1 then Algorithm 2, as the scheduler does."""
    controller = AdmissionController(capacity)
    result = controller.plan_shares(infos, grid, stop_on_failure=False)
    decisions = allocate_leftover(infos, result.ledger, grid.slot_seconds)
    return decisions, result.ledger


class TestLeftoverAllocation:
    def test_single_job_grows_to_max_useful(self, unit_grid):
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid, 4, FIG_CURVE)
        decisions, _ = plan_and_allocate([info], unit_grid, 4)
        # Min share is 1 GPU; leftovers push it to 4 (throughput still rises).
        assert decisions["a"] == 4

    def test_never_grows_past_throughput_peak(self, unit_grid):
        curve = {1: 1.0, 2: 1.5, 4: 1.5}  # flat beyond 2 workers
        info = synthetic_planning_job("a", 3.0, 4.0, unit_grid, 4, curve)
        decisions, _ = plan_and_allocate([info], unit_grid, 4)
        assert decisions["a"] == 2

    def test_leftovers_favour_cheapest_expansion(self, unit_grid):
        """With one spare GPU, the better marginal return wins it."""
        efficient = synthetic_planning_job(
            "eff", 3.0, 4.0, unit_grid, 8, {1: 1.0, 2: 1.9, 4: 3.6}
        )
        wasteful = synthetic_planning_job(
            "waste", 3.0, 4.0, unit_grid, 8, {1: 1.0, 2: 1.1, 4: 1.2}
        )
        decisions, _ = plan_and_allocate([efficient, wasteful], unit_grid, 3)
        assert decisions["eff"] == 2
        assert decisions["waste"] == 1  # its min share only

    def test_all_gpus_used_when_upgrades_still_help(self, unit_grid):
        """Constraint (7): leftovers are handed out even at negative marginal
        return, as long as the receiving job still speeds up."""
        efficient = synthetic_planning_job(
            "eff", 3.0, 4.0, unit_grid, 8, {1: 1.0, 2: 1.9, 4: 3.6}
        )
        wasteful = synthetic_planning_job(
            "waste", 3.0, 4.0, unit_grid, 8, {1: 1.0, 2: 1.1, 4: 1.2}
        )
        decisions, _ = plan_and_allocate([efficient, wasteful], unit_grid, 4)
        assert sum(decisions.values()) == 4

    def test_capacity_never_exceeded(self, unit_grid):
        infos = [
            synthetic_planning_job(f"j{i}", 2.0, 4.0, unit_grid, 4, FIG_CURVE)
            for i in range(3)
        ]
        decisions, ledger = plan_and_allocate(infos, unit_grid, 4)
        assert sum(decisions.values()) <= 4
        assert np.all(ledger.used <= 4)

    def test_min_shares_preserved(self, unit_grid):
        """Upgrades never shrink anyone below the minimum satisfactory share."""
        tight = synthetic_planning_job("tight", 3.0, 2.0, unit_grid, 4, FIG_CURVE)
        loose = synthetic_planning_job("loose", 1.0, 4.0, unit_grid, 4, FIG_CURVE)
        decisions, ledger = plan_and_allocate([tight, loose], unit_grid, 4)
        # tight needs 2 GPUs in slot 0 to make its deadline.
        assert decisions["tight"] >= 2
        progress = float(
            np.sum(tight.throughput_table[ledger.plan_of("tight")] * tight.weights)
        )
        assert progress >= 3.0 - 1e-6

    def test_deadlines_remain_feasible_after_upgrades(self, unit_grid):
        infos = [
            synthetic_planning_job("a", 3.0, 2.0, unit_grid, 4, FIG_CURVE),
            synthetic_planning_job("b", 3.0, 4.0, unit_grid, 4, FIG_CURVE),
        ]
        _, ledger = plan_and_allocate(infos, unit_grid, 4)
        for info in infos:
            plan = ledger.plan_of(info.job_id)
            progress = float(np.sum(info.throughput_table[plan] * info.weights))
            assert progress >= info.remaining_iterations - 1e-6


class TestBestEffort:
    def test_idle_best_effort_gets_first_leftover(self, unit_grid):
        slo = synthetic_planning_job("slo", 1.0, 4.0, unit_grid, 4, FIG_CURVE)
        be = synthetic_planning_job(
            "be", 5.0, math.inf, unit_grid, 4, FIG_CURVE, best_effort=True
        )
        decisions, _ = plan_and_allocate([slo, be], unit_grid, 4)
        assert decisions["be"] >= 1

    def test_shortest_best_effort_served_first(self, unit_grid):
        """With one spare GPU, SRTF tie-breaking picks the shorter job."""
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=5)
        long_job = synthetic_planning_job(
            "long", 100.0, math.inf, grid, 1, {1: 1.0}, best_effort=True
        )
        short_job = synthetic_planning_job(
            "short", 1.0, math.inf, grid, 1, {1: 1.0}, best_effort=True
        )
        ledger = Ledger(1, 5)
        for info in (long_job, short_job):
            ledger.set_plan(info.job_id, np.zeros(5, dtype=np.int64))
        decisions = allocate_leftover([long_job, short_job], ledger, 1.0)
        assert decisions["short"] == 1
        assert decisions["long"] == 0

    def test_slo_min_shares_before_best_effort(self, unit_grid):
        slo = synthetic_planning_job("slo", 3.0, 2.0, unit_grid, 4, FIG_CURVE)
        be = synthetic_planning_job(
            "be", 50.0, math.inf, unit_grid, 4, FIG_CURVE, best_effort=True
        )
        decisions, ledger = plan_and_allocate([slo, be], unit_grid, 4)
        plan = ledger.plan_of("slo")
        progress = float(np.sum(slo.throughput_table[plan] * slo.weights))
        assert progress >= 3.0 - 1e-6


class TestOptimality:
    """Brute-force verification of Theorem 2 on small instances."""

    def brute_force_best(self, infos, grid, capacity):
        """Minimum total GPU-time over all maximal slot-0 expansions."""
        controller = AdmissionController(capacity)
        base = controller.plan_shares(infos, grid, stop_on_failure=False)
        mins = {i.job_id: int(base.plans[i.job_id][0]) for i in infos}
        options = []
        for info in infos:
            sizes = [s for s in [0] + info.sizes if s >= mins[info.job_id]]
            # Drop sizes beyond the throughput peak (constraint 7).
            peak_sizes = []
            best_thr = -1.0
            for s in sizes:
                thr = float(info.throughput_table[s])
                if thr > best_thr:
                    peak_sizes.append(s)
                    best_thr = thr
            options.append(peak_sizes)
        best_cost = math.inf
        for combo in itertools.product(*options):
            if sum(combo) > capacity:
                continue
            ledger = Ledger(capacity, grid.horizon)
            for info in infos:
                ledger.set_plan(info.job_id, np.zeros(grid.horizon, dtype=np.int64))
            cost = 0.0
            feasible = True
            for info, size in zip(infos, combo):
                head = np.zeros(grid.horizon, dtype=np.int64)
                head[0] = size
                available = ledger.available()
                plan = progressive_filling(info, available, start_slot=1, head=head)
                if plan is None:
                    feasible = False
                    break
                ledger.set_plan(info.job_id, plan)
                cost += float(np.sum(plan * info.weights))
            if not feasible:
                continue
            # Maximality: no job could still grow within leftover capacity.
            leftover = capacity - sum(combo)
            maximal = True
            for info, size in zip(infos, combo):
                nxt = info.next_size_after(size)
                if (
                    nxt is not None
                    and nxt - size <= leftover
                    and info.throughput_table[nxt] > info.throughput_table[size]
                ):
                    maximal = False
                    break
            if maximal:
                best_cost = min(best_cost, cost)
        return best_cost

    @pytest.mark.parametrize(
        "curves,works,deadlines",
        [
            ([FIG_CURVE, FIG_CURVE], [3.0, 3.0], [3.0, 3.5]),
            ([{1: 1.0, 2: 1.8}, {1: 1.0, 2: 1.2}], [2.0, 2.0], [4.0, 4.0]),
            (
                [{1: 1.0, 2: 1.9, 4: 3.4}, {1: 2.0, 2: 3.0}, {1: 0.5, 2: 0.9}],
                [3.0, 4.0, 1.0],
                [4.0, 3.0, 5.0],
            ),
        ],
    )
    def test_greedy_matches_brute_force(self, unit_grid, curves, works, deadlines):
        infos = [
            synthetic_planning_job(f"j{i}", works[i], deadlines[i], unit_grid, 4, c)
            for i, c in enumerate(curves)
        ]
        decisions, ledger = plan_and_allocate(infos, unit_grid, 4)
        greedy_cost = sum(
            float(np.sum(ledger.plan_of(i.job_id) * i.weights)) for i in infos
        )
        brute = self.brute_force_best(
            [
                synthetic_planning_job(
                    f"j{i}", works[i], deadlines[i], unit_grid, 4, c
                )
                for i, c in enumerate(curves)
            ],
            unit_grid,
            4,
        )
        assert greedy_cost == pytest.approx(brute, rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(
        thr2=st.floats(min_value=1.0, max_value=2.0),
        thr2b=st.floats(min_value=1.0, max_value=2.0),
        work_a=st.floats(min_value=0.5, max_value=3.0),
        work_b=st.floats(min_value=0.5, max_value=3.0),
    )
    def test_greedy_never_worse_than_brute_force(self, thr2, thr2b, work_a, work_b):
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        curve_a = {1: 1.0, 2: thr2}
        curve_b = {1: 1.0, 2: thr2b}
        infos = [
            synthetic_planning_job("a", work_a, 4.0, grid, 4, curve_a),
            synthetic_planning_job("b", work_b, 4.0, grid, 4, curve_b),
        ]
        decisions, ledger = plan_and_allocate(infos, grid, 4)
        greedy_cost = sum(
            float(np.sum(ledger.plan_of(i.job_id) * i.weights)) for i in infos
        )
        fresh = [
            synthetic_planning_job("a", work_a, 4.0, grid, 4, curve_a),
            synthetic_planning_job("b", work_b, 4.0, grid, 4, curve_b),
        ]
        brute = self.brute_force_best(fresh, grid, 4)
        assert greedy_cost <= brute + 1e-6
