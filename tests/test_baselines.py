"""Tests for the six baseline schedulers and the ablation variants."""

import numpy as np
import pytest

from repro.baselines import (
    POLICY_NAMES,
    ChronusPolicy,
    EDFPolicy,
    EDFWithAdmissionControl,
    EDFWithElasticScaling,
    GandivaPolicy,
    PolluxPolicy,
    ThemisPolicy,
    TiresiasPolicy,
    floor_power_of_two,
    make_policy,
)
from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, Job, JobSpec
from repro.errors import ConfigurationError
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, PolicyContext, Simulator

MODEL = ThroughputModel()
SMALL = ClusterSpec(n_nodes=2, gpus_per_node=8)
CONTEXT = PolicyContext(cluster=SMALL, throughput=MODEL, slot_seconds=300.0)


def job(i, submit=0.0, deadline_rel=3600.0, requested=2, iters=10000,
        model="resnet50", batch=128, best_effort=False):
    spec = JobSpec(
        job_id=f"j{i}",
        model_name=model,
        global_batch_size=batch,
        max_iterations=iters,
        submit_time=submit,
        deadline=None if best_effort else submit + deadline_rel,
        requested_gpus=requested,
    )
    runtime = Job(spec=spec)
    runtime.mark_admitted(submit)
    return runtime


def bound(policy):
    policy.bind(CONTEXT)
    return policy


class TestFloorPowerOfTwo:
    def test_values(self):
        assert floor_power_of_two(0) == 0
        assert floor_power_of_two(1) == 1
        assert floor_power_of_two(7) == 4
        assert floor_power_of_two(8) == 8
        assert floor_power_of_two(1000) == 512


class TestRegistry:
    def test_all_names_construct(self):
        for name in POLICY_NAMES:
            policy = make_policy(name)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("fifo")

    def test_kwargs_forwarded(self):
        policy = make_policy("elasticflow", safety_margin=0.1)
        assert policy.safety_margin == 0.1


class TestEDF:
    def test_earliest_deadline_scales_out_first(self):
        policy = bound(EDFPolicy())
        urgent = job(0, deadline_rel=600.0)
        relaxed = job(1, deadline_rel=86400.0)
        decisions = policy.allocate([relaxed, urgent], 0.0)
        assert decisions["j0"] >= decisions["j1"]
        # The head job takes its peak-throughput share.
        peak = MODEL.curve("resnet50", 128).max_useful_gpus(16)
        assert decisions["j0"] == min(peak, 16)

    def test_no_admission_control(self):
        policy = bound(EDFPolicy())
        hopeless = job(0, deadline_rel=1.0, iters=10**9)
        assert policy.admit(hopeless, [], 0.0)

    def test_all_gpus_respected(self):
        policy = bound(EDFPolicy())
        jobs = [job(i, deadline_rel=600.0 + i) for i in range(5)]
        decisions = policy.allocate(jobs, 0.0)
        assert sum(decisions.values()) <= 16


class TestGandiva:
    def test_requested_sizes_granted_fifo(self):
        policy = bound(GandivaPolicy())
        first = job(0, submit=0.0, requested=8)
        second = job(1, submit=10.0, requested=8)
        third = job(2, submit=20.0, requested=8)
        decisions = policy.allocate([first, second, third], 30.0)
        assert decisions["j0"] == 8
        assert decisions["j1"] == 8
        assert decisions["j2"] == 0  # queued

    def test_backfill_around_blocked_head(self):
        policy = bound(GandivaPolicy())
        running = job(0, submit=0.0, requested=8)
        running.n_gpus = 8
        blocked = job(1, submit=10.0, requested=8, model="gpt2", batch=256)
        blocked.n_gpus = 8
        small = job(2, submit=20.0, requested=4)
        queued_big = job(3, submit=15.0, requested=8)
        # 16 GPUs busy; release one runner to leave 8 free.
        blocked.n_gpus = 0
        decisions = policy.allocate([running, blocked, small, queued_big], 30.0)
        assert decisions["j0"] == 8
        # FIFO among queued jobs: j1 (earliest queued) wins the free block,
        # then j3 and j2 cannot fit and wait.
        assert decisions["j1"] == 8
        assert decisions["j3"] == 0
        assert decisions["j2"] == 0

    def test_running_jobs_keep_priority(self):
        policy = bound(GandivaPolicy())
        late_but_running = job(0, submit=100.0, requested=8)
        late_but_running.n_gpus = 8
        also_running = job(1, submit=150.0, requested=8)
        also_running.n_gpus = 8
        early_but_queued = job(2, submit=0.0, requested=8)
        decisions = policy.allocate(
            [late_but_running, also_running, early_but_queued], 200.0
        )
        assert decisions["j0"] == 8
        assert decisions["j1"] == 8
        assert decisions["j2"] == 0


class TestTiresias:
    def test_low_attained_service_preempts(self):
        policy = bound(TiresiasPolicy())
        veterans = [job(i, submit=0.0, requested=8) for i in range(2)]
        for veteran in veterans:
            veteran.gpu_seconds = 10 * 3600.0  # demoted queue
        newcomer = job(2, submit=500.0, requested=8)
        decisions = policy.allocate(veterans + [newcomer], 600.0)
        assert decisions["j2"] == 8
        # Only one veteran still fits; the other is preempted.
        assert sorted(decisions[f"j{i}"] for i in range(2)) == [0, 8]

    def test_same_queue_is_fifo(self):
        policy = bound(TiresiasPolicy())
        first = job(0, submit=0.0, requested=8)
        second = job(1, submit=10.0, requested=8)
        decisions = policy.allocate([second, first], 20.0)
        assert decisions["j0"] == 8
        assert decisions["j1"] == 8

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            TiresiasPolicy(queue_thresholds_gpu_hours=(0.0,))
        with pytest.raises(ConfigurationError):
            TiresiasPolicy(queue_thresholds_gpu_hours=(2.0, 1.0))

    def test_queue_index(self):
        policy = TiresiasPolicy(queue_thresholds_gpu_hours=(1.0, 4.0))
        fresh = job(0)
        fresh.gpu_seconds = 0.0
        mid = job(1)
        mid.gpu_seconds = 2 * 3600.0
        old = job(2)
        old.gpu_seconds = 10 * 3600.0
        assert policy.queue_index(fresh) == 0
        assert policy.queue_index(mid) == 1
        assert policy.queue_index(old) == 2


class TestThemis:
    def test_worst_fairness_served_first(self):
        policy = bound(ThemisPolicy())
        starved = job(0, submit=0.0, requested=16)  # waited long, no GPUs
        fresh = job(1, submit=9_000.0, requested=16)
        # Both jobs request 16 but resnet50@128 peaks at 8 GPUs.
        now = 10_000.0
        rho_starved = policy.finish_time_fairness(starved, now)
        rho_fresh = policy.finish_time_fairness(fresh, now)
        assert rho_starved > rho_fresh
        decisions = policy.allocate([fresh, starved], now)
        assert decisions["j0"] >= decisions["j1"]
        assert decisions["j0"] == 8  # requested 16, capped at the peak size

    def test_fairness_at_submission_is_one(self):
        policy = bound(ThemisPolicy())
        fresh = job(0, submit=0.0, requested=4)
        assert policy.finish_time_fairness(fresh, 0.0) == pytest.approx(1.0)

    def test_running_job_fairness_accounts_current_rate(self):
        policy = bound(ThemisPolicy())
        shrunk = job(0, submit=0.0, requested=8)
        shrunk.n_gpus = 1  # running far below its request
        rho = policy.finish_time_fairness(shrunk, 100.0)
        assert rho > 1.0


class TestChronus:
    def test_drops_infeasible_job(self):
        policy = bound(ChronusPolicy())
        hopeless = job(0, deadline_rel=10.0, iters=10**8, requested=1)
        assert not policy.admit(hopeless, [], 0.0)

    def test_admits_feasible_job(self):
        policy = bound(ChronusPolicy())
        easy = job(0, deadline_rel=86400.0, iters=1000, requested=2)
        assert policy.admit(easy, [], 0.0)

    def test_best_effort_always_admitted(self):
        policy = bound(ChronusPolicy())
        be = job(0, best_effort=True, iters=10**8, requested=1)
        assert policy.admit(be, [], 0.0)

    def test_non_elastic_allocation(self):
        """Chronus never exceeds a job's requested size."""
        policy = bound(ChronusPolicy())
        lone = job(0, deadline_rel=86400.0, requested=2)
        decisions = policy.allocate([lone], 0.0)
        assert decisions["j0"] <= 2

    def test_best_effort_packed_into_leftovers(self):
        policy = bound(ChronusPolicy())
        slo = job(0, deadline_rel=86400.0, requested=2)
        be = job(1, best_effort=True, requested=4)
        decisions = policy.allocate([slo, be], 0.0)
        assert decisions["j1"] == 4


class TestPollux:
    def test_spreads_before_growing(self):
        policy = bound(PolluxPolicy())
        jobs = [job(i, requested=1) for i in range(4)]
        decisions = policy.allocate(jobs, 0.0)
        assert all(decisions[f"j{i}"] >= 1 for i in range(4))

    def test_elastic_beyond_request(self):
        policy = bound(PolluxPolicy())
        lone = job(0, requested=1)
        decisions = policy.allocate([lone], 0.0)
        assert decisions["j0"] > 1  # elasticity ignores the request

    def test_never_deadline_aware(self):
        policy = bound(PolluxPolicy())
        hopeless = job(0, deadline_rel=1.0, iters=10**9)
        assert policy.admit(hopeless, [], 0.0)

    def test_capacity_respected(self):
        policy = bound(PolluxPolicy())
        jobs = [job(i) for i in range(10)]
        decisions = policy.allocate(jobs, 0.0)
        assert sum(decisions.values()) <= 16


class TestVariants:
    def test_edf_ac_admits_like_elasticflow(self):
        gate = bound(EDFWithAdmissionControl())
        hopeless = job(0, deadline_rel=10.0, iters=10**9)
        assert not gate.admit(hopeless, [], 0.0)
        easy = job(1, deadline_rel=86400.0, iters=100)
        assert gate.admit(easy, [], 0.0)

    def test_edf_ac_allocates_like_edf(self):
        variant = bound(EDFWithAdmissionControl())
        plain = bound(EDFPolicy())
        jobs = [job(i, deadline_rel=600.0 * (i + 1)) for i in range(3)]
        assert variant.allocate(jobs, 0.0) == plain.allocate(jobs, 0.0)

    def test_edf_es_admits_everything(self):
        variant = bound(EDFWithElasticScaling())
        hopeless = job(0, deadline_rel=10.0, iters=10**9)
        assert variant.admit(hopeless, [], 0.0)

    def test_edf_es_allocates_like_elasticflow(self):
        variant = bound(EDFWithElasticScaling())
        reference = bound(ElasticFlowPolicy())
        jobs = [job(i, deadline_rel=3600.0 * (i + 1)) for i in range(3)]
        assert variant.allocate(jobs, 0.0) == reference.allocate(jobs, 0.0)


class TestEndToEndComparison:
    """All policies drive a contended workload without crashing, and the
    deadline-aware elastic policy comes out on top."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(42)
        specs = []
        pool = [("resnet50", 128), ("vgg16", 64), ("bert", 64), ("gpt2", 128)]
        for i in range(30):
            name, batch = pool[rng.integers(len(pool))]
            one = MODEL.curve(name, batch).throughput(1)
            duration = float(rng.uniform(1200, 7200))
            submit = float(rng.uniform(0, 7200))
            lam = float(rng.uniform(0.5, 1.5))
            specs.append(
                JobSpec(
                    job_id=f"job-{i}",
                    model_name=name,
                    global_batch_size=batch,
                    max_iterations=max(1, int(one * duration)),
                    submit_time=submit,
                    deadline=submit + lam * duration,
                    requested_gpus=int(2 ** rng.integers(0, 4)),
                )
            )
        return specs

    @pytest.fixture(scope="class")
    def results(self, workload):
        outcomes = {}
        for name in POLICY_NAMES:
            sim = Simulator(
                SMALL,
                make_policy(name),
                workload,
                throughput=MODEL,
                executor=ElasticExecutor.disabled(),
            )
            outcomes[name] = sim.run()
        return outcomes

    def test_all_policies_finish(self, results):
        for name, result in results.items():
            assert result.completed_count + result.dropped_count == 30, name

    def test_elasticflow_guarantee(self, results):
        for outcome in results["elasticflow"].outcomes:
            if outcome.admitted:
                assert outcome.met_deadline

    def test_elasticflow_wins_or_ties(self, results):
        best = results["elasticflow"].deadline_satisfactory_ratio
        for name, result in results.items():
            assert best >= result.deadline_satisfactory_ratio - 1e-9, name

    def test_deadline_aware_beats_oblivious(self, results):
        oblivious = max(
            results[name].deadline_satisfactory_ratio
            for name in ("gandiva", "tiresias", "themis")
        )
        assert results["elasticflow"].deadline_satisfactory_ratio >= oblivious
