"""Regression coverage for the persistent per-event planning layers.

Four layers replaced the per-event rebuild-everything pattern: the
persistent planning frame (``scheduler._PlanningFrame``), the vectorized
sim advance (``engine._ProgressSoA``), the Algorithm 2 seed index
(``allocation.UpgradeSeedIndex``), and the fused commit runs in
``admission._fill_batched``.  Each keeps an escape hatch in
:mod:`repro.perf.tables`; this module proves, per hatch, that engaging it
changes no scheduling decision — and pins the supporting invariants (the
slot-grid batch math the frame relies on, the rate-memo eviction, the
seed index's self-validation).
"""

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topology import ClusterSpec
from repro.core.allocation import UpgradeSeedIndex
from repro.core.scheduler import ElasticFlowPolicy
from repro.core.slots import SlotGrid
from repro.perf.tables import (
    fused_commit_disabled,
    planning_frame_disabled,
    reset_cache,
    seed_index_disabled,
    sim_vector_disabled,
)
from repro.profiles import ThroughputModel
from repro.sim.engine import Simulator
from repro.traces.synthetic import ClusterTraceConfig, generate_trace
from repro.traces.workload import build_jobs

from conftest import synthetic_planning_job


# ------------------------------------------------------- slot-grid batch math
@st.composite
def grid_instances(draw):
    origin = draw(
        st.floats(min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False)
    )
    slot_seconds = draw(st.floats(min_value=0.01, max_value=3600.0))
    horizon = draw(st.integers(min_value=1, max_value=64))
    grid = SlotGrid(origin=origin, slot_seconds=slot_seconds, horizon=horizon)
    n = draw(st.integers(min_value=1, max_value=8))
    deadlines = []
    for _ in range(n):
        if draw(st.booleans()):
            deadlines.append(math.inf)
        else:
            # Deadlines before, inside, and past the horizon are all legal.
            deadlines.append(
                origin
                + draw(st.floats(min_value=-1.0, max_value=float(horizon) + 2.0))
                * slot_seconds
            )
    return grid, deadlines


class TestSlotGridBatchEquivalence:
    """The planning frame's correctness anchor: the batched weight matrix
    and window ends must be bit-identical to the scalar per-job path for
    any origin, slot width, and deadline mix (including infinities)."""

    @settings(max_examples=300, deadline=None)
    @given(grid_instances())
    def test_weights_matrix_rows_bit_identical(self, instance):
        grid, deadlines = instance
        rows = grid.weights_matrix(np.asarray(deadlines, dtype=np.float64))
        assert rows.shape == (len(deadlines), grid.horizon)
        assert not rows.flags.writeable
        for i, deadline in enumerate(deadlines):
            scalar = grid.weights_until(deadline)
            assert np.array_equal(rows[i], scalar), (
                f"row {i} (deadline {deadline}) diverged from weights_until"
            )

    @settings(max_examples=300, deadline=None)
    @given(grid_instances())
    def test_window_ends_match_scalar_windows(self, instance):
        grid, deadlines = instance
        ends = grid.window_ends(np.asarray(deadlines, dtype=np.float64))
        for i, deadline in enumerate(deadlines):
            weights = grid.weights_until(deadline)
            nonzero = np.flatnonzero(weights)
            scalar = int(nonzero[-1]) + 1 if nonzero.size else 0
            assert int(ends[i]) == scalar, (
                f"window end for deadline {deadline} diverged from the "
                f"last-nonzero-weight scan"
            )


# --------------------------------------------------------- escape-hatch parity
def _simulate(specs, cluster, throughput, *, record_timeline=False):
    sim = Simulator(
        cluster,
        ElasticFlowPolicy(
            safety_margin=0.03, deadline_padding_s=60.0, stability_threshold=0.3
        ),
        specs,
        throughput=throughput,
        slot_seconds=600.0,
        record_timeline=record_timeline,
    )
    return sim, sim.run()


def _digest(result):
    return sorted(
        (
            o.job_id,
            o.status.value,
            o.admitted,
            o.completion_time,
            o.scale_events,
        )
        for o in result.outcomes
    )


def _workload(seed):
    config = ClusterTraceConfig(
        "persistent-layers",
        64,
        120,
        target_load=1.1,
        duration_median_s=2000.0,
        duration_sigma=1.2,
    )
    trace = generate_trace(config, seed=seed)
    throughput = ThroughputModel()
    specs = build_jobs(trace, throughput, seed=seed)
    cluster = ClusterSpec(n_nodes=8, gpus_per_node=8)
    return specs, cluster, throughput


HATCHES = {
    "planning_frame": planning_frame_disabled,
    "sim_vector": sim_vector_disabled,
    "seed_index": seed_index_disabled,
    "fused_commit": fused_commit_disabled,
}


class TestEscapeHatchParity:
    """Each persistent layer's escape hatch must be decision-neutral: the
    same seeded trace produces a byte-identical outcome digest with the
    layer on (default) and off (hatch engaged) — and with all four off."""

    @pytest.mark.parametrize("hatch", sorted(HATCHES))
    def test_single_hatch_is_decision_neutral(self, hatch):
        specs, cluster, throughput = _workload(seed=7)
        reset_cache()
        _, default = _simulate(specs, cluster, throughput)
        with HATCHES[hatch]():
            _, hatched = _simulate(specs, cluster, throughput)
        assert _digest(default) == _digest(hatched), (
            f"{hatch} escape hatch changed scheduling decisions"
        )

    def test_all_hatches_together_are_decision_neutral(self):
        specs, cluster, throughput = _workload(seed=13)
        reset_cache()
        _, default = _simulate(specs, cluster, throughput)
        with (
            planning_frame_disabled(),
            sim_vector_disabled(),
            seed_index_disabled(),
            fused_commit_disabled(),
        ):
            _, hatched = _simulate(specs, cluster, throughput)
        assert _digest(default) == _digest(hatched)


# ------------------------------------------------------------ rate-memo leak
def test_rate_memo_evicted_at_completion():
    """Completed jobs must leave no rate-memo entries behind: on a trace
    where the simulator runs to completion the memo ends empty, so it can
    no longer grow one entry set per job ever run (the leak this guards
    against)."""
    specs, cluster, throughput = _workload(seed=7)
    reset_cache()
    sim, result = _simulate(specs, cluster, throughput)
    completed = [o for o in result.outcomes if o.status.value == "completed"]
    assert completed, "workload must complete jobs for the test to bite"
    assert sim._rate_memo == {}, (
        f"rate memo leaked entries for {sorted(sim._rate_memo)[:5]}..."
    )


# ------------------------------------------------------------- seed index
class TestUpgradeSeedIndex:
    def _info(self, grid, thr, token):
        info = synthetic_planning_job("j0", 10.0, 4.0, grid, 8, thr)
        return replace(info, tables_token=token)

    def test_lookup_matches_inline_gates(self, unit_grid):
        index = UpgradeSeedIndex()
        info = self._info(unit_grid, {1: 1.0, 2: 1.5, 4: 1.5}, token=3)
        # From size 1 the ladder's next size is 2 and it strictly improves.
        assert index.lookup(info, 1) == 2
        # From size 2 the next size (4) does not improve: verdict is None.
        assert index.lookup(info, 2) is None
        # Top of the ladder: nothing above 4.
        assert index.lookup(info, 4) is None

    def test_hits_self_validate_on_token_and_size(self, unit_grid):
        index = UpgradeSeedIndex()
        info = self._info(unit_grid, {1: 1.0, 2: 1.5}, token=3)
        assert index.lookup(info, 1) == 2
        assert index.lookup(info, 1) == 2
        assert index.hits == 1 and index.misses == 1
        # A different current size misses (entry overwritten, still exact).
        assert index.lookup(info, 2) is None
        assert index.misses == 2
        # A tables rebuild (new token) invalidates via the token compare.
        rebuilt = self._info(unit_grid, {1: 1.0, 2: 1.5}, token=4)
        assert index.lookup(rebuilt, 2) is None
        assert index.misses == 3

    def test_invalidate_and_prune(self, unit_grid):
        index = UpgradeSeedIndex()
        info = self._info(unit_grid, {1: 1.0, 2: 1.5}, token=3)
        index.lookup(info, 1)
        index.invalidate(frozenset({"j0", "missing"}))
        assert index.invalidations == 1
        # The entry is gone: the same lookup misses again.
        index.lookup(info, 1)
        assert index.misses == 2
        assert index.prune({"someone-else"}) == 1
        # Under the bound, prune is a no-op even for dead entries.
        index.lookup(info, 1)
        assert index.prune({"someone-else"}, bound=8) == 0
        assert index.prune({"someone-else"}, bound=0) == 1


# ------------------------------------------------------ event-scoped rows
class TestEventRowStore:
    """The event-scoped ``WarmRowBatch`` (``_event_batch_for``) must reset
    whenever the grid or the tables move, and its delta fast accepts must
    land plans bit-identical to the sequential refill they replace."""

    THR = {1: 1.0, 2: 1.8, 8: 3.0}
    CAPACITY = 9

    def _infos(self, grid, ids, remaining, deadline):
        infos = []
        for i, job_id in enumerate(ids):
            info = synthetic_planning_job(
                job_id, remaining, deadline, grid, self.CAPACITY, self.THR
            )
            infos.append(replace(info, tables_token=i + 1))
        return infos

    def test_rows_reset_when_grid_moves(self):
        from repro.core.admission import AdmissionController

        reset_cache()
        ctrl = AdmissionController(self.CAPACITY)
        grid1 = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=8)
        ids = ["j0", "j1", "j2", "j3"]
        # Event 1 seeds the warm hints (full scans; no rows yet).
        ctrl.plan_shares(
            self._infos(grid1, ids, 5.0, 4.0), grid1, stop_on_failure=False
        )
        # Event 2 (new origin): the cold batched fill prepares one row per
        # hinted job and stamps the store with this event's key.
        grid2 = SlotGrid(origin=0.5, slot_seconds=1.0, horizon=8)
        ctrl.plan_shares(
            self._infos(grid2, ids, 5.0, 4.0), grid2, stop_on_failure=False
        )
        assert ctrl._event_key is not None and ctrl._event_key[0] == 0.5
        assert len(ctrl._event_rows) == len(ids)
        # Event 3 (origin moved again): the store resets before reuse, so
        # no stale row built against the old weights can ever be read.
        grid3 = SlotGrid(origin=1.5, slot_seconds=1.0, horizon=8)
        ctrl.plan_shares(
            self._infos(grid3, ids, 5.0, 4.0), grid3, stop_on_failure=False
        )
        assert ctrl._event_key[0] == 1.5
        assert len(ctrl._event_rows) == len(ids)

    def test_delta_fast_accepts_are_bit_identical(self):
        from repro.core.admission import AdmissionController

        reset_cache()
        ctrl = AdmissionController(self.CAPACITY)
        grid1 = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=8)
        ids = ["j0", "j1", "j2", "j3"]
        ctrl.plan_shares(
            self._infos(grid1, ids, 5.0, 4.0), grid1, stop_on_failure=False
        )
        grid2 = SlotGrid(origin=0.5, slot_seconds=1.0, horizon=8)
        baseline = self._infos(grid2, ids, 5.0, 4.0)
        ctrl.plan_shares(baseline, grid2, stop_on_failure=False)
        # Arrival trial at the same event: an earlier-deadline candidate
        # perturbs the suffix, forcing refills of the non-slack jobs whose
        # rows the baseline fill just solved.
        arrival = replace(
            synthetic_planning_job(
                "new", 1.5, 3.4, grid2, self.CAPACITY, self.THR
            ),
            tables_token=50,
        )
        trial_infos = [arrival] + self._infos(grid2, ids, 5.0, 4.0)
        trial = ctrl.plan_shares(trial_infos, grid2, stop_on_failure=False)
        assert ctrl.delta_fast_accepts > 0, (
            "the trial delta never hit the event-row fast accept; the "
            "scenario no longer exercises the reuse tier"
        )
        # A fresh controller solves the identical trial set cold (no
        # hints, no rows, no retained fill): every plan must match bit
        # for bit.
        cold_ctrl = AdmissionController(self.CAPACITY)
        cold_infos = [
            replace(
                synthetic_planning_job(
                    "new", 1.5, 3.4, grid2, self.CAPACITY, self.THR
                ),
                tables_token=50,
            )
        ] + self._infos(grid2, ids, 5.0, 4.0)
        cold = cold_ctrl.plan_shares(cold_infos, grid2, stop_on_failure=False)
        assert set(trial.plans) == set(cold.plans)
        for job_id, plan in cold.plans.items():
            assert np.array_equal(trial.plans[job_id], plan), job_id
        assert trial.admitted == cold.admitted
        assert trial.degraded == cold.degraded
        assert np.array_equal(trial.ledger.used, cold.ledger.used)
