"""Tests for the runtime coherence vocabulary (repro.perf.coherence)."""

from __future__ import annotations

from repro.core.plan import Ledger
from repro.perf.coherence import (
    COHERENT_FIELDS_ATTR,
    INVALIDATES_ATTR,
    INVALIDATION_REGISTRY,
    KEYED_FIELDS_ATTR,
    MUTATES_ATTR,
    coherence_report,
    coherent,
    invalidates,
    keyed,
    mutates,
)
from repro.sim.engine import Simulator  # noqa: F401 - registers its providers


def test_decorators_attach_metadata_without_changing_behavior() -> None:
    @coherent(_store="test_dep_alpha")
    @keyed(_memo="revision_fn")
    class Holder:
        def __init__(self) -> None:
            self._store: dict[str, int] = {}
            self._memo: dict[str, int] = {}

        @invalidates("test_dep_alpha")
        def _refresh(self) -> str:
            return "refreshed"

        @mutates("_store")
        def put(self, key: str, value: int) -> None:
            self._store[key] = value
            self._refresh()

    holder = Holder()
    holder.put("a", 1)
    assert holder._store == {"a": 1}  # decorated methods behave unchanged
    assert getattr(Holder, COHERENT_FIELDS_ATTR) == {"_store": "test_dep_alpha"}
    assert getattr(Holder, KEYED_FIELDS_ATTR) == {"_memo": "revision_fn"}
    assert getattr(Holder.put, MUTATES_ATTR) == ("_store",)
    assert getattr(Holder._refresh, INVALIDATES_ATTR) == ("test_dep_alpha",)
    assert INVALIDATION_REGISTRY["test_dep_alpha"] == (
        "test_decorators_attach_metadata_without_changing_behavior."
        "<locals>.Holder._refresh",
    )


def test_repeated_mutates_declarations_accumulate() -> None:
    @mutates("_a")
    @mutates("_b")
    def touch() -> None:
        pass

    assert set(getattr(touch, MUTATES_ATTR)) == {"_a", "_b"}


def test_registry_holds_the_shipped_invalidations() -> None:
    assert INVALIDATION_REGISTRY["planning_tables"] == (
        "invalidate_planning_tables",
        "reset_cache",
    )
    assert INVALIDATION_REGISTRY["ledger_version"] == ("Ledger._bump_version",)
    assert INVALIDATION_REGISTRY["event_projections"] == (
        "Simulator._retire_projections",
    )


def test_coherence_report_of_the_ledger() -> None:
    report = coherence_report(Ledger)
    assert report["coherent_fields"] == {
        "_used": "ledger_version",
        "_plans": "ledger_version",
    }
    for method in ("set_plan", "remove_plan", "clear"):
        assert set(report["mutators"][method]) == {"_used", "_plans"}
    assert report["providers"]["_bump_version"] == ("ledger_version",)


def test_coherence_report_of_the_simulator() -> None:
    report = coherence_report(Simulator)
    assert report["coherent_fields"] == {
        "_alloc_version": "event_projections",
        "_soa": "sim_soa",
    }
    assert report["keyed_fields"] == {"_rate_memo": "curve_revision"}
    assert report["providers"]["_retire_projections"] == ("event_projections",)
    assert report["providers"]["_rebuild_soa"] == ("sim_soa",)
