# lint-module: repro.core.fixture_ip004_sink
"""Companion module for the IP004 fixtures: an in-scope decision sink."""


def pick_order(jobs, rng):
    indices = rng.permutation(len(jobs))
    return [jobs[index] for index in indices]
