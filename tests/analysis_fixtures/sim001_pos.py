# lint-module: repro.sim.fixture_sim001
"""Positive SIM001: real sleep inside the simulation."""
import time


def handle_event() -> None:
    time.sleep(0.1)  # <- finding
