# lint-module: repro.core.fixture_det001_neg
"""Negative DET001: explicitly seeded generator is allowed."""
import numpy as np


def decide(seed: int) -> float:
    rng = np.random.default_rng(seed)
    return float(rng.uniform(0.0, 1.0))
