# lint-module: repro.sim.fixture_det002_neg
"""Negative DET002: sorted() and order-free reductions over sets are fine."""


def order(job_ids: list[str]) -> list[str]:
    pending = set(job_ids)
    count = len(pending)
    out = []
    for job_id in sorted(pending):
        out.append(job_id)
    return out[:count]
