# lint-module: repro.fixture_err002
"""Positive ERR002: re-raise inside a handler severs the causal chain."""


def convert(value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise RuntimeError(f"bad value {value!r}")  # <- finding
