# lint-module: repro.perf.fixture_cc003
"""Positive CC003: foreign mutation of another object's coherent field."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_plans="cc003_dep")
class OwnerThree:
    def __init__(self):
        self._plans = {}

    @invalidates("cc003_dep")
    def _bump(self):
        pass

    @mutates("_plans")
    def set_item(self, key, value):
        self._plans[key] = value
        self._bump()


def outside(owner: OwnerThree) -> None:
    owner._plans["x"] = 1  # <- finding
