# lint-module: repro.sim.fixture_det002
"""Positive DET002: iterating a set bakes hash order into a decision."""


def order(job_ids: list[str]) -> list[str]:
    pending = set(job_ids)
    out = []
    for job_id in pending:  # <- finding
        out.append(job_id)
    return out
