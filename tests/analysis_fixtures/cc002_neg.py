# lint-module: repro.perf.fixture_cc002_neg
"""Negative CC002: construction and declared mutators may touch the field."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_data="cc002_neg_dep")
class HolderTwoNeg:
    def __init__(self):
        self._data = {}

    @invalidates("cc002_neg_dep")
    def _invalidate(self):
        pass

    @mutates("_data")
    def put(self, key, value):
        self._data[key] = value
        self._invalidate()


@coherent(_hints="verified")
class VerifiedHolderNeg:
    """Advisory state still needs @mutates, but no invalidation call."""

    def __init__(self):
        self._hints = {}

    @mutates("_hints")
    def remember(self, key, value):
        self._hints[key] = value
