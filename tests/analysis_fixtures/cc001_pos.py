# lint-module: repro.perf.fixture_cc001
"""Positive CC001: declared mutator never calls the invalidation hook."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_data="cc001_dep")
class HolderOne:
    def __init__(self):
        self._data = {}

    @invalidates("cc001_dep")
    def _invalidate(self):
        pass

    @mutates("_data")
    def put(self, key, value):  # <- finding
        self._data[key] = value
