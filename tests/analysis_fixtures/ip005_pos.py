# lint-module: repro.perf.fixture_ip005
"""Positive IP005: verified state consumed without re-proof."""
from repro.perf.coherence import coherent, mutates


@coherent(_caps="verified:caps_fresh")
class HintStore:
    def __init__(self, source):
        self._source = source
        self._caps = {}

    def caps_fresh(self, key):
        return self._caps.get(key) == self._source.get(key)

    @mutates("_caps")
    def remember(self, key, cap):
        self._caps[key] = cap

    def cap_for(self, key):
        return self._caps.get(key, 0)  # <- finding
