# lint-module: repro.perf.fixture_cc005_neg
"""Negative CC005: the memo key carries the revision."""
from repro.perf.coherence import keyed


def revision_of(key) -> int:
    return 0


@keyed(_memo="revision_of")
class CacheFiveNeg:
    def __init__(self):
        self._memo = {}

    def lookup(self, key):
        memo_key = (key, revision_of(key))
        value = self._memo.get(memo_key)
        if value is None:
            value = str(key)
            self._memo[memo_key] = value
        return value
