# lint-module: repro.traces.fixture_ip004
"""Positive IP004: a driver outside the decision scope passes ambient RNG."""
from numpy.random import default_rng

from repro.core.fixture_ip004_sink import pick_order


def shuffle_jobs(jobs):
    return pick_order(jobs, default_rng())  # <- finding
