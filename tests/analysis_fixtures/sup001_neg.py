# lint-module: repro.fixture_sup001_neg
"""Negative SUP001: the suppression carries its written justification."""


def helper(weight: float, rate: float) -> bool:
    return weight == rate  # lint: disable=NH001 -- fixture exercises a justified suppression
