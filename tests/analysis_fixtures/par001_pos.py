# lint-module: repro.parallel.fixture_par001
"""Positive PAR001: module-level mutable accumulator in worker-reachable code."""

_RESULT_CACHE: dict = {}  # <- finding


def remember(key: str, value: float) -> None:
    _RESULT_CACHE[key] = value
