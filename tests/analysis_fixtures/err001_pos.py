# lint-module: repro.fixture_err001
"""Positive ERR001: bare except clause."""


def load(value: str) -> int:
    try:
        return int(value)
    except:  # <- finding
        return 0
