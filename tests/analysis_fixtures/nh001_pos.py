# lint-module: repro.fixture_nh001
"""Positive NH001: exact equality between float scheduling quantities."""


def same_deadline(deadline_a: float, deadline_b: float) -> bool:
    return deadline_a == deadline_b  # <- finding
