# lint-module: repro.fixture_sup001
"""Positive SUP001: a suppression comment without a justification."""


def helper(value: int) -> int:
    return value + 1  # lint: disable=NH001
