# lint-module: repro.fixture_err002_neg
"""Negative ERR002: translation keeps the chain with `from`."""


def convert(value: str) -> int:
    try:
        return int(value)
    except ValueError as exc:
        raise RuntimeError(f"bad value {value!r}") from exc
