# lint-module: repro.perf.fixture_cc002
"""Positive CC002: coherent field mutated outside any declared mutator."""
from repro.perf.coherence import coherent, invalidates


@coherent(_data="cc002_dep")
class HolderTwo:
    def __init__(self):
        self._data = {}

    @invalidates("cc002_dep")
    def _invalidate(self):
        pass

    def sneaky(self, key, value):
        self._data[key] = value  # <- finding
