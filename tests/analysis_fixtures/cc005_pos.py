# lint-module: repro.perf.fixture_cc005
"""Positive CC005: revision-keyed memo written without its key function."""
from repro.perf.coherence import keyed


def revision_of(key) -> int:
    return 0


@keyed(_memo="revision_of")
class CacheFive:
    def __init__(self):
        self._memo = {}

    def lookup(self, key):  # <- finding
        value = str(key)
        self._memo[key] = value
        return value
