# lint-module: repro.perf.fixture_cc004
"""Positive CC004: cross-class @mutates declaration never exercised."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_plans="cc004_dep")
class OwnerFour:
    def __init__(self):
        self._plans = {}

    @invalidates("cc004_dep")
    def _bump(self):
        pass

    @mutates("_plans")
    def set_item(self, key, value):
        self._plans[key] = value
        self._bump()


@mutates("OwnerFour._plans")
def stale(owner: OwnerFour) -> None:  # <- finding
    return None
