# lint-module: repro.perf.fixture_ip001
"""Positive IP001: a helper calls a declared mutator without owning up."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_data="ip001_dep")
class HolderIP:
    def __init__(self):
        self._data = {}

    @invalidates("ip001_dep")
    def _invalidate(self):
        pass

    @mutates("_data")
    def put(self, key, value):
        self._data[key] = value
        self._invalidate()


def bulk_fill(holder: HolderIP, items):
    for key, value in items.items():
        holder.put(key, value)  # <- finding
