# lint-module: repro.core.fixture_ip002_neg
"""Negative IP002: all writes happen before the buffer is adopted."""
import numpy as np


class MiniLedgerNeg:
    def __init__(self):
        self._plans = {}

    def set_plan(self, job_id, plan, trusted=False):
        if not trusted:
            plan = plan.copy()
        plan.flags.writeable = False
        self._plans[job_id] = plan


def fill(ledger: MiniLedgerNeg, horizon):
    plan = np.ones(horizon, dtype=np.int64)
    plan[0] = 2  # still private: the ledger has not adopted it yet
    ledger.set_plan("job-a", plan, trusted=True)
    return plan
