# lint-module: repro.sim.fixture_sim001_neg
"""Negative SIM001: simulated time comes from the event, not the host."""


def handle_event(samples: list, now: float) -> None:
    samples.append(now)
