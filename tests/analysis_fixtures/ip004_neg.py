# lint-module: repro.traces.fixture_ip004_neg
"""Negative IP004: the driver threads a seeded generator into scope."""
from numpy.random import default_rng

from repro.core.fixture_ip004_sink import pick_order


def shuffle_jobs(jobs, seed):
    return pick_order(jobs, default_rng(seed))
