# lint-module: repro.parallel.fixture_par001
"""Negative PAR001: constants are immutable; state lives on instances."""

from dataclasses import dataclass, field

__all__ = ["Tracker", "SIZES"]

SIZES = (1, 2, 4, 8)
_LABELS = frozenset({"trace", "jobs"})


@dataclass
class Tracker:
    seen: dict = field(default_factory=dict)

    def remember(self, key: str, value: float) -> None:
        self.seen[key] = value


def local_scratch() -> list:
    scratch = []
    scratch.append(len(_LABELS))
    return scratch
