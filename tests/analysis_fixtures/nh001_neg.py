# lint-module: repro.fixture_nh001_neg
"""Negative NH001: epsilon comparison through the shared helper."""
from repro.numeric import feq


def same_deadline(deadline_a: float, deadline_b: float) -> bool:
    return feq(deadline_a, deadline_b)
