# lint-module: repro.perf.fixture_ip005_neg
"""Negative IP005: every consuming read re-proves via the verifier."""
from repro.perf.coherence import coherent, mutates


@coherent(_caps="verified:caps_fresh")
class HintStoreNeg:
    def __init__(self, source):
        self._source = source
        self._caps = {}

    def caps_fresh(self, key):
        return self._caps.get(key) == self._source.get(key)

    @mutates("_caps")
    def remember(self, key, cap):
        self._caps[key] = cap

    def cap_for(self, key):
        if not self.caps_fresh(key):
            return 0
        return self._caps.get(key, 0)
