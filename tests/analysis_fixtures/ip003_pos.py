# lint-module: repro.perf.fixture_ip003
"""Positive IP003: an escape hatch that nothing can ever enter."""
from contextlib import contextmanager

_FLAGS = {"probe": True}


@contextmanager
def orphan_probe_disabled():  # <- finding
    _FLAGS["probe"] = False
    try:
        yield
    finally:
        _FLAGS["probe"] = True
