# lint-module: repro.perf.fixture_ip001_neg
"""Negative IP001: the caller declares the transitive mutation."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_data="ip001_neg_dep")
class HolderIPNeg:
    def __init__(self):
        self._data = {}

    @invalidates("ip001_neg_dep")
    def _invalidate(self):
        pass

    @mutates("_data")
    def put(self, key, value):
        self._data[key] = value
        self._invalidate()


@mutates("HolderIPNeg._data")
def bulk_fill(holder: HolderIPNeg, items):
    # The dotted declaration documents the transitive mutation and is
    # terminal: callers of bulk_fill carry no fresh obligation.
    for key, value in items.items():
        holder.put(key, value)
