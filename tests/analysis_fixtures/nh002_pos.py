# lint-module: repro.fixture_nh002
"""Positive NH002: hand-rolled power-of-two bit trick."""


def check(count: int) -> bool:
    return count >= 1 and count & (count - 1) == 0  # <- finding
