# lint-module: repro.perf.fixture_cc003_neg
"""Negative CC003: callers go through the owning class's declared mutator."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_plans="cc003_neg_dep")
class OwnerThreeNeg:
    def __init__(self):
        self._plans = {}

    @invalidates("cc003_neg_dep")
    def _bump(self):
        pass

    @mutates("_plans")
    def set_item(self, key, value):
        self._plans[key] = value
        self._bump()


@mutates("OwnerThreeNeg._plans")
def outside(owner: OwnerThreeNeg) -> None:
    # Routing through the declared mutator satisfies CC003; the dotted
    # declaration owns up to the transitive mutation (IP001).
    owner.set_item("x", 1)
