# lint-module: repro.perf.fixture_cc003_neg
"""Negative CC003: callers go through the owning class's declared mutator."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_plans="cc003_neg_dep")
class OwnerThreeNeg:
    def __init__(self):
        self._plans = {}

    @invalidates("cc003_neg_dep")
    def _bump(self):
        pass

    @mutates("_plans")
    def set_item(self, key, value):
        self._plans[key] = value
        self._bump()


def outside(owner: OwnerThreeNeg) -> None:
    owner.set_item("x", 1)
