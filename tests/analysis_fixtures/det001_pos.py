# lint-module: repro.core.fixture_det001
"""Positive DET001: wall-clock read inside a decision path."""
import time


def decide() -> float:
    return time.time()  # <- finding
