# lint-module: repro.perf.fixture_cc001_neg
"""Negative CC001: the mutator reaches the hook on every non-raising path."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_data="cc001_neg_dep")
class HolderOneNeg:
    def __init__(self):
        self._data = {}

    @invalidates("cc001_neg_dep")
    def _invalidate(self):
        pass

    @mutates("_data")
    def put(self, key, value):
        if key is None:
            raise ValueError("key must not be None")  # raise paths are exempt
        self._data[key] = value
        self._invalidate()


@coherent(_plans="cc001_neg_dep", _hints="verified")
class BulkHolderNeg:
    """The retained-ledger pattern: wholesale replacement is one mutation."""

    def __init__(self):
        self._plans = {}
        self._hints = {}

    @invalidates("cc001_neg_dep")
    def _invalidate(self):
        pass

    @mutates("_plans")
    def load(self, plans):
        # Bulk restore: adopt the snapshot wholesale, then invalidate once.
        self._plans = dict(plans)
        self._invalidate()

    @mutates("_hints")
    def remember(self, key, value):
        # Verified (advisory) fields carry no invalidation obligation.
        self._hints[key] = value
