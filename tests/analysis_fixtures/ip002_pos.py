# lint-module: repro.core.fixture_ip002
"""Positive IP002: a trusted shared plan array is mutated after adoption."""
import numpy as np


class MiniLedger:
    def __init__(self):
        self._plans = {}

    def set_plan(self, job_id, plan, trusted=False):
        if not trusted:
            plan = plan.copy()
        plan.flags.writeable = False
        self._plans[job_id] = plan


def fill(ledger: MiniLedger, horizon):
    plan = np.ones(horizon, dtype=np.int64)
    ledger.set_plan("job-a", plan, trusted=True)
    plan[0] = 2  # <- finding
    return plan
