# lint-module: repro.perf.fixture_ip003_neg
"""Negative IP003: the hatch is exercised by an in-tree caller."""
from contextlib import contextmanager

_FLAGS = {"probe": True}


@contextmanager
def mirror_probe_disabled():
    _FLAGS["probe"] = False
    try:
        yield
    finally:
        _FLAGS["probe"] = True


def probe_with_fallback(fn):
    with mirror_probe_disabled():
        return fn()
