# lint-module: repro.fixture_nh002_neg
"""Negative NH002: GPU counts go through the shared helpers."""
from repro.numeric import is_power_of_two


def check(count: int) -> bool:
    return is_power_of_two(count)
