# lint-module: repro.fixture_err001_neg
"""Negative ERR001: a concrete exception type is caught."""


def load(value: str) -> int:
    try:
        return int(value)
    except ValueError:
        return 0
