# lint-module: repro.perf.fixture_cc004_neg
"""Negative CC004: the declaring function drives the declared mutator."""
from repro.perf.coherence import coherent, invalidates, mutates


@coherent(_plans="cc004_neg_dep")
class OwnerFourNeg:
    def __init__(self):
        self._plans = {}

    @invalidates("cc004_neg_dep")
    def _bump(self):
        pass

    @mutates("_plans")
    def set_item(self, key, value):
        self._plans[key] = value
        self._bump()


@mutates("OwnerFourNeg._plans")
def driver(owner: OwnerFourNeg) -> None:
    owner.set_item("x", 1)
