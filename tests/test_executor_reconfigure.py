"""Tests for local batch-size reconfiguration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.executor import accumulation_steps, plan_reconfiguration, shard_batch
from repro.profiles import get_model


class TestShardBatch:
    def test_even_split(self):
        assert shard_batch(256, 8) == [32] * 8

    def test_remainder_spread(self):
        assert shard_batch(10, 4) == [3, 3, 2, 2]

    def test_single_worker(self):
        assert shard_batch(256, 1) == [256]

    def test_more_workers_than_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_batch(4, 8)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            shard_batch(0, 1)
        with pytest.raises(ConfigurationError):
            shard_batch(8, 0)

    @settings(max_examples=200)
    @given(
        global_batch=st.integers(min_value=1, max_value=4096),
        n_workers=st.integers(min_value=1, max_value=256),
    )
    def test_shards_conserve_and_balance(self, global_batch, n_workers):
        """Shards always sum to the global batch and differ by at most 1."""
        if n_workers > global_batch:
            with pytest.raises(ConfigurationError):
                shard_batch(global_batch, n_workers)
            return
        shards = shard_batch(global_batch, n_workers)
        assert sum(shards) == global_batch
        assert max(shards) - min(shards) <= 1
        assert all(s >= 1 for s in shards)


class TestAccumulation:
    def test_no_accumulation_when_it_fits(self):
        assert accumulation_steps(32, 64) == 1

    def test_accumulation_rounds_up(self):
        assert accumulation_steps(100, 32) == 4

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            accumulation_steps(0, 8)
        with pytest.raises(ConfigurationError):
            accumulation_steps(8, 0)


class TestPlanReconfiguration:
    def test_plan_fields(self):
        plan = plan_reconfiguration(get_model("resnet50"), 256, 8)
        assert plan.n_workers == 8
        assert plan.global_batch == 256
        assert plan.max_local_batch == 32
        assert not plan.uses_accumulation

    def test_accumulation_on_memory_pressure(self):
        # gpt2 fits 32 samples; a 256 batch on 2 workers needs 4 micro-steps.
        plan = plan_reconfiguration(get_model("gpt2"), 256, 2)
        assert plan.uses_accumulation
        assert plan.accumulation == (4, 4)

    def test_single_gpu_always_plannable(self):
        for name in ("resnet50", "vgg16", "gpt2", "deepspeech2"):
            plan = plan_reconfiguration(get_model(name), 256, 1)
            assert plan.local_batches == (256,)

    @settings(max_examples=100)
    @given(
        n_workers=st.sampled_from([1, 2, 4, 8, 16, 32]),
        batch=st.sampled_from([32, 64, 128, 256]),
    )
    def test_global_batch_always_preserved(self, n_workers, batch):
        """Section 5: local batch sizes always maintain the global batch."""
        if n_workers > batch:
            return
        plan = plan_reconfiguration(get_model("bert"), batch, n_workers)
        assert plan.global_batch == batch
