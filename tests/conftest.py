"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.admission import PlanningJob
from repro.core.slots import SlotGrid


def synthetic_planning_job(
    job_id: str,
    remaining: float,
    deadline: float,
    grid: SlotGrid,
    capacity: int,
    throughput_by_size: dict[int, float],
    *,
    best_effort: bool = False,
) -> PlanningJob:
    """Build a PlanningJob from an explicit size -> iterations/sec mapping.

    Mirrors the tables :func:`repro.core.admission.planning_job` derives
    from a scaling curve, but lets tests use the paper's toy curves (e.g.
    Fig 3's "1 unit at 1 worker, 1.5 units at 2 workers") directly.
    """
    sizes = sorted(throughput_by_size)
    throughput_table = np.zeros(capacity + 1, dtype=np.float64)
    size_table = np.zeros(capacity + 1, dtype=np.int64)
    best_size, best_thr = 0, 0.0
    for x in range(1, capacity + 1):
        if x in throughput_by_size and throughput_by_size[x] > best_thr:
            best_size, best_thr = x, throughput_by_size[x]
        throughput_table[x] = best_thr
        size_table[x] = best_size
    return PlanningJob(
        job_id=job_id,
        remaining_iterations=remaining,
        deadline=deadline,
        weights=grid.weights_until(deadline),
        throughput_table=throughput_table,
        size_table=size_table,
        sizes=sizes,
        best_effort=best_effort,
    )


@pytest.fixture
def unit_grid() -> SlotGrid:
    """Five one-second slots starting at t=0 (for the paper's toy examples)."""
    return SlotGrid(origin=0.0, slot_seconds=1.0, horizon=5)
