"""Tests for the event engine's active set, heap hygiene, and submit order."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.job import JobSpec, JobStatus
from repro.core.scheduler import ElasticFlowPolicy
from repro.errors import SimulationError
from repro.sim.engine import Simulator


def _spec(job_id, submit, deadline=None, iterations=200):
    return JobSpec(
        job_id=job_id,
        model_name="resnet50",
        global_batch_size=128,
        max_iterations=iterations,
        submit_time=submit,
        deadline=deadline,
    )


def _sim(specs, **kwargs):
    return Simulator(
        ClusterSpec(n_nodes=2, gpus_per_node=4),
        ElasticFlowPolicy(),
        specs,
        slot_seconds=60.0,
        **kwargs,
    )


class TestActiveSet:
    def test_active_set_tracks_status_transitions(self):
        sim = _sim([_spec("a", 0.0), _spec("b", 5.0)])
        assert sim._active == {}
        sim.run_until(6.0)
        active_ids = set(sim._active)
        assert active_ids == {
            j.job_id for j in sim.jobs.values() if j.is_active
        }
        sim.run()
        assert sim._active == {}
        assert all(
            job.status in (JobStatus.COMPLETED, JobStatus.DROPPED)
            for job in sim.jobs.values()
        )

    def test_dropped_jobs_never_enter_active_set(self):
        # An impossible deadline forces a drop at admission time.
        sim = _sim([_spec("tight", 0.0, deadline=0.5, iterations=10**9)])
        result = sim.run()
        assert result.outcomes[0].status is JobStatus.DROPPED
        assert sim._active == {}


class TestSubmitOrdering:
    def test_late_submission_keeps_specs_sorted(self):
        sim = _sim([_spec("b", 10.0), _spec("a", 0.0)])
        sim.run_until(1.0)
        sim.submit(_spec("c", 5.0))
        keys = [(s.submit_time, s.job_id) for s in sim._specs]
        assert keys == sorted(keys)

    def test_submit_in_the_past_rejected(self):
        sim = _sim([_spec("a", 0.0)])
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.submit(_spec("late", 1.0))

    def test_duplicate_submit_rejected(self):
        sim = _sim([_spec("a", 0.0)])
        with pytest.raises(SimulationError):
            sim.submit(_spec("a", 10.0))


class TestHeapCompaction:
    def test_stale_events_are_compacted(self):
        """A long stream of replans must not grow the heap monotonically:
        after the run the stale counter is bounded by the compaction rule."""
        specs = [_spec(f"j{i}", float(i)) for i in range(40)]
        sim = _sim(specs)
        sim.run()
        assert sim._stale_versioned < 64 or (
            2 * sim._stale_versioned < len(sim._heap)
        )

    def test_compaction_preserves_outcomes(self):
        """Compaction is bookkeeping only — same outcomes as a fresh run
        computed without any intermediate run_until checkpoints."""
        specs = [_spec(f"j{i}", float(i % 7)) for i in range(20)]
        a = _sim(specs).run()
        sim = _sim(specs)
        for t in (2.0, 5.0, 9.0):
            sim.run_until(t)
        b = sim.run()
        digest = lambda r: sorted(
            (o.job_id, o.status.value, o.completion_time) for o in r.outcomes
        )
        assert digest(a) == digest(b)


class TestEfficiencyGate:
    def test_disabling_efficiency_recording_changes_no_outcome(self):
        specs = [_spec(f"j{i}", float(i)) for i in range(12)]
        with_eff = _sim(specs, record_efficiency=True).run()
        without_eff = _sim(
            specs, record_timeline=False, record_efficiency=False
        ).run()
        digest = lambda r: sorted(
            (o.job_id, o.status.value, o.completion_time) for o in r.outcomes
        )
        assert digest(with_eff) == digest(without_eff)
