"""Unit and property tests for the buddy allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Block, BuddyAllocator
from repro.errors import AllocationError, ConfigurationError


class TestBlock:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            Block(offset=1, size=2)
        with pytest.raises(ConfigurationError):
            Block(offset=-4, size=4)

    def test_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            Block(offset=0, size=3)

    def test_buddy_offset(self):
        assert Block(offset=0, size=4).buddy_offset == 4
        assert Block(offset=4, size=4).buddy_offset == 0
        assert Block(offset=8, size=8).buddy_offset == 0

    def test_gpu_indices(self):
        indices = Block(offset=4, size=4).gpu_indices
        assert isinstance(indices, range)  # lazy — no 16k-element list at xl
        assert list(indices) == [4, 5, 6, 7]


class TestAllocateFree:
    def test_fresh_allocator_fully_free(self):
        allocator = BuddyAllocator(16)
        assert allocator.free_gpus == 16
        assert allocator.allocated_gpus == 0
        assert allocator.largest_free_block() == 16

    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(12)

    def test_allocate_splits_from_smallest_fit(self):
        allocator = BuddyAllocator(16)
        a = allocator.allocate(4)
        b = allocator.allocate(4)
        # Best-fit: the second request reuses the buddy of the first.
        assert {a.offset, b.offset} == {0, 4}
        assert allocator.free_gpus == 8

    def test_allocate_too_big_raises(self):
        allocator = BuddyAllocator(8)
        with pytest.raises(AllocationError):
            allocator.allocate(16)

    def test_allocate_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            BuddyAllocator(8).allocate(3)

    def test_exhaustion_raises(self):
        allocator = BuddyAllocator(8)
        allocator.allocate(8)
        with pytest.raises(AllocationError):
            allocator.allocate(1)

    def test_free_coalesces_to_full(self):
        allocator = BuddyAllocator(16)
        blocks = [allocator.allocate(4) for _ in range(4)]
        for block in blocks:
            allocator.free(block)
        assert allocator.largest_free_block() == 16

    def test_double_free_rejected(self):
        allocator = BuddyAllocator(8)
        block = allocator.allocate(4)
        allocator.free(block)
        with pytest.raises(AllocationError):
            allocator.free(block)

    def test_fragmentation_scenario_from_paper(self):
        """Two 7-ish GPU jobs leave two idle GPUs but no 2-block (Sec 4.3).

        With power-of-two sizes the analogue: fill two 8-GPU nodes with one
        4+2+1 split each, leaving one non-adjacent GPU per node.
        """
        allocator = BuddyAllocator(16)
        keep = []
        spare = []
        for _ in range(2):
            keep.append(allocator.allocate(4))
            keep.append(allocator.allocate(2))
            keep.append(allocator.allocate(1))
            spare.append(allocator.allocate(1))
        for block in spare:
            allocator.free(block)
        assert allocator.free_gpus == 2
        assert not allocator.can_allocate(2)  # fragmented!
        plan = allocator.repack_plan()
        allocator.apply_repack(plan)
        assert allocator.can_allocate(2)  # defragmentation fixes it


class TestShrink:
    def test_shrink_keeps_prefix(self):
        allocator = BuddyAllocator(16)
        block = allocator.allocate(8)
        kept = allocator.shrink(block, 2)
        assert kept == Block(offset=block.offset, size=2)
        assert allocator.free_gpus == 14

    def test_shrink_freed_space_reusable(self):
        allocator = BuddyAllocator(8)
        block = allocator.allocate(8)
        allocator.shrink(block, 1)
        assert allocator.allocate(4).offset == 4
        assert allocator.allocate(2).offset == 2
        assert allocator.allocate(1).offset == 1

    def test_shrink_to_equal_or_larger_rejected(self):
        allocator = BuddyAllocator(8)
        block = allocator.allocate(4)
        with pytest.raises(AllocationError):
            allocator.shrink(block, 4)
        with pytest.raises(AllocationError):
            allocator.shrink(block, 8)

    def test_shrink_unallocated_rejected(self):
        allocator = BuddyAllocator(8)
        with pytest.raises(AllocationError):
            allocator.shrink(Block(offset=0, size=4), 2)


class TestReserveExact:
    def test_reserve_left_half_releases_right_halves(self):
        allocator = BuddyAllocator(16)
        block = allocator.reserve_exact(0, 4)
        assert block == Block(offset=0, size=4)
        assert allocator.free_gpus == 12
        # Split path keeps descending to the left: right halves released.
        assert allocator._free[8] == {8}
        assert allocator._free[4] == {4}

    def test_reserve_right_half_releases_left_halves(self):
        allocator = BuddyAllocator(16)
        block = allocator.reserve_exact(12, 4)
        assert block == Block(offset=12, size=4)
        assert allocator.free_gpus == 12
        # Split path keeps descending to the right: left halves released.
        assert allocator._free[8] == {0}
        assert allocator._free[4] == {8}

    def test_reserve_overlapping_allocation_rejected(self):
        allocator = BuddyAllocator(16)
        allocator.allocate(4)
        with pytest.raises(AllocationError):
            allocator.reserve_exact(0, 8)

    def test_reserve_inside_smaller_free_block(self):
        allocator = BuddyAllocator(16)
        allocator.allocate(8)  # occupies [0, 8); free block is 8@8
        block = allocator.reserve_exact(10, 2)
        assert block == Block(offset=10, size=2)
        assert allocator._free[2] == {8}
        assert allocator._free[4] == {12}


class TestShrinkDecomposition:
    def test_shrink_frees_standard_suffix_decomposition(self):
        allocator = BuddyAllocator(16)
        block = allocator.allocate(16)
        allocator.shrink(block, 2)
        # Freed suffix [2, 16) decomposes as the buddy ladder 2+4+8.
        assert allocator._free[2] == {2}
        assert allocator._free[4] == {4}
        assert allocator._free[8] == {8}
        assert allocator.free_gpus == 14

    def test_shrunk_suffix_coalesces_with_later_frees(self):
        allocator = BuddyAllocator(16)
        block = allocator.allocate(16)
        kept = allocator.shrink(block, 2)
        allocator.free(kept)
        # The kept prefix's release walks the whole buddy chain back up.
        assert allocator.largest_free_block() == 16


class TestAddGap:
    def test_unaligned_start_emits_maximal_aligned_blocks(self):
        allocator = BuddyAllocator(16)
        allocator.allocate(16)  # empty the free lists
        allocator._add_gap(5, 7)  # [5, 12): alignment limits the run
        assert allocator._free[1] == {5}
        assert allocator._free[2] == {6}
        assert allocator._free[4] == {8}

    def test_zero_start_limited_by_length(self):
        allocator = BuddyAllocator(16)
        allocator.allocate(16)
        allocator._add_gap(0, 7)  # offset 0 aligns to anything; length rules
        assert allocator._free[4] == {0}
        assert allocator._free[2] == {4}
        assert allocator._free[1] == {6}


class TestRepack:
    def test_plan_is_empty_when_packed(self):
        allocator = BuddyAllocator(16)
        allocator.allocate(8)
        allocator.allocate(4)
        assert allocator.repack_plan() == {}

    def test_plan_moves_to_prefix(self):
        allocator = BuddyAllocator(16)
        first = allocator.allocate(4)
        second = allocator.allocate(4)
        allocator.free(first)
        plan = allocator.repack_plan()
        assert plan == {second: Block(offset=0, size=4)}

    def test_apply_stale_plan_rejected(self):
        allocator = BuddyAllocator(16)
        block = allocator.allocate(4)
        plan = {Block(offset=8, size=4): Block(offset=0, size=4)}
        with pytest.raises(AllocationError):
            allocator.apply_repack(plan)
        assert block in allocator.allocated_blocks

    def test_apply_resizing_plan_rejected(self):
        allocator = BuddyAllocator(16)
        block = allocator.allocate(4)
        with pytest.raises(AllocationError):
            allocator.apply_repack({block: Block(offset=8, size=8)})

    def test_repack_packs_into_gaps_around_pins(self):
        allocator = BuddyAllocator(16)
        pin = allocator.reserve_exact(8, 4)
        moved = allocator.allocate(2)
        assert moved.offset == 12  # best-fit picks the 4-block right of pin
        plan = allocator.repack_plan(pinned=frozenset({pin}))
        assert plan == {moved: Block(offset=0, size=2)}
        allocator.apply_repack(plan)
        assert allocator.free_gpus == 10
        assert pin in allocator.allocated_blocks

    def test_repack_skips_gaps_too_small_for_size_class(self):
        allocator = BuddyAllocator(16)
        pin_a = allocator.reserve_exact(0, 2)
        pin_b = allocator.reserve_exact(6, 2)
        big = allocator.allocate(8)
        assert big.offset == 8
        first = allocator.allocate(2)
        second = allocator.allocate(2)
        assert (first.offset, second.offset) == (2, 4)
        allocator.free(first)
        plan = allocator.repack_plan(pinned=frozenset({pin_a, pin_b}))
        # The 8-block skips the [2,6) gap (too small) and stays put; the
        # 2-block re-probes that gap and slides down into it.
        assert plan == {second: Block(offset=2, size=2)}
        allocator.apply_repack(plan)
        assert allocator.allocated_gpus == 14


# ---------------------------------------------------------------- properties
@st.composite
def operation_sequences(draw):
    """Random interleavings of allocate/free requests."""
    n_ops = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            ops.append(("alloc", draw(st.sampled_from([1, 2, 4, 8, 16]))))
        else:
            ops.append(("free", draw(st.integers(min_value=0, max_value=10**6))))
    return ops


@st.composite
def mixed_operation_sequences(draw):
    """Random interleavings of all mutating operations (incl. shrink/repack)."""
    n_ops = draw(st.integers(min_value=1, max_value=30))
    kinds = st.sampled_from(["alloc", "alloc", "free", "shrink", "repack"])
    ops = []
    for _ in range(n_ops):
        kind = draw(kinds)
        if kind == "alloc":
            ops.append(("alloc", draw(st.sampled_from([1, 2, 4, 8, 16]))))
        elif kind == "repack":
            ops.append(("repack", 0))
        else:
            ops.append((kind, draw(st.integers(min_value=0, max_value=10**6))))
    return ops


def assert_structural_invariants(allocator: BuddyAllocator) -> None:
    """Free lists + allocated blocks tile the space; summaries are coherent."""
    intervals = [(b.offset, b.offset + b.size) for b in allocator.allocated_blocks]
    mask = 0
    free_total = 0
    for size, offsets in sorted(allocator._free.items()):
        for offset in sorted(offsets):
            intervals.append((offset, offset + size))
            # Buddy coalescing invariant: no two free buddies coexist.
            assert (offset ^ size) not in offsets
        if offsets:
            mask |= size
            free_total += size * len(offsets)
            # The lazy heap still knows every live offset and its minimum.
            live = set(offsets)
            heap = allocator._heaps[size]
            assert live <= set(heap)
            assert min(x for x in heap if x in live) == min(live)
    intervals.sort()
    cursor = 0
    for start, end in intervals:
        assert start == cursor, "free/allocated blocks overlap or leak"
        cursor = end
    assert cursor == allocator.capacity
    assert allocator._mask == mask
    assert allocator.free_gpus == free_total
    assert allocator.free_gpus + allocator.allocated_gpus == allocator.capacity


class TestBuddyProperties:
    @settings(max_examples=200, deadline=None)
    @given(ops=operation_sequences())
    def test_no_overlap_and_conservation(self, ops):
        """Allocated blocks never overlap; free + allocated == capacity."""
        allocator = BuddyAllocator(64)
        live: list[Block] = []
        for kind, value in ops:
            if kind == "alloc":
                try:
                    live.append(allocator.allocate(value))
                except AllocationError:
                    assert not allocator.can_allocate(value)
            elif live:
                block = live.pop(value % len(live))
                allocator.free(block)
            covered = sorted(
                (b.offset, b.offset + b.size) for b in allocator.allocated_blocks
            )
            for (_, end), (start, _) in zip(covered, covered[1:]):
                assert end <= start
            assert allocator.free_gpus + allocator.allocated_gpus == 64
            assert set(live) == set(allocator.allocated_blocks)

    @settings(max_examples=200, deadline=None)
    @given(ops=operation_sequences())
    def test_repack_always_eliminates_fragmentation(self, ops):
        """After repack, any request within the free total succeeds."""
        allocator = BuddyAllocator(64)
        live: list[Block] = []
        for kind, value in ops:
            if kind == "alloc":
                try:
                    live.append(allocator.allocate(value))
                except AllocationError:
                    pass
            elif live:
                allocator.free(live.pop(value % len(live)))
        allocator.apply_repack(allocator.repack_plan())
        free = allocator.free_gpus
        size = 1
        while size <= free:
            assert allocator.can_allocate(size)
            size *= 2

    @settings(max_examples=200, deadline=None)
    @given(ops=mixed_operation_sequences())
    def test_structural_invariants_under_all_operations(self, ops):
        """Every mutation preserves tiling, summaries, and buddy invariants."""
        allocator = BuddyAllocator(64)
        live: list[Block] = []
        for kind, value in ops:
            if kind == "alloc":
                try:
                    live.append(allocator.allocate(value))
                except AllocationError:
                    assert not allocator.can_allocate(value)
            elif kind == "free":
                if live:
                    allocator.free(live.pop(value % len(live)))
            elif kind == "shrink":
                if live:
                    index = value % len(live)
                    block = live[index]
                    if block.size > 1:
                        live[index] = allocator.shrink(block, block.size // 2)
            else:
                plan = allocator.repack_plan()
                allocator.apply_repack(plan)
                live = [plan.get(b, b) for b in live]
            assert_structural_invariants(allocator)
            assert set(live) == set(allocator.allocated_blocks)

    @settings(max_examples=100, deadline=None)
    @given(
        sizes=st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=8),
        new_log=st.integers(min_value=0, max_value=2),
    )
    def test_shrink_conserves_gpus(self, sizes, new_log):
        allocator = BuddyAllocator(64)
        blocks = [allocator.allocate(s) for s in sizes]
        target = blocks[-1]
        new_size = 2**new_log
        if new_size >= target.size:
            return
        allocator.shrink(target, new_size)
        expected_allocated = sum(sizes) - target.size + new_size
        assert allocator.allocated_gpus == expected_allocated
        assert allocator.free_gpus == 64 - expected_allocated
