"""Smoke tests for the figure-suite benchmark (``--suite figures``)."""

from __future__ import annotations

import json

from repro.perf.bench import main
from repro.perf.figures import run_figure_suite, suite_cells


class TestSuiteCells:
    def test_quick_suite_is_a_subset_workload(self):
        quick = suite_cells(quick=True)
        full = suite_cells(quick=False)
        assert 0 < len(quick) < len(full)

    def test_cells_are_deterministic(self):
        from repro.parallel.fingerprint import fingerprint_run

        first = [fingerprint_run(spec) for spec in suite_cells(quick=True)]
        second = [fingerprint_run(spec) for spec in suite_cells(quick=True)]
        assert first == second


class TestRunFigureSuite:
    def test_quick_report_shape(self):
        report = run_figure_suite(quick=True, workers=2)
        assert report["suite"] == "figures"
        assert report["cells"] > 0
        assert report["decisions_match"] is True
        assert report["warm_cache_hits"] == report["unique_cells"]
        assert report["warm_executed"] == 0
        assert report["cores"] >= 1
        # Warm re-runs never simulate, so they must beat a cold pass hard.
        assert report["warm_speedup"] >= 10.0
        assert json.dumps(report)  # report is plain JSON

    def test_cli_writes_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "BENCH_parallel.json"
        assert (
            main(["--suite", "figures", "--quick", "--workers", "2", "-o", str(out)])
            == 0
        )
        report = json.loads(out.read_text())
        assert report["decisions_match"] is True
        assert "figure suite" in capsys.readouterr().out
