"""Serial/parallel equivalence: ``workers=N`` must never change a number.

These tests run real (small) figure grids twice — ``workers=1`` and
``workers=4`` — and compare the resulting :class:`SimulationResult`
objects byte-for-byte under the canonical encoding.  They spawn real
worker processes and are the slowest tests in the suite by design.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig6_endtoend import fig6_deadline_satisfaction
from repro.experiments.harness import ExperimentConfig
from repro.experiments.lambda_sweep import lambda_tightness_sweep
from repro.parallel.cache import RunCache
from repro.sim.serialize import result_to_json

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig()


def test_fig6_parallel_matches_serial_bytes(config, tmp_path_factory):
    serial = fig6_deadline_satisfaction(scale="small", config=config)
    parallel = fig6_deadline_satisfaction(
        scale="small",
        config=config,
        workers=4,
        cache=RunCache(root=tmp_path_factory.mktemp("fig6-cache")),
    )
    assert serial.results.keys() == parallel.results.keys()
    for name in serial.results:
        assert result_to_json(serial.results[name]) == result_to_json(
            parallel.results[name]
        ), f"policy {name} diverged between workers=1 and workers=4"


def test_lambda_sweep_parallel_matches_serial(config):
    kwargs = dict(
        config=config,
        tightness_values=(0.8, 1.5),
        cluster_gpus=16,
        n_jobs=10,
        policies=("elasticflow", "edf"),
    )
    serial = lambda_tightness_sweep(workers=1, **kwargs)
    parallel = lambda_tightness_sweep(workers=4, **kwargs)
    assert [row.tightness for row in serial] == [row.tightness for row in parallel]
    for left, right in zip(serial, parallel):
        assert left.ratios == right.ratios
