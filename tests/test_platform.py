"""Tests for the interactive serverless front end."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import JobStatus
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.platform import ElasticFlowPlatform
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor

MODEL = ThroughputModel()


def platform(**kwargs) -> ElasticFlowPlatform:
    kwargs.setdefault("throughput", MODEL)
    kwargs.setdefault("executor", ElasticExecutor.disabled())
    return ElasticFlowPlatform(ClusterSpec(n_nodes=2, gpus_per_node=8), **kwargs)


class TestSubmission:
    def test_admission_answered_immediately(self):
        service = platform()
        handle = service.submit(
            model_name="resnet50",
            global_batch_size=128,
            max_iterations=10_000,
            deadline_in=3600.0,
        )
        assert handle.admitted
        assert handle.status in (JobStatus.ADMITTED, JobStatus.RUNNING)

    def test_infeasible_job_dropped_immediately(self):
        service = platform()
        handle = service.submit(
            model_name="vgg16",
            global_batch_size=256,
            max_iterations=50_000_000,
            deadline_in=60.0,
        )
        assert not handle.admitted
        assert handle.status is JobStatus.DROPPED

    def test_best_effort_always_accepted(self):
        service = platform()
        handle = service.submit(
            model_name="gpt2",
            global_batch_size=128,
            max_iterations=100_000_000,
        )
        assert handle.admitted

    def test_auto_ids_unique(self):
        service = platform()
        first = service.submit(
            model_name="bert", global_batch_size=64, max_iterations=100
        )
        second = service.submit(
            model_name="bert", global_batch_size=64, max_iterations=100
        )
        assert first.job_id != second.job_id

    def test_explicit_id_respected(self):
        service = platform()
        handle = service.submit(
            model_name="bert",
            global_batch_size=64,
            max_iterations=100,
            job_id="my-job",
        )
        assert handle.job_id == "my-job"
        assert service.handle("my-job").job_id == "my-job"

    def test_duplicate_id_rejected(self):
        service = platform()
        service.submit(
            model_name="bert", global_batch_size=64,
            max_iterations=100, job_id="dup",
        )
        with pytest.raises(SimulationError):
            service.submit(
                model_name="bert", global_batch_size=64,
                max_iterations=100, job_id="dup",
            )

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            platform().submit(
                model_name="bert", global_batch_size=64,
                max_iterations=100, deadline_in=0.0,
            )

    def test_unknown_handle_rejected(self):
        with pytest.raises(SchedulingError):
            platform().handle("ghost")


class TestInteractiveSession:
    def test_progress_advances_with_clock(self):
        service = platform()
        handle = service.submit(
            model_name="resnet50",
            global_batch_size=128,
            max_iterations=100_000,
            deadline_in=7200.0,
        )
        assert handle.progress == 0.0
        service.run_until(600.0)
        assert 0.0 < handle.progress <= 1.0

    def test_jobs_submitted_mid_session(self):
        service = platform()
        first = service.submit(
            model_name="resnet50", global_batch_size=128,
            max_iterations=20_000, deadline_in=3600.0,
        )
        service.run_until(300.0)
        second = service.submit(
            model_name="bert", global_batch_size=64,
            max_iterations=5_000, deadline_in=3600.0,
        )
        result = service.drain()
        assert first.met_deadline and second.met_deadline
        assert result.completed_count == 2

    def test_clock_is_monotone(self):
        service = platform()
        service.run_until(100.0)
        with pytest.raises(SimulationError):
            service.run_until(50.0)
        assert service.now == 100.0

    def test_telemetry(self):
        service = platform()
        handle = service.submit(
            model_name="resnet50", global_batch_size=128,
            max_iterations=200_000, deadline_in=36_000.0,
        )
        service.run_until(60.0)
        assert service.gpus_in_use > 0
        assert handle.job_id in service.active_jobs
        assert handle.gpus == service.gpus_in_use  # only job on the cluster

    def test_drain_completes_everything(self):
        service = platform()
        for _ in range(4):
            service.submit(
                model_name="inceptionv3", global_batch_size=128,
                max_iterations=5_000, deadline_in=7200.0,
            )
        result = service.drain()
        assert result.completed_count + result.dropped_count == 4
        assert service.active_jobs == []

    def test_results_snapshot_mid_session(self):
        service = platform()
        service.submit(
            model_name="bert", global_batch_size=64,
            max_iterations=50_000, deadline_in=36_000.0,
        )
        service.run_until(30.0)
        snapshot = service.results()
        assert snapshot.admitted_count == 1
        assert snapshot.completed_count == 0


class TestGuaranteeThroughTheFrontDoor:
    def test_every_admitted_job_meets_its_deadline(self):
        import numpy as np

        service = platform()
        rng = np.random.default_rng(9)
        handles = []
        clock = 0.0
        for i in range(10):
            clock += float(rng.uniform(0, 600))
            service.run_until(clock)
            one = MODEL.curve("resnet50", 128).throughput(1)
            seconds = float(rng.uniform(600, 2400))
            handles.append(
                service.submit(
                    model_name="resnet50",
                    global_batch_size=128,
                    max_iterations=max(1, int(one * seconds)),
                    deadline_in=float(rng.uniform(0.5, 1.5)) * seconds,
                )
            )
        service.drain()
        for handle in handles:
            if handle.admitted:
                assert handle.met_deadline
