"""Tests for operator admission policies (quotas and pricing, Section 4.4)."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    AdmitAllPolicy,
    CompositePolicy,
    ElasticFlowPolicy,
    Job,
    JobSpec,
    PricingPolicy,
    UserQuotaPolicy,
)
from repro.errors import ConfigurationError
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator

MODEL = ThroughputModel()


def job(i, user="alice", submit=0.0, deadline_rel=7200.0, iters=5000,
        best_effort=False):
    spec = JobSpec(
        job_id=f"j{i}",
        model_name="resnet50",
        global_batch_size=128,
        max_iterations=iters,
        submit_time=submit,
        deadline=None if best_effort else submit + deadline_rel,
        user=user,
    )
    return Job(spec=spec)


class TestAdmitAll:
    def test_always_approves(self):
        policy = AdmitAllPolicy()
        assert policy.approve(job(0), 0.0)
        policy.on_admitted(job(0), 0.0)  # no-op


class TestUserQuota:
    def test_enforces_per_user_cap(self):
        policy = UserQuotaPolicy(max_jobs=2)
        for i in range(2):
            assert policy.approve(job(i), float(i))
            policy.on_admitted(job(i), float(i))
        assert not policy.approve(job(2), 2.0)

    def test_quota_is_per_user(self):
        policy = UserQuotaPolicy(max_jobs=1)
        policy.on_admitted(job(0, user="alice"), 0.0)
        assert not policy.approve(job(1, user="alice"), 1.0)
        assert policy.approve(job(2, user="bob"), 1.0)

    def test_window_slides(self):
        policy = UserQuotaPolicy(max_jobs=1, window_s=100.0)
        policy.on_admitted(job(0), 0.0)
        assert not policy.approve(job(1), 50.0)
        assert policy.approve(job(2), 200.0)  # first admission expired

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            UserQuotaPolicy(max_jobs=0)
        with pytest.raises(ConfigurationError):
            UserQuotaPolicy(max_jobs=1, window_s=0.0)


class TestPricing:
    def build(self, budget=100.0):
        policy = PricingPolicy(budgets={"alice": budget}, rate_per_gpu_hour=1.0)
        policy.register_curve(MODEL.curve("resnet50", 128))
        return policy

    def test_price_scales_with_work(self):
        policy = self.build()
        cheap = policy.price_of(job(0, iters=1000))
        pricey = policy.price_of(job(1, iters=100_000))
        assert pricey > cheap

    def test_tight_deadline_costs_extra(self):
        policy = self.build()
        relaxed = policy.price_of(job(0, iters=500_000, deadline_rel=1e6))
        urgent = policy.price_of(job(1, iters=500_000, deadline_rel=600.0))
        assert urgent > relaxed

    def test_best_effort_has_no_urgency_premium(self):
        policy = self.build()
        base = policy.price_of(job(0, iters=500_000, deadline_rel=1e9))
        be = policy.price_of(job(1, iters=500_000, best_effort=True))
        assert be == pytest.approx(base, rel=0.01)

    def test_budget_depletes(self):
        policy = self.build(budget=1.0)
        first = job(0, iters=50_000)  # ~0.7 GPU-hours of work
        assert policy.approve(first, 0.0)
        policy.on_admitted(first, 0.0)
        assert policy.balance("alice") < 1.0
        # A second identical job no longer fits the budget.
        assert not policy.approve(job(1, iters=50_000), 0.0)

    def test_unknown_user_has_no_budget(self):
        policy = self.build()
        assert not policy.approve(job(0, user="mallory", iters=50_000), 0.0)

    def test_unregistered_curve_rejected(self):
        policy = PricingPolicy(budgets={"alice": 1.0})
        with pytest.raises(ConfigurationError):
            policy.price_of(job(0))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            PricingPolicy(budgets={}, rate_per_gpu_hour=0.0)
        with pytest.raises(ConfigurationError):
            PricingPolicy(budgets={"a": -1.0})


class TestComposite:
    def test_all_must_approve(self):
        quota = UserQuotaPolicy(max_jobs=1)
        composite = CompositePolicy([AdmitAllPolicy(), quota])
        first = job(0)
        assert composite.approve(first, 0.0)
        composite.on_admitted(first, 0.0)
        assert not composite.approve(job(1), 1.0)

    def test_empty_composite_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositePolicy([])


class TestSchedulerIntegration:
    def test_quota_limits_a_flooding_user(self):
        """The paper's malicious-user scenario: one user floods the cluster;
        a quota keeps capacity available for others."""
        specs = []
        for i in range(6):
            specs.append(
                JobSpec(
                    job_id=f"flood-{i}",
                    model_name="resnet50",
                    global_batch_size=128,
                    max_iterations=20_000,
                    submit_time=float(i),
                    deadline=float(i) + 7200.0,
                    user="mallory",
                )
            )
        specs.append(
            JobSpec(
                job_id="victim",
                model_name="bert",
                global_batch_size=64,
                max_iterations=5_000,
                submit_time=10.0,
                deadline=7200.0,
                user="honest",
            )
        )
        policy = ElasticFlowPolicy(operator_policy=UserQuotaPolicy(max_jobs=2))
        result = Simulator(
            ClusterSpec(2, 8),
            policy,
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
        ).run()
        flood = [o for o in result.outcomes if o.job_id.startswith("flood")]
        assert sum(o.admitted for o in flood) == 2
        assert result.outcome_of("victim").admitted
        assert result.outcome_of("victim").met_deadline

    def test_best_effort_also_passes_operator_gate(self):
        quota = UserQuotaPolicy(max_jobs=1)
        specs = [
            JobSpec(
                job_id=f"be-{i}",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=1000,
                submit_time=float(i),
                deadline=None,
                user="alice",
            )
            for i in range(2)
        ]
        policy = ElasticFlowPolicy(operator_policy=quota)
        result = Simulator(
            ClusterSpec(2, 8),
            policy,
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
        ).run()
        assert result.admitted_count == 1
        assert result.dropped_count == 1
