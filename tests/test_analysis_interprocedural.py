"""Acceptance tests for the interprocedural pass (IP rules).

The load-bearing one is the seeded fault: inject an in-place mutation of
a ``trusted=True`` shared plan array into a copy of the real admission
module and require IP002 to catch it — paired with a runtime proof that
the ledger's version/digest machinery *cannot* see that corruption, which
is exactly why the static rule exists.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import run_analysis
from repro.analysis.runner import _dependents_closure
from repro.core.plan import Ledger
from repro.errors import AnalysisError
from repro.perf.coherence import export_contracts, parse_dependency

SRC = Path(__file__).parent.parent / "src" / "repro"

_DET_BAIT = (
    "# lint-module: repro.core.fixture_inc\n"
    "import time\n"
    "\n"
    "def stamp() -> float:\n"
    "    return time.time()\n"
)


def _admission_copies(tmp_path: Path, *, inject: bool) -> list[Path]:
    """Copies of the real admission + plan modules, optionally faulted."""
    admission = (SRC / "core" / "admission.py").read_text()
    if inject:
        needle = "            ledger.set_plan(info.job_id, plan, trusted=True)\n"
        assert admission.count(needle) == 1
        admission = admission.replace(
            needle, needle + "            plan[0] = plan[0] + 1\n"
        )
    paths = []
    for name, text in (
        ("admission_copy.py", "# lint-module: repro.core.admission\n" + admission),
        (
            "plan_copy.py",
            "# lint-module: repro.core.plan\n"
            + (SRC / "core" / "plan.py").read_text(),
        ),
    ):
        path = tmp_path / name
        path.write_text(text)
        paths.append(path)
    return paths


def test_ip002_catches_injected_mutation_digest_checks_miss(
    tmp_path: Path,
) -> None:
    """Seeded fault: a write to a trusted shared plan right after adoption."""
    report = run_analysis(
        _admission_copies(tmp_path, inject=True),
        baseline_path=tmp_path / "baseline.json",
    )
    ip002 = [f for f in report.findings if f.rule_id == "IP002"]
    assert ip002, [f.format_human() for f in report.findings]
    assert any("alias" in f.message for f in ip002)
    assert not report.ok


def test_unfaulted_admission_copies_are_clean(tmp_path: Path) -> None:
    report = run_analysis(
        _admission_copies(tmp_path, inject=False),
        baseline_path=tmp_path / "baseline.json",
    )
    assert not report.findings, [f.format_human() for f in report.findings]


def test_pre_freeze_view_corruption_is_invisible_to_ledger_version() -> None:
    """Why IP002 exists: the runtime defences cannot see this write.

    ``set_plan(..., trusted=True)`` freezes the adopted array in place,
    so a *direct* later write raises.  But a view taken before the share
    keeps its own writeable flag — writing through it corrupts the
    adopted buffer while ``ledger.version`` (the staleness signal every
    digest-equivalence test keys on) never ticks.
    """
    ledger = Ledger(capacity=4, horizon=6)
    plan = np.ones(6, dtype=np.int64)
    view = plan[:2]  # alias created while the buffer was still writable
    ledger.set_plan("job-a", plan, trusted=True)
    version = ledger.version

    with pytest.raises((ValueError, RuntimeError)):
        plan[0] = 7  # the freeze stops the direct write...

    view[0] = 7  # ...but not the pre-freeze alias
    assert int(ledger._plans["job-a"][0]) == 7  # adopted state corrupted
    assert ledger.version == version  # and no staleness signal fired


def test_changed_mode_limits_findings_to_affected_modules(
    tmp_path: Path,
) -> None:
    bad = tmp_path / "bad_module.py"
    bad.write_text(_DET_BAIT)
    full = run_analysis([bad], baseline_path=tmp_path / "baseline.json")
    assert [f.rule_id for f in full.findings] == ["DET001"]
    assert full.changed_scope is None
    # The tmp module is not in the git diff against HEAD, so incremental
    # mode reports nothing for it — while still having analysed it.
    incremental = run_analysis(
        [bad],
        baseline_path=tmp_path / "baseline.json",
        changed_ref="HEAD",
    )
    assert incremental.changed_scope == []
    assert not incremental.findings
    assert incremental.files_analyzed == 1


def test_changed_mode_rejects_update_baseline(tmp_path: Path) -> None:
    bad = tmp_path / "bad_module.py"
    bad.write_text(_DET_BAIT)
    with pytest.raises(AnalysisError):
        run_analysis(
            [bad],
            baseline_path=tmp_path / "baseline.json",
            update_baseline=True,
            changed_ref="HEAD",
        )


def test_dependents_closure_follows_reverse_imports() -> None:
    deps = {
        "repro.a": set(),
        "repro.b": {"repro.a"},
        "repro.c": {"repro.b"},
        "repro.d": {"repro.a.sub"},
        "repro.e": set(),
    }
    assert _dependents_closure({"repro.a"}, deps) == {
        "repro.a",
        "repro.b",
        "repro.c",
        "repro.d",  # imports a submodule of the changed module
    }


def test_baseline_entry_goes_stale_when_rule_implementation_changes(
    tmp_path: Path,
) -> None:
    bad = tmp_path / "bad_module.py"
    bad.write_text(_DET_BAIT)
    baseline = tmp_path / "baseline.json"
    first = run_analysis([bad], baseline_path=baseline, update_baseline=True)
    assert not first.findings and first.baselined

    # Unchanged rule: the accepted finding stays accepted.
    second = run_analysis([bad], baseline_path=baseline)
    assert not second.findings and second.baselined

    document = json.loads(baseline.read_text())
    ((fingerprint, entry),) = document["findings"].items()
    assert entry["rule_impl"], "v2 baselines stamp the rule fingerprint"

    # Simulate an edited rule: the stamped fingerprint no longer matches.
    entry["rule_impl"] = "0" * 12
    baseline.write_text(json.dumps(document))
    third = run_analysis([bad], baseline_path=baseline)
    assert [f.rule_id for f in third.findings] == ["DET001"]

    # v1-format entries (no fingerprint at all) are likewise stale.
    del entry["rule_impl"]
    baseline.write_text(json.dumps(document))
    fourth = run_analysis([bad], baseline_path=baseline)
    assert [f.rule_id for f in fourth.findings] == ["DET001"]


def test_parse_dependency_classifies_kinds_and_verifiers() -> None:
    assert parse_dependency("frozen") == ("frozen", ())
    assert parse_dependency("verified") == ("verified", ())
    assert parse_dependency("verified:check") == ("verified", ("check",))
    assert parse_dependency("verified:a, b") == ("verified", ("a", "b"))
    assert parse_dependency("ledger_version") == ("hook", ())


def test_export_contracts_reports_verifier_declarations() -> None:
    from repro.core.allocation import _UpgradeEngine

    contracts = export_contracts((Ledger, _UpgradeEngine))
    ledger = contracts["classes"]["Ledger"]
    assert ledger["coherent_fields"]["_plans"]["kind"] == "hook"
    engine = contracts["classes"]["_UpgradeEngine"]
    versions = engine["coherent_fields"]["_perturb_versions"]
    assert versions["kind"] == "verified"
    assert list(versions["verifiers"]) == ["window_undisturbed"]
    assert "ledger_version" in contracts["invalidation_registry"]
