"""Tests for the timeline recorder (Figs 7 and 10 substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Timeline, TimelineSample


def sample(time, gpus=0, ce=0.0, running=0, submitted=0, admitted=0):
    return TimelineSample(
        time=time,
        gpus_in_use=gpus,
        cluster_efficiency=ce,
        running_jobs=running,
        submitted=submitted,
        admitted=admitted,
    )


class TestTimeline:
    def test_append_and_length(self):
        timeline = Timeline()
        timeline.record(sample(0.0, gpus=4))
        timeline.record(sample(10.0, gpus=8))
        assert len(timeline) == 2
        assert timeline.end_time == 10.0

    def test_same_timestamp_supersedes(self):
        timeline = Timeline()
        timeline.record(sample(5.0, gpus=4))
        timeline.record(sample(5.0, gpus=16))
        assert len(timeline) == 1
        assert timeline.samples[0].gpus_in_use == 16

    def test_out_of_order_rejected(self):
        timeline = Timeline()
        timeline.record(sample(10.0))
        with pytest.raises(ConfigurationError):
            timeline.record(sample(5.0))

    def test_sample_at(self):
        timeline = Timeline()
        timeline.record(sample(0.0, gpus=2))
        timeline.record(sample(10.0, gpus=6))
        assert timeline.sample_at(0.0).gpus_in_use == 2
        assert timeline.sample_at(9.99).gpus_in_use == 2
        assert timeline.sample_at(10.0).gpus_in_use == 6
        assert timeline.sample_at(1e9).gpus_in_use == 6

    def test_sample_at_before_first_rejected(self):
        timeline = Timeline()
        timeline.record(sample(10.0))
        with pytest.raises(ConfigurationError):
            timeline.sample_at(5.0)

    def test_sample_at_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Timeline().sample_at(0.0)

    def test_series_raw(self):
        timeline = Timeline()
        timeline.record(sample(0.0, gpus=2))
        timeline.record(sample(5.0, gpus=4))
        times, values = timeline.series("gpus_in_use")
        assert times == [0.0, 5.0]
        assert values == [2.0, 4.0]

    def test_series_resampled(self):
        timeline = Timeline()
        timeline.record(sample(0.0, gpus=2))
        timeline.record(sample(10.0, gpus=4))
        times, values = timeline.series("gpus_in_use", resolution_s=5.0)
        assert times == [0.0, 5.0, 10.0]
        assert values == [2.0, 2.0, 4.0]

    def test_series_invalid_resolution(self):
        timeline = Timeline()
        timeline.record(sample(0.0))
        with pytest.raises(ConfigurationError):
            timeline.series("gpus_in_use", resolution_s=0.0)

    def test_series_empty(self):
        assert Timeline().series("gpus_in_use") == ([], [])

    def test_time_weighted_mean(self):
        timeline = Timeline()
        timeline.record(sample(0.0, ce=1.0))
        timeline.record(sample(10.0, ce=0.0))
        # 10 s at 1.0 then 10 s at 0.0.
        assert timeline.time_weighted_mean(
            "cluster_efficiency", end=20.0
        ) == pytest.approx(0.5)

    def test_time_weighted_mean_window(self):
        timeline = Timeline()
        timeline.record(sample(0.0, ce=1.0))
        timeline.record(sample(10.0, ce=0.5))
        mean = timeline.time_weighted_mean("cluster_efficiency", start=10.0, end=20.0)
        assert mean == pytest.approx(0.5)

    def test_time_weighted_mean_invalid_window(self):
        timeline = Timeline()
        timeline.record(sample(0.0))
        with pytest.raises(ConfigurationError):
            timeline.time_weighted_mean("cluster_efficiency", start=5.0, end=5.0)

    def test_time_weighted_mean_empty(self):
        with pytest.raises(ConfigurationError):
            Timeline().time_weighted_mean("cluster_efficiency")
