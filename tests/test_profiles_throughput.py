"""Tests for scaling curves, including the paper's calibration anchors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.profiles import (
    MODEL_ZOO,
    TABLE1_SETTINGS,
    Placement,
    ThroughputModel,
    compact_placement,
)


@pytest.fixture(scope="module")
def model() -> ThroughputModel:
    return ThroughputModel()


class TestPlacement:
    def test_compact_placement_single_node(self):
        assert compact_placement(8, 8) == Placement(8, 1)

    def test_compact_placement_multi_node(self):
        assert compact_placement(32, 8) == Placement(32, 4)

    def test_compact_placement_partial_node(self):
        assert compact_placement(4, 8) == Placement(4, 1)

    def test_invalid_placement_rejected(self):
        with pytest.raises(ConfigurationError):
            Placement(n_gpus=4, nodes_spanned=5)
        with pytest.raises(ConfigurationError):
            Placement(n_gpus=0, nodes_spanned=1)
        with pytest.raises(ConfigurationError):
            compact_placement(8, 0)


class TestCalibrationAnchors:
    """The two measurements the paper quotes verbatim (Sections 3.2)."""

    def test_vgg16_8gpu_efficiency_near_76_percent(self, model):
        efficiency = model.curve("vgg16", 256).efficiency(8)
        assert efficiency == pytest.approx(0.7607, abs=0.02)

    def test_resnet50_same_node_vs_8_nodes_near_2_17x(self, model):
        curve = model.curve("resnet50", 256)
        ratio = curve.throughput(8, Placement(8, 1)) / curve.throughput(
            8, Placement(8, 8)
        )
        assert ratio == pytest.approx(2.17, abs=0.1)


class TestCurveShape:
    @pytest.mark.parametrize("name,batch", TABLE1_SETTINGS)
    def test_sub_linear_scaling(self, model, name, batch):
        """Fig 2a: all curves are below linear at 8 GPUs."""
        curve = model.curve(name, batch)
        assert 1.0 < curve.speedup(8) < 8.0

    @pytest.mark.parametrize("name,batch", TABLE1_SETTINGS)
    def test_diminishing_returns_within_a_node(self, model, name, batch):
        """Per-GPU marginal gain shrinks as the job doubles (concavity)."""
        curve = model.curve(name, batch)
        marginal_2 = curve.speedup(2) - curve.speedup(1)
        marginal_4 = (curve.speedup(4) - curve.speedup(2)) / 2
        marginal_8 = (curve.speedup(8) - curve.speedup(4)) / 4
        assert marginal_2 >= marginal_4 >= marginal_8

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_placement_changes_throughput(self, model, name):
        """Fig 2b: same GPU count, different node spans, different speed."""
        curve = model.curve(name, 256)
        spans = [curve.throughput(8, Placement(8, k)) for k in (1, 2, 4, 8)]
        assert spans == sorted(spans, reverse=True)
        assert spans[0] > spans[-1]

    def test_max_useful_gpus_is_peak(self, model):
        curve = model.curve("inceptionv3", 128)
        peak = curve.max_useful_gpus(128)
        assert curve.throughput(peak) >= curve.throughput(peak * 2)
        assert curve.throughput(peak) > curve.throughput(max(1, peak // 2))

    def test_effective_throughput_monotone(self, model):
        curve = model.curve("inceptionv3", 128)
        values = [curve.effective_throughput(x) for x in range(0, 65)]
        assert values[0] == 0.0
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_best_size_zero_when_no_gpus(self, model):
        assert model.curve("bert", 128).best_size(0) == 0

    def test_best_size_power_of_two(self, model):
        curve = model.curve("resnet50", 256)
        for avail in (3, 5, 7, 9, 100):
            size = curve.best_size(avail)
            assert size & (size - 1) == 0  # power of two
            assert size <= avail


class TestTable:
    def test_table_matches_effective_throughput(self, model):
        curve = model.curve("vgg16", 128)
        table = curve.table(32)
        for x in (0, 1, 2, 3, 8, 17, 32):
            assert table[x] == pytest.approx(curve.effective_throughput(x))

    def test_table_monotone_nondecreasing(self, model):
        for name, batch in TABLE1_SETTINGS:
            table = model.curve(name, batch).table(128)
            assert np.all(np.diff(table) >= 0)

    def test_non_power_of_two_mode_allows_all_sizes(self):
        model = ThroughputModel(power_of_two=False)
        curve = model.curve("resnet50", 256)
        assert curve.allowed_sizes(5) == [1, 2, 3, 4, 5]

    def test_curve_cached(self, model):
        assert model.curve("bert", 64) is model.curve("bert", 64)

    def test_invalid_batch_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.curve("bert", 0)

    def test_mismatched_placement_rejected(self, model):
        curve = model.curve("bert", 64)
        with pytest.raises(ConfigurationError):
            curve.iteration_seconds(4, Placement(8, 1))


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        batch=st.sampled_from([32, 64, 128, 256, 512]),
        name=st.sampled_from(sorted(MODEL_ZOO)),
    )
    def test_throughput_positive_and_finite(self, batch, name):
        curve = ThroughputModel().curve(name, batch)
        for n in (1, 2, 4, 8, 16):
            thr = curve.throughput(n)
            assert np.isfinite(thr) and thr > 0

    @settings(max_examples=30, deadline=None)
    @given(
        batch=st.sampled_from([64, 128, 256]),
        name=st.sampled_from(sorted(MODEL_ZOO)),
        max_gpus=st.sampled_from([8, 32, 128]),
    )
    def test_table_bounded_by_peak(self, batch, name, max_gpus):
        curve = ThroughputModel().curve(name, batch)
        table = curve.table(max_gpus)
        peak = max(curve.throughput(s) for s in curve.allowed_sizes(max_gpus))
        assert table.max() == pytest.approx(peak)
