"""Tests for trace serialisation (JSON and CSV round trips)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.traces import (
    PRODUCTION_CLUSTERS,
    Trace,
    TraceJob,
    generate_trace,
    read_trace_csv,
    trace_from_json,
    trace_to_json,
    write_trace_csv,
)


@pytest.fixture(scope="module")
def trace() -> Trace:
    return generate_trace(PRODUCTION_CLUSTERS[0], seed=2).head(25)


class TestJsonRoundTrip:
    def test_round_trip_identity(self, trace):
        assert trace_from_json(trace_to_json(trace)) == trace

    def test_invalid_json_rejected(self):
        with pytest.raises(TraceError):
            trace_from_json("not json{")

    def test_non_object_rejected(self):
        with pytest.raises(TraceError):
            trace_from_json("[1, 2, 3]")

    def test_missing_keys_rejected(self):
        with pytest.raises(TraceError, match="missing keys"):
            trace_from_json('{"name": "x"}')

    def test_malformed_row_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            trace_from_json(
                '{"name": "x", "cluster_gpus": 8, "jobs": [{"job_id": "a"}]}'
            )

    def test_schema_still_enforced(self):
        # A non-power-of-two GPU count fails TraceJob validation.
        with pytest.raises(TraceError):
            trace_from_json(
                '{"name": "x", "cluster_gpus": 8, "jobs": '
                '[{"job_id": "a", "submit_time": 0, "n_gpus": 3, "duration_s": 10}]}'
            )


class TestCsvRoundTrip:
    def test_round_trip_identity(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert loaded.name == trace.name
        assert loaded.cluster_gpus == trace.cluster_gpus
        assert loaded.jobs == trace.jobs

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("job_id,submit_time,n_gpus,duration_s\n")
        with pytest.raises(TraceError, match="header"):
            read_trace_csv(path)

    def test_header_without_cluster_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# name=x\njob_id,submit_time,n_gpus,duration_s\n")
        with pytest.raises(TraceError):
            read_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "# name=x cluster_gpus=8\n"
            "job_id,submit_time,n_gpus,duration_s\n"
            "a,zero,2,10\n"
        )
        with pytest.raises(TraceError, match="malformed"):
            read_trace_csv(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            read_trace_csv(tmp_path / "nope.csv")


class TestPropertyRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        n_jobs=st.integers(min_value=0, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_json_round_trip_random_traces(self, n_jobs, seed, tmp_path_factory):
        import numpy as np

        rng = np.random.default_rng(seed)
        jobs = [
            TraceJob(
                job_id=f"j{i}",
                submit_time=float(rng.uniform(0, 1e5)),
                n_gpus=int(2 ** rng.integers(0, 6)),
                duration_s=float(rng.uniform(1, 1e5)),
            )
            for i in range(n_jobs)
        ]
        trace = Trace(name="random", cluster_gpus=64, jobs=jobs)
        assert trace_from_json(trace_to_json(trace)) == trace
