"""Tests for topology-aware placement with migration-based defragmentation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, PlacementManager
from repro.errors import PlacementError


@pytest.fixture()
def manager() -> PlacementManager:
    return PlacementManager(ClusterSpec(n_nodes=4, gpus_per_node=8))


class TestPlaceRelease:
    def test_place_reports_compact_span(self, manager):
        placement, migrated = manager.place("a", 8)
        assert placement.n_gpus == 8
        assert placement.nodes_spanned == 1
        assert migrated == []

    def test_multi_node_job_spans_whole_nodes(self, manager):
        placement, _ = manager.place("a", 16)
        assert placement.nodes_spanned == 2

    def test_small_jobs_share_a_node(self, manager):
        first, _ = manager.place("a", 4)
        second, _ = manager.place("b", 4)
        assert first.nodes_spanned == second.nodes_spanned == 1
        assert {g // 8 for g in [*first.gpu_indices, *second.gpu_indices]} == {0}

    def test_place_twice_rejected(self, manager):
        manager.place("a", 2)
        with pytest.raises(PlacementError):
            manager.place("a", 2)

    def test_place_beyond_capacity_rejected(self, manager):
        manager.place("a", 32)
        with pytest.raises(PlacementError):
            manager.place("b", 1)

    def test_release_frees_gpus(self, manager):
        manager.place("a", 16)
        manager.release("a")
        assert manager.free_gpus == 32
        assert not manager.is_placed("a")

    def test_release_unknown_rejected(self, manager):
        with pytest.raises(PlacementError):
            manager.release("ghost")

    def test_placement_of_unknown_rejected(self, manager):
        with pytest.raises(PlacementError):
            manager.placement_of("ghost")

    def test_placed_jobs_sorted(self, manager):
        manager.place("b", 2)
        manager.place("a", 2)
        assert manager.placed_jobs == ["a", "b"]


class TestDefragmentation:
    def test_place_migrates_to_defragment(self, manager):
        """The Section 4.3 scenario: free GPUs exist but are scattered."""
        manager.place("a", 4)
        manager.place("hole1", 4)
        manager.place("b", 4)
        manager.place("hole2", 4)
        manager.place("c", 16)
        manager.release("hole1")
        manager.release("hole2")
        # 8 free GPUs but split into two non-buddy 4-blocks.
        placement, migrated = manager.place("d", 8)
        assert placement.n_gpus == 8
        assert migrated  # somebody had to move
        # All placements remain disjoint.
        taken = [g for j in manager.placed_jobs for g in manager.placement_of(j).gpu_indices]
        assert len(taken) == len(set(taken))

    def test_no_migration_when_block_exists(self, manager):
        manager.place("a", 8)
        _, migrated = manager.place("b", 8)
        assert migrated == []


class TestResize:
    def test_grow_in_place_or_move(self, manager):
        manager.place("a", 4)
        placement, _ = manager.resize("a", 8)
        assert placement.n_gpus == 8
        assert manager.free_gpus == 24

    def test_shrink_keeps_prefix(self, manager):
        before, _ = manager.place("a", 8)
        after, migrated = manager.resize("a", 2)
        assert migrated == []
        assert after.gpu_indices == before.gpu_indices[:2]

    def test_resize_same_size_is_noop(self, manager):
        before, _ = manager.place("a", 4)
        after, migrated = manager.resize("a", 4)
        assert after.block == before.block
        assert migrated == []

    def test_grow_beyond_free_rejected(self, manager):
        manager.place("a", 16)
        manager.place("b", 16)
        with pytest.raises(PlacementError):
            manager.resize("a", 32)
        # Job a is still placed after the failed resize.
        assert manager.placement_of("a").n_gpus == 16

    def test_resize_unknown_rejected(self, manager):
        with pytest.raises(PlacementError):
            manager.resize("ghost", 4)

    def test_grow_with_defrag_migration(self, manager):
        manager.place("a", 8)
        manager.place("b", 8)
        manager.place("c", 8)
        manager.place("d", 8)
        manager.release("a")
        manager.release("c")
        # b and d occupy blocks 1 and 3; growing b to 16 needs a repack.
        placement, _ = manager.resize("b", 16)
        assert placement.n_gpus == 16
        taken = [g for j in manager.placed_jobs for g in manager.placement_of(j).gpu_indices]
        assert len(taken) == len(set(taken))


class TestPlacementProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(
                st.sampled_from(["place", "release", "resize"]),
                st.sampled_from(["a", "b", "c", "d", "e"]),
                st.sampled_from([1, 2, 4, 8, 16]),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_no_fragmentation_guarantee(self, requests):
        """A request never fails while enough GPUs are idle (Theorem of 4.3)."""
        manager = PlacementManager(ClusterSpec(n_nodes=4, gpus_per_node=8))
        for op, job, size in requests:
            try:
                if op == "place":
                    manager.place(job, size)
                elif op == "release":
                    manager.release(job)
                else:
                    manager.resize(job, size)
            except PlacementError as exc:
                message = str(exc)
                # The only legitimate failures: duplicate place, unknown job,
                # or genuinely too few idle GPUs.
                assert (
                    "already placed" in message
                    or "not placed" in message
                    or "idle" in message
                ), message
            # Invariant: placements are disjoint and within capacity.
            taken = [
                g
                for j in manager.placed_jobs
                for g in manager.placement_of(j).gpu_indices
            ]
            assert len(taken) == len(set(taken))
            assert manager.free_gpus + len(taken) == 32
