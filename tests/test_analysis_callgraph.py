"""Property tests for the interprocedural engine.

Hypothesis generates small random module graphs — functions spread over a
few modules, each calling earlier functions (same-module bare calls or
cross-module imports) and optionally writing its array parameter — then
checks the :class:`~repro.analysis.callgraph.CallGraph` edges and the
:class:`~repro.analysis.effects.EffectAnalysis` summaries against a
brute-force interpreter over the generated specification.  On this
restricted language the analysis should be *exact*, so every assertion
is an equality, not an inclusion.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.callgraph import CallGraph
from repro.analysis.context import FileContext
from repro.analysis.effects import EffectAnalysis

#: (module index, writes its parameter directly, callee function indices).
_FuncSpec = tuple[int, bool, list[int]]


@st.composite
def module_graphs(draw) -> tuple[int, list[_FuncSpec]]:
    n_modules = draw(st.integers(min_value=1, max_value=3))
    n_funcs = draw(st.integers(min_value=2, max_value=8))
    funcs: list[_FuncSpec] = []
    for index in range(n_funcs):
        module = draw(st.integers(min_value=0, max_value=n_modules - 1))
        writes = draw(st.booleans())
        callees = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=index - 1), max_size=3
                )
            )
        ) if index else []
        funcs.append((module, writes, callees))
    return n_modules, funcs


def _render(n_modules: int, funcs: list[_FuncSpec]) -> dict[int, str]:
    """Source text per module index for one generated specification."""
    imports: dict[int, set[str]] = {m: set() for m in range(n_modules)}
    bodies: dict[int, list[str]] = {m: [] for m in range(n_modules)}
    for index, (module, writes, callees) in enumerate(funcs):
        for callee in callees:
            callee_module = funcs[callee][0]
            if callee_module != module:
                imports[module].add(
                    f"from repro.genmod{callee_module} import fn{callee}"
                )
        lines = [f"def fn{index}(a):"]
        if writes:
            lines.append("    a[0] = 1")
        lines.extend(f"    fn{callee}(a)" for callee in callees)
        if not writes and not callees:
            lines.append("    return a")
        bodies[module].append("\n".join(lines))
    sources: dict[int, str] = {}
    for module in range(n_modules):
        header = [
            f"# lint-module: repro.genmod{module}",
            '"""Generated module."""',
        ]
        sources[module] = "\n".join(
            header + sorted(imports[module]) + bodies[module]
        ) + "\n"
    return sources


def _oracle(funcs: list[_FuncSpec]) -> tuple[dict[int, bool], dict[int, set[int]]]:
    """Brute-force writes-param closure and call reachability."""
    writes = {index: spec[1] for index, spec in enumerate(funcs)}
    changed = True
    while changed:
        changed = False
        for index, (_, _, callees) in enumerate(funcs):
            if not writes[index] and any(writes[c] for c in callees):
                writes[index] = True
                changed = True
    reach: dict[int, set[int]] = {}
    for index in range(len(funcs)):
        seen: set[int] = set()
        frontier = list(funcs[index][2])
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(funcs[current][2])
        reach[index] = seen
    return writes, reach


@settings(max_examples=30, deadline=None)
@given(module_graphs())
def test_engine_matches_brute_force_interpreter(
    spec: tuple[int, list[_FuncSpec]],
) -> None:
    n_modules, funcs = spec
    sources = _render(n_modules, funcs)
    with tempfile.TemporaryDirectory() as tmp:
        contexts = []
        for module, source in sources.items():
            path = Path(tmp) / f"genmod{module}.py"
            path.write_text(source, encoding="utf-8")
            contexts.append(FileContext.load(path))
        graph = CallGraph.build(contexts)
        effects = EffectAnalysis(graph)

    def qual(index: int) -> str:
        return f"repro.genmod{funcs[index][0]}.fn{index}"

    # Every generated call site resolves — and resolves internally.
    function_sites = [
        site for site in graph.call_sites if not site.caller.endswith("<module>")
    ]
    assert all(site.resolution == "internal" for site in function_sites)

    expected_writes, expected_reach = _oracle(funcs)
    for index, (_, _, callees) in enumerate(funcs):
        sites = graph.sites_in(qual(index))
        got_edges = sorted(callee for site in sites for callee in site.callees)
        assert got_edges == sorted(qual(c) for c in callees)

        summary = effects.summary(qual(index))
        assert summary is not None
        assert ("a" in summary.writes_params) == expected_writes[index]
        assert ("a" in summary.direct_writes_params) == funcs[index][1]

        for target in range(len(funcs)):
            expected = target in expected_reach[index]
            assert (
                effects.reaches_call(qual(index), {f"fn{target}"}) == expected
            )


def test_reaches_call_handles_cycles() -> None:
    source = (
        "# lint-module: repro.genmod0\n"
        "def fn_a(x):\n"
        "    fn_b(x)\n"
        "def fn_b(x):\n"
        "    fn_a(x)\n"
        "def fn_c(x):\n"
        "    fn_a(x)\n"
        "    helper(x)\n"
        "def helper(x):\n"
        "    return x\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cyc.py"
        path.write_text(source, encoding="utf-8")
        graph = CallGraph.build([FileContext.load(path)])
        effects = EffectAnalysis(graph)
    assert effects.reaches_call("repro.genmod0.fn_a", {"fn_b"})
    assert effects.reaches_call("repro.genmod0.fn_b", {"fn_b"})  # via fn_a
    assert effects.reaches_call("repro.genmod0.fn_c", {"helper"})
    assert not effects.reaches_call("repro.genmod0.helper", {"fn_a"})
