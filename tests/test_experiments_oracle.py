"""Tests for the clairvoyant admission oracle."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import JobSpec
from repro.errors import ConfigurationError
from repro.experiments.oracle import clairvoyant_max_admissions
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator
from repro.baselines import make_policy

MODEL = ThroughputModel()


def spec(i, seconds, lam, submit=0.0):
    one = MODEL.curve("resnet50", 128).throughput(1)
    return JobSpec(
        job_id=f"j{i}",
        model_name="resnet50",
        global_batch_size=128,
        max_iterations=max(1, int(one * seconds)),
        submit_time=submit,
        deadline=submit + lam * seconds,
    )


class TestOracle:
    def test_all_feasible_when_light(self):
        specs = [spec(i, 1200.0, 2.0) for i in range(4)]
        result = clairvoyant_max_admissions(specs, 16, MODEL)
        assert result.max_admissions == 4
        assert result.best_subset == ("j0", "j1", "j2", "j3")

    def test_zero_when_all_impossible(self):
        # Work far beyond peak throughput within the deadline.
        one = MODEL.curve("resnet50", 128).throughput(1)
        impossible = [
            JobSpec(
                job_id=f"j{i}",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=int(one * 1e6),
                deadline=60.0,
            )
            for i in range(3)
        ]
        result = clairvoyant_max_admissions(impossible, 16, MODEL)
        assert result.max_admissions == 0

    def test_capacity_limits_the_subset(self):
        # Each job needs the whole 16-GPU cluster for its entire window: a
        # required rate strictly between the 8-GPU and 16-GPU throughputs.
        curve = MODEL.curve("resnet50", 256)
        required_speedup = 0.5 * (curve.speedup(8) + curve.speedup(16))
        tight_lambda = 1.0 / required_speedup
        one = curve.throughput(1)
        specs = [
            JobSpec(
                job_id=f"j{i}",
                model_name="resnet50",
                global_batch_size=256,
                max_iterations=max(1, int(one * 1800.0)),
                deadline=tight_lambda * 1800.0,
            )
            for i in range(3)
        ]
        result = clairvoyant_max_admissions(specs, 16, MODEL)
        assert result.max_admissions == 1

    def test_best_effort_jobs_ignored(self):
        specs = [spec(0, 1200.0, 2.0)]
        specs.append(
            JobSpec(
                job_id="be",
                model_name="bert",
                global_batch_size=64,
                max_iterations=100,
                deadline=None,
            )
        )
        result = clairvoyant_max_admissions(specs, 16, MODEL)
        assert result.max_admissions == 1
        assert result.best_subset == ("j0",)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            clairvoyant_max_admissions([], 16, MODEL)
        with pytest.raises(ConfigurationError):
            clairvoyant_max_admissions(
                [spec(i, 600.0, 1.0) for i in range(15)], 16, MODEL
            )


class TestOnlineVersusOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_online_admission_within_oracle(self, seed):
        """ElasticFlow's online count never exceeds the clairvoyant optimum
        and stays within a reasonable factor of it."""
        rng = np.random.default_rng(seed)
        specs = []
        for i in range(8):
            seconds = float(rng.uniform(600, 2400))
            lam = float(rng.uniform(0.5, 1.2))
            submit = float(rng.uniform(0, 300))
            specs.append(spec(i, seconds, lam, submit=submit))
        oracle = clairvoyant_max_admissions(specs, 16, MODEL)
        result = Simulator(
            ClusterSpec(2, 8),
            make_policy("elasticflow"),
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
        ).run()
        online = result.admitted_count
        assert online <= oracle.max_admissions
        if oracle.max_admissions:
            assert online >= 0.5 * oracle.max_admissions
