"""Tests for the multi-seed statistics helper."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.stats import SeedSweep, sweep_seeds


class TestSeedSweep:
    def test_mean_and_std(self):
        sweep = SeedSweep(values=(1.0, 2.0, 3.0))
        assert sweep.mean == pytest.approx(2.0)
        assert sweep.std == pytest.approx(1.0)
        assert sweep.n == 3

    def test_single_value_has_zero_spread(self):
        sweep = SeedSweep(values=(5.0,))
        assert sweep.std == 0.0
        assert sweep.ci95_halfwidth == 0.0
        assert sweep.ci95 == (5.0, 5.0)

    def test_ci_contains_mean(self):
        sweep = SeedSweep(values=(0.7, 0.8, 0.9, 0.75))
        low, high = sweep.ci95
        assert low < sweep.mean < high

    def test_str_format(self):
        text = str(SeedSweep(values=(1.0, 1.0)))
        assert "n=2" in text


class TestSweepSeeds:
    def test_calls_metric_per_seed(self):
        seen = []

        def metric(seed):
            seen.append(seed)
            return seed * 0.1

        sweep = sweep_seeds(metric, [1, 2, 3])
        assert seen == [1, 2, 3]
        assert sweep.values == (0.1, 0.2, pytest.approx(0.3))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_seeds(lambda s: 1.0, [])

    def test_non_finite_metric_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_seeds(lambda s: math.nan, [1])

    def test_deterministic_metric_zero_variance(self):
        sweep = sweep_seeds(lambda s: 0.5, [1, 2, 3, 4])
        assert sweep.std == 0.0

    @settings(max_examples=50)
    @given(values=st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=20))
    def test_ci_width_shrinks_with_more_samples(self, values):
        sweep = SeedSweep(values=tuple(values))
        doubled = SeedSweep(values=tuple(values) * 4)
        assert doubled.ci95_halfwidth <= sweep.ci95_halfwidth + 1e-9


class TestEndToEnd:
    def test_dsr_across_seeds(self):
        """A tiny real sweep: ElasticFlow DSR across three workload seeds."""
        from repro.experiments.harness import (
            ExperimentConfig,
            run_policies,
            testbed_workload,
        )

        def metric(seed):
            config = ExperimentConfig(seed=seed)
            cluster, specs = testbed_workload(
                config, cluster_gpus=16, n_jobs=12, target_load=1.4
            )
            result = run_policies(["elasticflow"], cluster, specs, config)
            return result["elasticflow"].deadline_satisfactory_ratio

        sweep = sweep_seeds(metric, [0, 1, 2])
        assert 0.0 <= sweep.mean <= 1.0
        assert sweep.n == 3
