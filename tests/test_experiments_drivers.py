"""Small-scale integration tests for the heavy figure drivers.

The benchmarks run the drivers at their paper-like scales; these tests run
them at toy scales so the drivers' plumbing (series extraction,
normalisation, row shapes) is exercised in the fast suite.
"""

import math

import pytest

from repro.experiments import (
    fig6_deadline_satisfaction,
    fig7_timelines,
    fig8b_trace_sweep,
    fig9_sources_of_improvement,
    fig10_cluster_efficiency,
    fig11_best_effort_mix,
    lambda_tightness_sweep,
)
from repro.experiments.harness import ExperimentConfig


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(seed=2, slot_seconds=900.0)


class TestFig6Driver:
    def test_small_scale_runs_all_policies(self, config):
        result = fig6_deadline_satisfaction(scale="small", config=config)
        assert len(result.results) == 7
        for ratio in result.satisfactory_ratios.values():
            assert 0.0 <= ratio <= 1.0

    def test_rows_align_with_results(self, config):
        result = fig6_deadline_satisfaction(scale="small", config=config)
        rows = result.rows()
        assert len(rows) == 7
        for name, ratio, met, dropped in rows:
            assert result.results[name].deadlines_met == met
            assert result.results[name].dropped_count == dropped

    def test_unknown_scale_rejected(self, config):
        with pytest.raises(ValueError):
            fig6_deadline_satisfaction(scale="medium", config=config)


class TestFig7Driver:
    def test_series_extracted_for_requested_policies(self, config):
        series = fig7_timelines(
            config=config,
            scale="small",
            policies=("elasticflow", "gandiva"),
            resolution_s=3600.0,
        )
        assert set(series) == {"elasticflow", "gandiva"}
        for line in series.values():
            assert len(line.hours) == len(line.gpus_in_use)
            assert list(line.submitted) == sorted(line.submitted)

    def test_unknown_policy_rejected(self, config):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig7_timelines(config=config, scale="small", policies=("pollux2",))


class TestFig8bDriver:
    def test_subset_sweep(self, config):
        rows = fig8b_trace_sweep(
            config=config,
            scale=0.0625,
            trace_indices=(0,),
            include_philly=False,
            policies=("elasticflow", "edf"),
        )
        assert len(rows) == 1
        assert set(rows[0].ratios) == {"elasticflow", "edf"}

    def test_invalid_scale_rejected(self, config):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig8b_trace_sweep(config=config, scale=0.0)


class TestFig9Driver:
    def test_two_point_sweep(self, config):
        rows = fig9_sources_of_improvement(
            config=config,
            cluster_sizes=(16, 64),
            n_jobs=20,
            workload_gpus=16,
            target_load=1.5,
        )
        assert [row.cluster_gpus for row in rows] == [16, 64]
        for row in rows:
            assert set(row.ratios) == {"edf", "edf+ac", "edf+es", "elasticflow"}

    def test_invalid_sizes_rejected(self, config):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig9_sources_of_improvement(config=config, cluster_sizes=(17,))


class TestFig10Driver:
    def test_loose_deadlines_admit_everything(self, config):
        result = fig10_cluster_efficiency(
            config=config,
            cluster_gpus=16,
            n_jobs=15,
            policies=("elasticflow", "gandiva"),
            resolution_s=3600.0,
        )
        assert result.all_jobs_ran_everywhere
        assert set(result.mean_efficiency) == {"elasticflow", "gandiva"}
        for values in result.efficiency.values():
            assert all(0.0 <= v <= 1.0 + 1e-9 for v in values)


class TestLambdaSweepDriver:
    def test_two_point_sweep(self, config):
        rows = lambda_tightness_sweep(
            config=config,
            tightness_values=(0.8, 2.0),
            cluster_gpus=16,
            n_jobs=15,
            policies=("elasticflow", "gandiva"),
        )
        assert [row.tightness for row in rows] == [0.8, 2.0]
        # Non-elastic scheduling cannot satisfy lambda < 1 deadlines.
        assert rows[0].ratios["gandiva"] == 0.0
        assert rows[1].ratios["elasticflow"] >= rows[0].ratios["elasticflow"]


class TestFig11Driver:
    def test_two_fraction_sweep(self, config):
        rows = fig11_best_effort_mix(
            config=config,
            fractions=(0.0, 0.5),
            cluster_gpus=16,
            n_jobs=20,
            policies=("elasticflow", "gandiva"),
        )
        assert [row.best_effort_fraction for row in rows] == [0.0, 0.5]
        # With no best-effort jobs, normalised JCT is NaN by construction.
        assert math.isnan(rows[0].best_effort_jct_normalized["elasticflow"])
        assert not math.isnan(rows[1].best_effort_jct_normalized["elasticflow"])
