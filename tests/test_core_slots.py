"""Tests for the slot grid time discretisation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlotGrid
from repro.errors import ConfigurationError


class TestSlotGrid:
    def test_basic_geometry(self):
        grid = SlotGrid(origin=100.0, slot_seconds=10.0, horizon=5)
        assert grid.end == 150.0
        assert grid.slot_start(0) == 100.0
        assert grid.slot_start(3) == 130.0

    def test_slot_of(self):
        grid = SlotGrid(origin=0.0, slot_seconds=10.0, horizon=5)
        assert grid.slot_of(0.0) == 0
        assert grid.slot_of(9.99) == 0
        assert grid.slot_of(10.0) == 1
        assert grid.slot_of(1e9) == 4  # clamped

    def test_slot_of_before_origin_rejected(self):
        grid = SlotGrid(origin=10.0, slot_seconds=1.0, horizon=2)
        with pytest.raises(ConfigurationError):
            grid.slot_of(9.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            SlotGrid(origin=0.0, slot_seconds=0.0, horizon=5)
        with pytest.raises(ConfigurationError):
            SlotGrid(origin=0.0, slot_seconds=1.0, horizon=0)


class TestWeights:
    def test_deadline_on_boundary(self):
        grid = SlotGrid(origin=0.0, slot_seconds=10.0, horizon=4)
        weights = grid.weights_until(20.0)
        assert weights.tolist() == [10.0, 10.0, 0.0, 0.0]

    def test_deadline_mid_slot(self):
        grid = SlotGrid(origin=0.0, slot_seconds=10.0, horizon=4)
        weights = grid.weights_until(25.0)
        assert weights.tolist() == [10.0, 10.0, 5.0, 0.0]

    def test_infinite_deadline_full_weights(self):
        grid = SlotGrid(origin=0.0, slot_seconds=10.0, horizon=3)
        assert grid.weights_until(math.inf).tolist() == [10.0, 10.0, 10.0]

    def test_past_deadline_all_zero(self):
        grid = SlotGrid(origin=100.0, slot_seconds=10.0, horizon=3)
        assert grid.weights_until(50.0).tolist() == [0.0, 0.0, 0.0]

    @settings(max_examples=100)
    @given(
        deadline=st.floats(min_value=0.0, max_value=1000.0),
        slot=st.floats(min_value=0.5, max_value=60.0),
    )
    def test_total_weight_equals_usable_time(self, deadline, slot):
        grid = SlotGrid(origin=0.0, slot_seconds=slot, horizon=64)
        usable = min(max(deadline, 0.0), grid.end)
        assert float(np.sum(grid.weights_until(deadline))) == pytest.approx(usable)


class TestForJobs:
    def test_covers_latest_deadline(self):
        grid = SlotGrid.for_jobs(0.0, [100.0, 250.0], 60.0)
        assert grid.end >= 250.0
        assert grid.horizon == 5

    def test_ignores_infinite_deadlines(self):
        grid = SlotGrid.for_jobs(0.0, [math.inf], 60.0)
        assert grid.horizon == 1

    def test_min_horizon_respected(self):
        grid = SlotGrid.for_jobs(0.0, [], 60.0, min_horizon=4)
        assert grid.horizon == 4

    def test_max_horizon_enforced(self):
        with pytest.raises(ConfigurationError):
            SlotGrid.for_jobs(0.0, [1e9], 1.0, max_horizon=100)

    def test_anchored_at_now(self):
        grid = SlotGrid.for_jobs(42.0, [100.0], 10.0)
        assert grid.origin == 42.0
        assert grid.horizon == 6  # ceil(58 / 10)
