"""Tests for the fan-out engine: dedup, caching, failure and resume."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
)
from repro.experiments.harness import testbed_workload_spec as build_testbed_spec
from repro.parallel.cache import RunCache
from repro.parallel.engine import resolve_workers, run_specs, run_specs_report
from repro.sim.serialize import result_to_json


@pytest.fixture(scope="module")
def grid():
    config = ExperimentConfig()
    cluster, workload = build_testbed_spec(config, cluster_gpus=16, n_jobs=6)
    return policy_run_specs(
        ["elasticflow", "edf", "gandiva"], cluster, workload, config
    )


class TestResolveWorkers:
    def test_auto_is_at_least_one(self):
        assert resolve_workers("auto") >= 1

    def test_integers_pass_through(self):
        assert resolve_workers(4) == 4
        assert resolve_workers("2") == 2

    @pytest.mark.parametrize("bad", [0, -1, "none", 1.5])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_workers(bad)


class TestRunSpecs:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_specs([])

    def test_results_in_input_order(self, grid):
        results = run_specs(grid)
        assert [r.policy_name for r in results] == ["elasticflow", "edf", "gandiva"]

    def test_in_batch_dedup(self, grid):
        doubled = list(grid) + [grid[0], grid[2]]
        report = run_specs_report(doubled)
        assert report.deduplicated == 2
        assert report.executed == 3
        assert result_to_json(report.results[3]) == result_to_json(report.results[0])

    def test_cache_populated_and_hit(self, grid, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        first = run_specs_report(grid, cache=cache)
        assert first.executed == len(grid) and first.cache_hits == 0
        second = run_specs_report(grid, cache=cache)
        assert second.executed == 0 and second.cache_hits == len(grid)
        assert [result_to_json(r) for r in first.results] == [
            result_to_json(r) for r in second.results
        ]

    def test_cached_results_identical_to_fresh(self, grid, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        run_specs(grid, cache=cache)
        assert [result_to_json(r) for r in run_specs(grid, cache=cache)] == [
            result_to_json(r) for r in run_specs(grid)
        ]


class TestFailureAndResume:
    def test_failure_raises_with_context(self, grid):
        poisoned = [dataclasses.replace(grid[1], max_events=1)] + [grid[0]]
        with pytest.raises(SimulationError, match="edf"):
            run_specs(poisoned)

    def test_crashed_batch_resumes_from_cache(self, grid, tmp_path):
        """Completed cells of a crashed sweep are already persisted; fixing
        the bad cell and re-running executes only that one cell."""
        cache = RunCache(root=tmp_path / "c")
        poisoned = list(grid[:2]) + [dataclasses.replace(grid[2], max_events=1)]
        with pytest.raises(SimulationError, match="resume"):
            run_specs(poisoned, cache=cache)
        assert len(cache.entries()) == 2  # the completed cells survived

    def test_resume_executes_only_the_fixed_cell(self, grid, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        poisoned = list(grid[:2]) + [dataclasses.replace(grid[2], max_events=1)]
        with pytest.raises(SimulationError):
            run_specs(poisoned, cache=cache)
        report = run_specs_report(grid, cache=cache)
        assert report.cache_hits == 2
        assert report.executed == 1
        # And the resumed batch matches a from-scratch run exactly.
        assert [result_to_json(r) for r in report.results] == [
            result_to_json(r) for r in run_specs(grid)
        ]
