"""Tests for trace analysis and the occupancy renderer."""

import pytest

from repro.cluster import ClusterSpec, PlacementManager, occupancy_legend, render_occupancy
from repro.errors import TraceError
from repro.traces import (
    PRODUCTION_CLUSTERS,
    Trace,
    TraceJob,
    analyze_trace,
    generate_trace,
    offered_load_series,
    philly_config,
)


def tiny_trace() -> Trace:
    return Trace(
        name="tiny",
        cluster_gpus=4,
        jobs=[
            TraceJob(job_id="a", submit_time=0.0, n_gpus=2, duration_s=3600.0),
            TraceJob(job_id="b", submit_time=1800.0, n_gpus=4, duration_s=1800.0),
            TraceJob(job_id="c", submit_time=3600.0, n_gpus=1, duration_s=7200.0),
        ],
    )


class TestOfferedLoad:
    def test_single_job_full_bucket(self):
        trace = Trace(
            name="one",
            cluster_gpus=4,
            jobs=[TraceJob(job_id="a", submit_time=0.0, n_gpus=4, duration_s=3600.0)],
        )
        times, loads = offered_load_series(trace, bucket_s=3600.0)
        assert times == [0.0]
        assert loads[0] == pytest.approx(1.0)

    def test_partial_overlap_split_across_buckets(self):
        trace = Trace(
            name="half",
            cluster_gpus=2,
            jobs=[TraceJob(job_id="a", submit_time=1800.0, n_gpus=2, duration_s=3600.0)],
        )
        _, loads = offered_load_series(trace, bucket_s=3600.0)
        assert loads == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_demand_conserved(self):
        trace = tiny_trace()
        _, loads = offered_load_series(trace, bucket_s=600.0)
        total = sum(loads) * trace.cluster_gpus * 600.0
        assert total == pytest.approx(trace.total_gpu_seconds, rel=1e-6)

    def test_empty_trace(self):
        assert offered_load_series(Trace(name="e", cluster_gpus=4)) == ([], [])

    def test_invalid_bucket_rejected(self):
        with pytest.raises(TraceError):
            offered_load_series(tiny_trace(), bucket_s=0.0)


class TestAnalyzeTrace:
    def test_summary_fields(self):
        stats = analyze_trace(tiny_trace())
        assert stats.n_jobs == 3
        assert stats.cluster_gpus == 4
        assert stats.total_gpu_hours == pytest.approx((2 + 2 + 2) * 1.0)
        assert stats.single_gpu_fraction == pytest.approx(1 / 3)
        assert stats.size_histogram == {
            1: pytest.approx(1 / 3),
            2: pytest.approx(1 / 3),
            4: pytest.approx(1 / 3),
        }
        assert stats.duration_max_h == pytest.approx(2.0)

    def test_peak_at_least_mean(self):
        stats = analyze_trace(generate_trace(PRODUCTION_CLUSTERS[0], seed=1))
        assert stats.peak_load >= stats.mean_load > 0

    def test_philly_is_single_gpu_dominated(self):
        trace = generate_trace(philly_config(cluster_gpus=128, n_jobs=400), seed=2)
        stats = analyze_trace(trace)
        assert stats.single_gpu_fraction > 0.55

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            analyze_trace(Trace(name="e", cluster_gpus=4))


class TestOccupancyRendering:
    def test_jobs_idle_and_failed_cells(self):
        manager = PlacementManager(ClusterSpec(n_nodes=4, gpus_per_node=4))
        manager.place("alpha", 4)
        manager.place("beta", 2)
        manager.fail_node(2)
        art = render_occupancy(manager)
        lines = art.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("a a a a")
        assert "b b . ." in lines[1]
        assert lines[2].endswith("X X X X")
        assert lines[3].endswith(". . . .")

    def test_legend_names_jobs(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=4))
        manager.place("alpha", 2)
        manager.fail_node(1)
        legend = occupancy_legend(manager)
        assert "a = alpha" in legend
        assert ". = idle" in legend
        assert "X = failed node" in legend

    def test_empty_cluster_all_idle(self):
        manager = PlacementManager(ClusterSpec(n_nodes=1, gpus_per_node=8))
        art = render_occupancy(manager)
        assert art.count(".") == 8

    def test_many_jobs_wrap_symbols(self):
        manager = PlacementManager(ClusterSpec(n_nodes=8, gpus_per_node=8))
        for i in range(64):
            manager.place(f"job-{i:02d}", 1)
        art = render_occupancy(manager)
        assert "." not in art.split("|")[1]  # node 0 fully occupied


class TestCliTraceStats:
    def test_trace_stats_on_csv(self, tmp_path, capsys):
        from repro.cli import main
        from repro.traces import write_trace_csv

        path = tmp_path / "t.csv"
        write_trace_csv(tiny_trace(), path)
        assert main(["trace-stats", str(path)]) == 0
        output = capsys.readouterr().out
        assert "peak load" in output
        assert "Requested-size distribution" in output
