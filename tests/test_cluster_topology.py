"""Tests for the hierarchical GPU topology (paper Fig 5)."""

import pytest

from repro.cluster import ClusterSpec, TopologyLevel, build_topology
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def spec() -> ClusterSpec:
    return ClusterSpec(n_nodes=16, gpus_per_node=8)


@pytest.fixture(scope="module")
def tree(spec):
    return build_topology(spec)


class TestClusterSpec:
    def test_paper_testbed_shape(self, spec):
        assert spec.total_gpus == 128
        assert spec.n_racks == 1

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(n_nodes=3)
        with pytest.raises(ConfigurationError):
            ClusterSpec(gpus_per_node=6)

    def test_pcie_group_cannot_exceed_node(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(gpus_per_node=4, gpus_per_pcie_group=8)

    def test_pcie_group_defaults_to_node(self):
        assert ClusterSpec(gpus_per_node=8).gpus_per_pcie_group == 8

    def test_node_of(self, spec):
        assert spec.node_of(0) == 0
        assert spec.node_of(7) == 0
        assert spec.node_of(8) == 1
        assert spec.node_of(127) == 15

    def test_node_of_out_of_range(self, spec):
        with pytest.raises(ConfigurationError):
            spec.node_of(128)
        with pytest.raises(ConfigurationError):
            spec.node_of(-1)

    def test_nodes_spanned(self, spec):
        assert spec.nodes_spanned([0, 1, 2, 3]) == 1
        assert spec.nodes_spanned([0, 8]) == 2
        assert spec.nodes_spanned(list(range(32))) == 4

    def test_nodes_spanned_empty_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            spec.nodes_spanned([])

    def test_multi_rack(self):
        spec = ClusterSpec(n_nodes=32, nodes_per_rack=16)
        assert spec.n_racks == 2


class TestTopologyTree:
    def test_root_covers_cluster(self, tree, spec):
        assert tree.level is TopologyLevel.CLUSTER
        assert tree.n_gpus == spec.total_gpus
        assert tree.first_gpu == 0

    def test_level_counts(self, tree):
        assert len(tree.iter_level(TopologyLevel.RACK)) == 1
        assert len(tree.iter_level(TopologyLevel.NODE)) == 16
        assert len(tree.iter_level(TopologyLevel.GPU)) == 128

    def test_nodes_are_contiguous_in_order(self, tree):
        nodes = tree.iter_level(TopologyLevel.NODE)
        assert [n.first_gpu for n in nodes] == [8 * i for i in range(16)]

    def test_smallest_subtree_single_node(self, tree):
        subtree = tree.smallest_subtree_containing([0, 3, 7])
        assert subtree.level is TopologyLevel.NODE
        assert subtree.first_gpu == 0

    def test_smallest_subtree_cross_node(self, tree):
        subtree = tree.smallest_subtree_containing([0, 8])
        assert subtree.level is TopologyLevel.RACK

    def test_smallest_subtree_single_gpu(self, tree):
        subtree = tree.smallest_subtree_containing([42])
        assert subtree.level is TopologyLevel.GPU
        assert subtree.first_gpu == 42

    def test_smallest_subtree_rejects_outside_gpu(self, tree):
        node0 = tree.iter_level(TopologyLevel.NODE)[0]
        with pytest.raises(ConfigurationError):
            node0.smallest_subtree_containing([99])

    def test_smallest_subtree_rejects_empty(self, tree):
        with pytest.raises(ConfigurationError):
            tree.smallest_subtree_containing([])

    def test_fig5_style_pcie_groups(self):
        """Paper Fig 5: two four-GPU PCIe groups per server."""
        spec = ClusterSpec(n_nodes=2, gpus_per_node=8, gpus_per_pcie_group=4)
        tree = build_topology(spec)
        groups = tree.iter_level(TopologyLevel.PCIE_GROUP)
        assert len(groups) == 4
        assert all(g.n_gpus == 4 for g in groups)
        # GPUs 0-3 share a group; GPUs 0 and 4 only share the server.
        same_group = tree.smallest_subtree_containing([0, 3])
        cross_group = tree.smallest_subtree_containing([0, 4])
        assert same_group.level is TopologyLevel.PCIE_GROUP
        assert cross_group.level is TopologyLevel.NODE
