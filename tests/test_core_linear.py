"""Tests for the Theorem 1 linear-feasibility criterion, including the
property that progressive filling agrees with it in the linear special case."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdmissionController, SlotGrid
from repro.core.admission import PlanningJob
from repro.core.linear import LinearJob, linear_feasible, linear_schedule_witness
from repro.errors import ConfigurationError


class TestLinearFeasible:
    def test_single_job(self):
        assert linear_feasible([LinearJob("a", gpu_seconds=10.0, deadline=10.0)], 1)
        assert not linear_feasible(
            [LinearJob("a", gpu_seconds=11.0, deadline=10.0)], 1
        )

    def test_cumulative_criterion(self):
        jobs = [
            LinearJob("a", gpu_seconds=4.0, deadline=2.0),
            LinearJob("b", gpu_seconds=4.0, deadline=3.0),
        ]
        # 2 GPUs: by t=2 need 4 <= 4; by t=3 need 8 <= 6 -> infeasible.
        assert not linear_feasible(jobs, 2)
        assert linear_feasible(jobs, 3)

    def test_order_independent_input(self):
        jobs = [
            LinearJob("late", gpu_seconds=1.0, deadline=10.0),
            LinearJob("early", gpu_seconds=1.0, deadline=1.0),
        ]
        assert linear_feasible(jobs, 1)
        assert linear_feasible(list(reversed(jobs)), 1)

    def test_empty_set_feasible(self):
        assert linear_feasible([], 4)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearJob("a", gpu_seconds=0.0, deadline=1.0)
        with pytest.raises(ConfigurationError):
            LinearJob("a", gpu_seconds=1.0, deadline=0.0)
        with pytest.raises(ConfigurationError):
            linear_feasible([], 0)


class TestWitness:
    def test_witness_meets_every_deadline(self):
        jobs = [
            LinearJob("a", gpu_seconds=4.0, deadline=2.0),
            LinearJob("b", gpu_seconds=4.0, deadline=3.0),
        ]
        witness = linear_schedule_witness(jobs, 3)
        assert witness is not None
        for job in jobs:
            intervals = witness[job.job_id]
            work = sum((end - start) * gpus for start, end, gpus in intervals)
            assert work == pytest.approx(job.gpu_seconds)
            assert max(end for _, end, _ in intervals) <= job.deadline + 1e-9

    def test_witness_none_when_infeasible(self):
        assert linear_schedule_witness(
            [LinearJob("a", gpu_seconds=100.0, deadline=1.0)], 4
        ) is None

    def test_witness_never_oversubscribes(self):
        jobs = [LinearJob(f"j{i}", gpu_seconds=2.0, deadline=5.0) for i in range(5)]
        witness = linear_schedule_witness(jobs, 2)
        assert witness is not None
        # Jobs run back to back at full capacity: intervals must not overlap.
        intervals = sorted(
            interval for per_job in witness.values() for interval in per_job
        )
        for (s1, e1, _), (s2, _, _) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9


def linear_planning_job(job_id, gpu_seconds, deadline, grid, capacity, rate=1.0):
    """PlanningJob with a perfectly linear curve T(x) = rate * x."""
    throughput_table = rate * np.arange(capacity + 1, dtype=np.float64)
    size_table = np.arange(capacity + 1, dtype=np.int64)
    return PlanningJob(
        job_id=job_id,
        remaining_iterations=gpu_seconds * rate,
        deadline=deadline,
        weights=grid.weights_until(deadline),
        throughput_table=throughput_table,
        size_table=size_table,
        sizes=list(range(1, capacity + 1)),
    )


class TestAgreementWithProgressiveFilling:
    @settings(max_examples=80, deadline=None)
    @given(
        works=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=5
        ),
        deadline_slots=st.lists(
            st.integers(min_value=1, max_value=10), min_size=1, max_size=5
        ),
        capacity=st.integers(min_value=1, max_value=6),
    )
    def test_theorem1_matches_algorithm1_on_linear_curves(
        self, works, deadline_slots, capacity
    ):
        """On slot-aligned linear instances, Theorem 1 and progressive
        filling must reach the same verdict."""
        n = min(len(works), len(deadline_slots))
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=12)
        linear_jobs = [
            LinearJob(f"j{i}", gpu_seconds=float(works[i]),
                      deadline=float(deadline_slots[i]))
            for i in range(n)
        ]
        infos = [
            linear_planning_job(
                f"j{i}", float(works[i]), float(deadline_slots[i]), grid, capacity
            )
            for i in range(n)
        ]
        theorem = linear_feasible(linear_jobs, capacity)
        algorithm = AdmissionController(capacity).plan_shares(infos, grid).admitted
        assert theorem == algorithm
