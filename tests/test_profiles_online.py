"""Tests for online throughput profiling (paper Section 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec
from repro.errors import ConfigurationError
from repro.profiles import (
    OnlineThroughputModel,
    ScaledThroughputModel,
    ThroughputModel,
)
from repro.sim import ElasticExecutor, Simulator

TRUE_MODEL = ThroughputModel()


class TestScaledModel:
    def test_factor_applied_uniformly(self):
        biased = ScaledThroughputModel(TRUE_MODEL, 1.5)
        true_curve = TRUE_MODEL.curve("resnet50", 128)
        biased_curve = biased.curve("resnet50", 128)
        for n in (1, 2, 4, 8):
            assert biased_curve.throughput(n) == pytest.approx(
                1.5 * true_curve.throughput(n)
            )

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaledThroughputModel(TRUE_MODEL, 0.0)


class TestOnlineModel:
    def test_no_observations_reproduces_prior(self):
        online = OnlineThroughputModel(ScaledThroughputModel(TRUE_MODEL, 1.3))
        prior = ScaledThroughputModel(TRUE_MODEL, 1.3).curve("bert", 64)
        corrected = online.curve("bert", 64)
        for n in (1, 4, 8):
            assert corrected.throughput(n) == pytest.approx(prior.throughput(n))

    def test_observation_corrects_the_observed_size(self):
        online = OnlineThroughputModel(
            ScaledThroughputModel(TRUE_MODEL, 1.5), alpha=1.0
        )
        truth = TRUE_MODEL.curve("resnet50", 128).throughput(4)
        online.observe("resnet50", 128, 4, truth)
        assert online.correction_factor("resnet50", 128, 4) == pytest.approx(
            1 / 1.5
        )
        corrected = online.curve("resnet50", 128)
        assert corrected.throughput(4) == pytest.approx(truth)

    def test_unobserved_sizes_borrow_the_average_correction(self):
        online = OnlineThroughputModel(
            ScaledThroughputModel(TRUE_MODEL, 2.0), alpha=1.0
        )
        truth = TRUE_MODEL.curve("resnet50", 128).throughput(2)
        online.observe("resnet50", 128, 2, truth)
        corrected = online.curve("resnet50", 128)
        # Size 8 was never observed but inherits the systematic 0.5x.
        assert corrected.throughput(8) == pytest.approx(
            TRUE_MODEL.curve("resnet50", 128).throughput(8), rel=0.01
        )

    def test_corrections_are_per_configuration(self):
        online = OnlineThroughputModel(
            ScaledThroughputModel(TRUE_MODEL, 1.5), alpha=1.0
        )
        online.observe(
            "resnet50", 128, 2, TRUE_MODEL.curve("resnet50", 128).throughput(2)
        )
        assert online.correction_factor("resnet50", 128, 2) != 1.0
        assert online.correction_factor("bert", 64, 2) == 1.0

    def test_ewma_converges_under_noise(self):
        online = OnlineThroughputModel(
            ScaledThroughputModel(TRUE_MODEL, 1.5), alpha=0.2
        )
        truth = TRUE_MODEL.curve("resnet50", 128).throughput(8)
        rng = np.random.default_rng(0)
        for _ in range(300):
            noisy = truth * float(rng.lognormal(0.0, 0.05))
            online.observe("resnet50", 128, 8, noisy)
        assert online.correction_factor("resnet50", 128, 8) == pytest.approx(
            1 / 1.5, rel=0.05
        )

    def test_invalid_inputs_rejected(self):
        online = OnlineThroughputModel(TRUE_MODEL)
        with pytest.raises(ConfigurationError):
            online.observe("resnet50", 128, 0, 1.0)
        with pytest.raises(ConfigurationError):
            online.observe("resnet50", 128, 2, 0.0)
        with pytest.raises(ConfigurationError):
            OnlineThroughputModel(TRUE_MODEL, alpha=0.0)

    @settings(max_examples=30, deadline=None)
    @given(factor=st.floats(min_value=0.5, max_value=2.5))
    def test_one_perfect_observation_recovers_any_bias(self, factor):
        online = OnlineThroughputModel(
            ScaledThroughputModel(TRUE_MODEL, factor), alpha=1.0
        )
        truth = TRUE_MODEL.curve("vgg16", 128).throughput(4)
        online.observe("vgg16", 128, 4, truth)
        assert online.curve("vgg16", 128).throughput(4) == pytest.approx(truth)


class TestClosedLoop:
    """The paper's claim end to end: during-execution profiling repairs a
    stale pre-run profile and restores the deadline guarantee."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(5)
        one = TRUE_MODEL.curve("resnet50", 128).throughput(1)
        specs = []
        for i in range(40):
            seconds = float(rng.uniform(900, 3600))
            submit = float(rng.uniform(0, 2400))
            lam = float(rng.uniform(0.55, 1.0))
            specs.append(
                JobSpec(
                    job_id=f"j{i}",
                    model_name="resnet50",
                    global_batch_size=128,
                    max_iterations=max(1, int(one * seconds)),
                    submit_time=submit,
                    deadline=submit + lam * seconds,
                )
            )
        return specs

    def run(self, workload, planning, hook=None):
        return Simulator(
            ClusterSpec(2, 8),
            ElasticFlowPolicy(planning_throughput=planning),
            workload,
            throughput=TRUE_MODEL,
            executor=ElasticExecutor.disabled(),
            observation_hook=hook,
        ).run()

    def test_stale_profile_breaks_guarantees(self, workload):
        result = self.run(workload, ScaledThroughputModel(TRUE_MODEL, 1.5))
        missed = sum(1 for o in result.outcomes if o.admitted and not o.met_deadline)
        assert missed > 0  # optimistic promises the hardware cannot keep

    def test_online_correction_restores_guarantees(self, workload):
        online = OnlineThroughputModel(ScaledThroughputModel(TRUE_MODEL, 1.5))

        def hook(job, n_gpus, rate):
            online.observe(
                job.spec.model_name, job.spec.global_batch_size, n_gpus, rate
            )

        corrected = self.run(workload, online, hook)
        truth = self.run(workload, None)
        stale = self.run(workload, ScaledThroughputModel(TRUE_MODEL, 1.5))

        def missed(result):
            return sum(
                1 for o in result.outcomes if o.admitted and not o.met_deadline
            )

        # Jobs admitted before the first observations arrive can still be
        # burned by the optimistic prior; after that the corrections hold,
        # so the damage shrinks to (at most) the warm-up admissions and the
        # overall ratio converges to the true-profile run.
        assert missed(corrected) <= 2
        assert missed(corrected) < missed(stale)
        assert corrected.deadline_satisfactory_ratio == pytest.approx(
            truth.deadline_satisfactory_ratio, abs=0.05
        )
        assert online.observations > 0
