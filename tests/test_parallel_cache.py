"""Tests for the content-addressed run cache and fingerprinting."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentConfig
from repro.experiments.harness import testbed_workload_spec as build_testbed_spec
from repro.parallel.cache import RunCache, default_cache_dir
from repro.parallel.fingerprint import (
    CODE_VERSION,
    canonical_json,
    fingerprint_payload,
    fingerprint_run,
)
from repro.parallel.spec import PolicySpec, RunSpec
from repro.sim.serialize import result_to_json


@pytest.fixture()
def spec():
    config = ExperimentConfig()
    cluster, workload = build_testbed_spec(config, cluster_gpus=16, n_jobs=6)
    return RunSpec(
        workload=workload,
        policy=config.policy_spec("elasticflow"),
        cluster=cluster,
        interconnect=config.throughput.interconnect,
    )


class TestFingerprint:
    def test_stable_across_calls(self, spec):
        assert fingerprint_run(spec) == fingerprint_run(spec)

    def test_sensitive_to_every_knob(self, spec):
        import dataclasses

        base = fingerprint_run(spec)
        for change in (
            {"slot_seconds": 300.0},
            {"overheads_enabled": False},
            {"record_timeline": True},
            {"policy": PolicySpec.of("edf")},
        ):
            assert fingerprint_run(dataclasses.replace(spec, **change)) != base

    def test_salt_changes_fingerprint(self, spec):
        assert fingerprint_run(spec) != fingerprint_run(spec, salt="other-version")
        assert fingerprint_run(spec) == fingerprint_run(spec, salt=CODE_VERSION)

    def test_canonical_json_rejects_exotic_payloads(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": object()})
        with pytest.raises(ConfigurationError):
            canonical_json({1: "non-string key"})

    def test_canonical_json_handles_non_finite(self):
        text = canonical_json({"a": float("inf"), "b": float("nan")})
        assert text == '{"a":"inf","b":"nan"}'

    def test_policy_knob_order_is_canonical(self):
        assert fingerprint_payload(
            PolicySpec.of("edf+es", a=1, b=2).payload()
        ) == fingerprint_payload(PolicySpec.of("edf+es", b=2, a=1).payload())


class TestRunCache:
    def test_miss_then_hit(self, spec, tmp_path):
        cache = RunCache(root=tmp_path / "cache")
        assert cache.get(spec) is None
        result = spec.execute()
        cache.put(spec, result)
        cached = cache.get(spec)
        assert cached is not None
        assert result_to_json(cached) == result_to_json(result)
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_identical_spec_hits_across_handles(self, spec, tmp_path):
        RunCache(root=tmp_path / "c").put(spec, spec.execute())
        fresh = RunCache(root=tmp_path / "c")
        assert fresh.get(spec) is not None

    def test_salt_change_invalidates(self, spec, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        cache.put(spec, spec.execute())
        stale = RunCache(root=tmp_path / "c", salt="elasticflow-sim-v999")
        assert stale.get(spec) is None

    def test_corrupt_entry_is_evicted(self, spec, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        path = cache.put(spec, spec.execute())
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get(spec) is None
        assert cache.stats.evicted_corrupt == 1
        assert not path.exists()

    def test_tampered_envelope_is_a_miss(self, spec, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        path = cache.put(spec, spec.execute())
        envelope = json.loads(path.read_text())
        envelope["fingerprint"] = "0" * 64
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.get(spec) is None

    def test_entries_and_wipe(self, spec, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        cache.put(spec, spec.execute())
        assert len(cache.entries()) == 1
        assert cache.size_bytes() > 0
        assert cache.wipe() == 1
        assert cache.entries() == []

    def test_default_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert str(default_cache_dir()) == ".repro-cache"

    def test_envelope_records_spec_payload(self, spec, tmp_path):
        """Entries are self-describing: the envelope stores the payload the
        fingerprint was computed from."""
        cache = RunCache(root=tmp_path / "c")
        path = cache.put(spec, spec.execute())
        envelope = json.loads(path.read_text())
        assert envelope["spec"] == json.loads(canonical_json(spec.payload()))
        assert envelope["salt"] == CODE_VERSION
