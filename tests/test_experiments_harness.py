"""Tests for the experiment harness and one small end-to-end driver run."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import (
    ExperimentConfig,
    improvement_factors,
    run_policies,
)
from repro.experiments.harness import testbed_workload as build_testbed


@pytest.fixture(scope="module")
def config() -> ExperimentConfig:
    return ExperimentConfig(seed=1, slot_seconds=600.0)


class TestExperimentConfig:
    def test_executor_reflects_toggle(self, config):
        assert ExperimentConfig(overheads_enabled=False).executor().enabled is False
        assert ExperimentConfig(overheads_enabled=True).executor().enabled is True

    def test_policy_forwards_protection_knobs(self):
        config = ExperimentConfig(
            safety_margin=0.07, deadline_padding_s=33.0, stability_threshold=0.2
        )
        policy = config.policy("elasticflow")
        assert policy.safety_margin == 0.07
        assert policy.deadline_padding_s == 33.0
        assert policy.stability_threshold == 0.2

    def test_baselines_get_no_knobs(self, config):
        policy = config.policy("edf")
        assert policy.name == "edf"


class TestTestbedWorkload:
    def test_cluster_and_jobs_consistent(self, config):
        cluster, specs = build_testbed(config, cluster_gpus=32, n_jobs=25)
        assert cluster.total_gpus == 32
        assert len(specs) == 25

    def test_deterministic_per_seed(self, config):
        _, a = build_testbed(config, cluster_gpus=32, n_jobs=10)
        _, b = build_testbed(config, cluster_gpus=32, n_jobs=10)
        assert a == b

    def test_best_effort_fraction_forwarded(self, config):
        _, specs = build_testbed(
            config, cluster_gpus=32, n_jobs=40, best_effort_fraction=1.0
        )
        assert all(spec.best_effort for spec in specs)

    def test_non_node_multiple_rejected(self, config):
        with pytest.raises(ConfigurationError):
            build_testbed(config, cluster_gpus=33, n_jobs=10)


class TestRunPolicies:
    def test_runs_each_named_policy(self, config):
        cluster, specs = build_testbed(config, cluster_gpus=16, n_jobs=8)
        results = run_policies(["elasticflow", "edf"], cluster, specs, config)
        assert set(results) == {"elasticflow", "edf"}
        for result in results.values():
            assert result.completed_count + result.dropped_count == 8

    def test_timeline_recording_toggle(self, config):
        cluster, specs = build_testbed(config, cluster_gpus=16, n_jobs=5)
        off = run_policies(["edf"], cluster, specs, config)["edf"]
        on = run_policies(
            ["edf"], cluster, specs, config, record_timeline=True
        )["edf"]
        assert off.timeline is None
        assert on.timeline is not None and len(on.timeline) > 0

    def test_empty_policy_list_rejected(self, config):
        cluster, specs = build_testbed(config, cluster_gpus=16, n_jobs=5)
        with pytest.raises(ConfigurationError):
            run_policies([], cluster, specs, config)


class TestImprovementFactors:
    def test_factors_relative_to_reference(self, config):
        cluster, specs = build_testbed(
            config, cluster_gpus=16, n_jobs=20, target_load=2.0
        )
        results = run_policies(["elasticflow", "gandiva"], cluster, specs, config)
        factors = improvement_factors(results)
        assert "gandiva" in factors and "elasticflow" not in factors
        expected = results["elasticflow"].deadlines_met / max(
            1, results["gandiva"].deadlines_met
        )
        assert factors["gandiva"] == pytest.approx(expected)

    def test_zero_baseline_gives_infinity(self):
        from repro.sim.metrics import SimulationResult

        results = {
            "elasticflow": SimulationResult(policy_name="elasticflow", outcomes=[]),
            "edf": SimulationResult(policy_name="edf", outcomes=[]),
        }
        factors = improvement_factors(results)
        assert math.isinf(factors["edf"]) or factors["edf"] == 0

    def test_missing_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            improvement_factors({})
