"""Tests for Algorithm 1 — progressive filling and admission control.

Includes the paper's worked examples: the Fig 4 scenario (job C needs one
GPU in the first slot and four in the second to meet its deadline) and the
Fig 3 setup (two jobs that EDF cannot satisfy but one-worker-each can).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdmissionController, SlotGrid, progressive_filling
from repro.core.job import Job, JobSpec
from repro.core.admission import planning_job
from repro.errors import ConfigurationError
from repro.profiles import ThroughputModel

from conftest import synthetic_planning_job

#: The toy scaling curve of paper Figs 3/4: 1, 1.5 and 2 units of
#: throughput at 1, 2 and 4 workers.
FIG_CURVE = {1: 1.0, 2: 1.5, 4: 2.0}


class TestProgressiveFilling:
    def test_single_gpu_suffices_for_loose_deadline(self, unit_grid):
        info = synthetic_planning_job("a", 3.0, 3.0, unit_grid, 4, FIG_CURVE)
        plan = progressive_filling(info, np.full(5, 4))
        assert plan.tolist() == [1, 1, 1, 0, 0]

    def test_tighter_deadline_needs_more_gpus(self, unit_grid):
        # Deadline 2: cap 2 gives 1.5+1.5 = 3 units of work.
        info = synthetic_planning_job("a", 3.0, 2.0, unit_grid, 4, FIG_CURVE)
        plan = progressive_filling(info, np.full(5, 4))
        assert plan.tolist() == [2, 2, 0, 0, 0]

    def test_fig4_scenario_one_then_four(self, unit_grid):
        """Paper Fig 4: 3 of 4 GPUs are busy in slot 0; job C (D=2, M=3)
        must take 1 GPU now and 4 GPUs in the next slot."""
        available = np.array([1, 4, 4, 4, 4])
        info = synthetic_planning_job("c", 3.0, 2.0, unit_grid, 4, FIG_CURVE)
        plan = progressive_filling(info, available)
        assert plan.tolist() == [1, 4, 0, 0, 0]

    def test_fig4_cap_two_is_insufficient(self, unit_grid):
        """With cap 2 job C only achieves T(1)+T(2) = 2.5 < 3 iterations."""
        available = np.array([1, 4, 4, 4, 4])
        info = synthetic_planning_job("c", 3.0, 2.0, unit_grid, 4, {1: 1.0, 2: 1.5})
        assert progressive_filling(info, available) is None

    def test_infeasible_deadline_returns_none(self, unit_grid):
        info = synthetic_planning_job("a", 100.0, 2.0, unit_grid, 4, FIG_CURVE)
        assert progressive_filling(info, np.full(5, 4)) is None

    def test_no_capacity_returns_none(self, unit_grid):
        info = synthetic_planning_job("a", 1.0, 2.0, unit_grid, 4, FIG_CURVE)
        assert progressive_filling(info, np.zeros(5, dtype=int)) is None

    def test_zero_remaining_returns_zero_plan(self, unit_grid):
        info = synthetic_planning_job("a", 0.0, 2.0, unit_grid, 4, FIG_CURVE)
        plan = progressive_filling(info, np.full(5, 4))
        assert plan.tolist() == [0] * 5

    def test_allocation_rounds_down_to_runnable_size(self, unit_grid):
        # With 3 GPUs free the job can only actually use 2.
        available = np.array([3, 3, 3, 3, 3])
        info = synthetic_planning_job("a", 3.0, 2.0, unit_grid, 4, FIG_CURVE)
        plan = progressive_filling(info, available)
        assert plan.tolist() == [2, 2, 0, 0, 0]

    def test_head_progress_counts(self, unit_grid):
        info = synthetic_planning_job("a", 3.0, 3.0, unit_grid, 4, FIG_CURVE)
        head = np.array([2, 0, 0, 0, 0])
        plan = progressive_filling(info, np.full(5, 4), start_slot=1, head=head)
        # Head contributes 1.5; tail needs 1.5 more -> cap 1 gives 1+1 at
        # slots 1-2 (trimmed at completion).
        assert plan[0] == 2
        assert plan[1:].sum() > 0
        progress = float(np.sum(info.throughput_table[plan] * info.weights))
        assert progress >= 3.0 - 1e-9

    def test_fractional_last_slot(self):
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=3)
        # Deadline 1.5: slot 0 full, slot 1 half usable.
        info = synthetic_planning_job("a", 1.5, 1.5, grid, 4, {1: 1.0})
        plan = progressive_filling(info, np.full(3, 4))
        assert plan.tolist() == [1, 1, 0]

    def test_completion_slot_shaved_to_residual(self, unit_grid):
        """The finishing slot holds only the GPUs the residual work needs."""
        # Linear curve; work 3 with cap 2 finishes mid-slot-1: the fill must
        # keep 2 GPUs in slot 0 but only 1 in slot 1 (residual is 1 unit).
        info = synthetic_planning_job(
            "a", 3.0, 2.0, unit_grid, 4, {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
        )
        plan = progressive_filling(info, np.full(5, 4))
        assert plan.tolist() == [2, 1, 0, 0, 0]

    def test_shave_regression_theorem1_instance(self):
        """The hypothesis-found instance: feasible per Theorem 1, rejected
        by the unshaved fill (the finishing slot hoarded a spare GPU)."""
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=12)
        linear = {size: float(size) for size in range(1, 5)}
        jobs = [
            synthetic_planning_job("j1", 2.0, 1.0, grid, 4, linear),
            synthetic_planning_job("j0", 3.0, 2.0, grid, 4, linear),
            synthetic_planning_job("j4", 7.0, 3.0, grid, 4, linear),
            synthetic_planning_job("j2", 1.0, 4.0, grid, 4, linear),
            synthetic_planning_job("j3", 1.0, 4.0, grid, 4, linear),
        ]
        result = AdmissionController(4).plan_shares(jobs, grid)
        assert result.admitted


class TestAdmissionController:
    def build(self, capacity=4):
        return AdmissionController(capacity)

    def test_single_job_admitted(self, unit_grid):
        controller = self.build()
        info = synthetic_planning_job("a", 3.0, 3.0, unit_grid, 4, FIG_CURVE)
        result = controller.try_admit(info, [], unit_grid)
        assert result.admitted
        assert result.plans["a"].tolist() == [1, 1, 1, 0, 0]

    def test_fig3_both_jobs_fit_with_one_worker_each(self, unit_grid):
        """Paper Fig 3(c): A (D=3) and B (D=3.5) both satisfiable on 2 GPUs."""
        controller = self.build(capacity=2)
        job_a = synthetic_planning_job("a", 3.0, 3.0, unit_grid, 2, {1: 1.0, 2: 1.5})
        job_b = synthetic_planning_job("b", 3.0, 3.5, unit_grid, 2, {1: 1.0, 2: 1.5})
        result = controller.try_admit(job_b, [job_a], unit_grid)
        assert result.admitted
        assert result.plans["a"].tolist()[:3] == [1, 1, 1]
        assert result.plans["b"].tolist()[:3] == [1, 1, 1]

    def test_rejects_job_that_would_break_existing_deadline(self, unit_grid):
        controller = self.build(capacity=1)
        job_a = synthetic_planning_job("a", 3.0, 3.0, unit_grid, 1, {1: 1.0})
        job_b = synthetic_planning_job("b", 3.0, 3.5, unit_grid, 1, {1: 1.0})
        result = controller.try_admit(job_b, [job_a], unit_grid)
        assert not result.admitted
        assert result.infeasible_job == "b"

    def test_new_early_job_can_evict_nothing(self, unit_grid):
        """A newcomer with the earliest deadline is rejected when admitting it
        would break a previously admitted job."""
        controller = self.build(capacity=1)
        older = synthetic_planning_job("old", 2.0, 4.0, unit_grid, 1, {1: 1.0})
        newcomer = synthetic_planning_job("new", 3.0, 3.0, unit_grid, 1, {1: 1.0})
        result = controller.try_admit(newcomer, [older], unit_grid)
        assert not result.admitted
        # The violated job is the *older* one, re-planned after the newcomer.
        assert result.infeasible_job == "old"

    def test_best_effort_always_admitted(self, unit_grid):
        controller = self.build(capacity=1)
        slo = synthetic_planning_job("slo", 3.0, 3.0, unit_grid, 1, {1: 1.0})
        be = synthetic_planning_job(
            "be", 100.0, float("inf"), unit_grid, 1, {1: 1.0}, best_effort=True
        )
        result = controller.try_admit(be, [slo], unit_grid)
        assert result.admitted
        assert result.plans["be"].tolist() == [0] * 5

    def test_plan_shares_degrades_without_stopping(self, unit_grid):
        controller = self.build(capacity=1)
        job_a = synthetic_planning_job("a", 3.0, 3.0, unit_grid, 1, {1: 1.0})
        job_b = synthetic_planning_job("b", 3.0, 3.5, unit_grid, 1, {1: 1.0})
        result = controller.plan_shares([job_a, job_b], unit_grid, stop_on_failure=False)
        assert not result.admitted
        assert result.infeasible_job == "b"
        # Both jobs still have plans; b runs best-possible.
        assert "b" in result.plans

    def test_ledger_capacity_respected(self, unit_grid):
        controller = self.build(capacity=4)
        jobs = [
            synthetic_planning_job(f"j{i}", 2.0, 3.0, unit_grid, 4, FIG_CURVE)
            for i in range(4)
        ]
        result = controller.plan_shares(jobs, unit_grid)
        assert result.admitted
        total = sum(result.plans[f"j{i}"] for i in range(4))
        assert np.all(total <= 4)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(0)


class TestPlanningJobFactory:
    def test_tables_from_real_curve(self):
        grid = SlotGrid(origin=0.0, slot_seconds=60.0, horizon=10)
        job = Job(
            spec=JobSpec(
                job_id="a",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=1000,
                deadline=600.0,
            )
        )
        curve = ThroughputModel().curve("resnet50", 128)
        info = planning_job(job, curve, grid, 16)
        assert info.remaining_iterations == 1000
        assert info.throughput_table[1] == pytest.approx(curve.throughput(1))
        assert info.size_table[3] == 2  # floor to runnable power of two
        assert tuple(info.sizes) == (1, 2, 4, 8, 16)

    def test_safety_margin_inflates_work(self):
        grid = SlotGrid(origin=0.0, slot_seconds=60.0, horizon=10)
        job = Job(
            spec=JobSpec(
                job_id="a",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=1000,
                deadline=600.0,
            )
        )
        curve = ThroughputModel().curve("resnet50", 128)
        info = planning_job(job, curve, grid, 16, safety_margin=0.1)
        assert info.remaining_iterations == pytest.approx(1100.0)

    def test_negative_margin_rejected(self):
        grid = SlotGrid(origin=0.0, slot_seconds=60.0, horizon=2)
        job = Job(
            spec=JobSpec(
                job_id="a",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=10,
                deadline=60.0,
            )
        )
        curve = ThroughputModel().curve("resnet50", 128)
        with pytest.raises(ConfigurationError):
            planning_job(job, curve, grid, 16, safety_margin=-0.1)


class TestAdmissionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        deadlines=st.lists(
            st.floats(min_value=0.5, max_value=5.0), min_size=1, max_size=6
        ),
        works=st.lists(
            st.floats(min_value=0.5, max_value=6.0), min_size=1, max_size=6
        ),
    )
    def test_admitted_sets_are_feasible(self, deadlines, works):
        """Whenever plan_shares succeeds, every plan meets its deadline and
        capacity is never exceeded."""
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=8)
        n = min(len(deadlines), len(works))
        infos = [
            synthetic_planning_job(f"j{i}", works[i], deadlines[i], grid, 4, FIG_CURVE)
            for i in range(n)
        ]
        controller = AdmissionController(4)
        result = controller.plan_shares(infos, grid)
        if not result.admitted:
            return
        total = np.zeros(8, dtype=int)
        for info in infos:
            plan = result.plans[info.job_id]
            total += plan
            progress = float(np.sum(info.throughput_table[plan] * info.weights))
            assert progress >= info.remaining_iterations - 1e-6
        assert np.all(total <= 4)
