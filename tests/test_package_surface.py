"""Tests for the public package surface and the exception hierarchy."""

import importlib

import pytest

import repro
from repro import errors


class TestTopLevelExports:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_quickstart_names_available(self):
        for name in (
            "ClusterSpec",
            "JobSpec",
            "ElasticFlowPolicy",
            "Simulator",
            "ThroughputModel",
            "SimulationResult",
        ):
            assert hasattr(repro, name), name

    def test_all_lists_existing_names(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestSubpackagesImportCleanly:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.cluster",
            "repro.profiles",
            "repro.traces",
            "repro.sim",
            "repro.baselines",
            "repro.executor",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_import_order_independent(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module}.{name}"


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_unknown_model_error_is_key_error(self):
        assert issubclass(errors.UnknownModelError, KeyError)

    def test_trace_error_is_value_error(self):
        assert issubclass(errors.TraceError, ValueError)

    def test_single_except_catches_everything(self):
        from repro.profiles import get_model

        with pytest.raises(errors.ReproError):
            get_model("nope")
