"""Tests for the incremental replanning layer.

Covers the reuse tiers added on top of the exact-match fill memo — the
interval-indexed retained-fill event-delta path in ``AdmissionController``
(watermark reuse plus the slack tier), warm-started progressive filling,
and the batched cold fill — plus the phase probe, warm-hint pruning, and
the bounded controller cache.  The load-bearing property throughout is
*bit-identical decisions*: every fast path must reproduce exactly what the
cold solve (and the cache-disabled reference) would have produced.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec
from repro.core.admission import AdmissionController, progressive_filling
from repro.core.job import Job
from repro.core.plan import Ledger
from repro.core.slots import SlotGrid
from repro.perf import probe
from repro.perf.tables import (
    batched_solver_disabled,
    cache_stats,
    planning_cache_disabled,
    reset_cache,
)
from repro.profiles import (
    OnlineThroughputModel,
    ScaledThroughputModel,
    ThroughputModel,
)
from repro.sim import ElasticExecutor, FailureSchedule, FailureWindow, Simulator
from repro.sim.interface import PolicyContext

from conftest import synthetic_planning_job

TRUE_MODEL = ThroughputModel()

THR = {1: 1.0, 2: 1.8, 4: 3.0}


def tokened_job(
    job_id,
    remaining,
    deadline,
    grid,
    capacity,
    thr=THR,
    *,
    token=1,
    best_effort=False,
):
    """A synthetic planning view carrying a cacheable table token.

    The conftest helper builds hand-tabled views (token ``-1``), which the
    fingerprint paths deliberately refuse to cache; these tests need views
    that *do* fingerprint, so the token is stamped on a copy.
    """
    info = synthetic_planning_job(
        job_id, remaining, deadline, grid, capacity, thr, best_effort=best_effort
    )
    return replace(info, tables_token=token)


def _plans_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ---------------------------------------------------------- bound policies
def _bound_policy(**kwargs) -> ElasticFlowPolicy:
    policy = ElasticFlowPolicy(**kwargs)
    policy.bind(
        PolicyContext(
            cluster=ClusterSpec(n_nodes=2, gpus_per_node=8),
            throughput=TRUE_MODEL,
            slot_seconds=600.0,
        )
    )
    return policy


def _runtime_jobs(n=3) -> list[Job]:
    one = TRUE_MODEL.curve("resnet50", 128).throughput(1)
    jobs = []
    for i in range(n):
        spec = JobSpec(
            job_id=f"j{i}",
            model_name="resnet50",
            global_batch_size=128,
            max_iterations=max(1, int(one * 1800.0 * (i + 1))),
            submit_time=0.0,
            deadline=3600.0 * (i + 1),
        )
        jobs.append(Job(spec=spec))
    return jobs


class TestRepeatedRounds:
    """Identical repeat rounds replay from the admission fill memo (the
    round-fingerprint layer that used to sit above it structurally never
    hit across events and was removed — see ``docs/performance.md``)."""

    def test_identical_round_is_stable(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        first = policy.allocate(jobs, 0.0)
        second = policy.allocate(jobs, 0.0)
        assert second == first
        controller = next(iter(policy._controllers.values()))
        assert controller.fill_cache_hits >= 1
        # Decision dicts are fresh objects: mutating one is harmless.
        second["j0"] = second.get("j0", 0) + 99
        assert policy.allocate(jobs, 0.0) == first

    def test_disabled_cache_matches(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        cached = policy.allocate(jobs, 0.0)
        with planning_cache_disabled():
            uncached = policy.allocate(jobs, 0.0)
        assert uncached == cached

    def test_sequential_solver_matches(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        batched = policy.allocate(jobs, 0.0)
        with batched_solver_disabled():
            sequential = _bound_policy().allocate(jobs, 0.0)
        assert sequential == batched

    def test_hysteresis_reruns_stably(self):
        policy = _bound_policy(stability_threshold=0.3)
        jobs = _runtime_jobs()
        first = policy.allocate(jobs, 0.0)
        for job in jobs:
            job.n_gpus = first.get(job.job_id, 0)
        second = policy.allocate(jobs, 0.0)
        # Current placements equal the targets, so hysteresis is a no-op
        # and the repeat round must match the solved round exactly.
        assert second == first


# ------------------------------------------------------------- delta fill
class TestDeltaFill:
    """The event-delta path must be byte-identical to the cold fill."""

    def setup_method(self):
        self.grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        self.a = tokened_job("a", 2.0, 2.0, self.grid, 8, token=1)
        self.b = tokened_job("b", 6.0, 4.0, self.grid, 8, token=2)
        self.c = tokened_job("c", 8.0, 6.0, self.grid, 8, token=3)

    def _cold(self, infos):
        return AdmissionController(8)._fill(
            infos, self.grid, stop_on_failure=False
        )

    def _assert_matches_cold(self, result, infos):
        cold = self._cold(infos)
        assert _plans_equal(result.plans, cold.plans)
        assert result.degraded == cold.degraded
        assert result.admitted == cold.admitted
        assert result.infeasible_job == cold.infeasible_job
        assert np.array_equal(
            result.ledger.available(), cold.ledger.available()
        )

    def test_departure_reuses_the_unaffected_prefix(self):
        ctrl = AdmissionController(8)
        first = ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                                 stop_on_failure=False)
        assert ctrl.delta_hits == 0
        second = ctrl.plan_shares([self.a, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        # `a` precedes the departure: watermark-reused by reference.  `c`
        # sits behind the freed capacity, but its retained fill had top-size
        # headroom, so the slack tier reuses it too — nothing refills.
        assert second.plans["a"] is first.plans["a"]
        assert second.plans["c"] is first.plans["c"]
        assert ctrl.delta_reuses == 2 and ctrl.delta_refills == 0
        assert ctrl.delta_slack_reuses == 1
        self._assert_matches_cold(second, [self.a, self.c])

    def test_arrival_refills_only_the_suffix(self):
        ctrl = AdmissionController(8)
        first = ctrl.plan_shares([self.a, self.c], self.grid,
                                 stop_on_failure=False)
        second = ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        assert second.plans["a"] is first.plans["a"]
        # Only the arrival itself refills; `c` had slack headroom and is
        # reused by reference despite sitting behind the new plan.
        assert second.plans["c"] is first.plans["c"]
        assert ctrl.delta_reuses == 2 and ctrl.delta_refills == 1
        self._assert_matches_cold(second, [self.a, self.b, self.c])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: replace(
                b, remaining_iterations=b.remaining_iterations - 1.0
            ),
            lambda b: replace(b, tables_token=99),
        ],
        ids=["remaining_change", "curve_correction"],
    )
    def test_view_change_refills_the_changed_job(self, mutate):
        ctrl = AdmissionController(8)
        first = ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                                 stop_on_failure=False)
        b2 = mutate(self.b)
        second = ctrl.plan_shares([self.a, b2, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        assert second.plans["a"] is first.plans["a"]
        self._assert_matches_cold(second, [self.a, b2, self.c])

    def test_deadline_change_is_departure_plus_arrival(self):
        ctrl = AdmissionController(8)
        ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                         stop_on_failure=False)
        b2 = tokened_job("b", 6.0, 5.0, self.grid, 8, token=2)
        second = ctrl.plan_shares([self.a, b2, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        self._assert_matches_cold(second, [self.a, b2, self.c])

    def test_best_effort_jobs_stay_zero(self):
        ctrl = AdmissionController(8)
        be = tokened_job("be", 4.0, float("inf"), self.grid, 8,
                         token=4, best_effort=True)
        ctrl.plan_shares([self.a, self.b, be], self.grid,
                         stop_on_failure=False)
        second = ctrl.plan_shares([self.a, be], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        assert not second.plans["be"].any() and not be.degraded
        self._assert_matches_cold(second, [self.a, be])

    def test_degraded_flag_survives_reuse(self):
        ctrl = AdmissionController(8)
        hopeless = tokened_job("hopeless", 100.0, 1.0, self.grid, 8, token=5)
        first = ctrl.plan_shares([hopeless, self.c], self.grid,
                                 stop_on_failure=False)
        assert first.degraded == {"hopeless"}
        c2 = replace(self.c, remaining_iterations=7.0)
        second = ctrl.plan_shares([hopeless, c2], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1 and ctrl.delta_reuses == 1
        assert hopeless.degraded and second.degraded == {"hopeless"}
        assert not second.admitted and second.infeasible_job == "hopeless"
        self._assert_matches_cold(second, [hopeless, c2])

    def test_grid_change_falls_back_to_full_fill(self):
        ctrl = AdmissionController(8)
        ctrl.plan_shares([self.a, self.b], self.grid, stop_on_failure=False)
        shifted = SlotGrid(origin=1.0, slot_seconds=1.0, horizon=6)
        a2 = tokened_job("a", 2.0, 3.0, shifted, 8, token=1)
        b2 = tokened_job("b", 6.0, 5.0, shifted, 8, token=2)
        result = ctrl.plan_shares([a2, b2], shifted, stop_on_failure=False)
        assert ctrl.delta_hits == 0  # retained fill was for another grid
        cold = AdmissionController(8)._fill([a2, b2], shifted,
                                            stop_on_failure=False)
        assert _plans_equal(result.plans, cold.plans)

    def test_exact_repeat_prefers_the_fill_memo(self):
        ctrl = AdmissionController(8)
        infos = [self.a, self.b, self.c]
        first = ctrl.plan_shares(infos, self.grid, stop_on_failure=False)
        second = ctrl.plan_shares(infos, self.grid, stop_on_failure=False)
        assert ctrl.fill_cache_hits == 1 and ctrl.delta_hits == 0
        assert _plans_equal(first.plans, second.plans)
        assert second.plans["a"] is first.plans["a"]  # shared, not copied


# ------------------------------------------------------------- slack reuse
class TestSlackReuse:
    """The slack tier: a retained fill whose usable window kept top-size
    headroom is availability-independent, so the delta path may reuse it by
    reference even when capacity ahead of it was perturbed."""

    def setup_method(self):
        self.grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)

    def _jobs(self, capacity):
        return (
            tokened_job("a", 2.0, 2.0, self.grid, capacity, token=1),
            tokened_job("b", 6.0, 4.0, self.grid, capacity, token=2),
            tokened_job("c", 8.0, 6.0, self.grid, capacity, token=3),
        )

    def test_saturated_window_refills_instead(self):
        # At capacity 5 the retained fill of `c` has free headroom of only
        # 5 - 3 = 2 < top size 4, so the slack tier must not fire and the
        # departure-perturbed suffix refills normally.
        a, b, c = self._jobs(5)
        ctrl = AdmissionController(5)
        ctrl.plan_shares([a, b, c], self.grid, stop_on_failure=False)
        second = ctrl.plan_shares([a, c], self.grid, stop_on_failure=False)
        assert ctrl.delta_slack_reuses == 0
        assert ctrl.delta_reuses == 1 and ctrl.delta_refills == 1
        cold = AdmissionController(5)._fill([a, c], self.grid,
                                            stop_on_failure=False)
        assert _plans_equal(second.plans, cold.plans)

    def test_slack_reuse_survives_the_sequential_solver_check(self):
        # The batched and sequential delta paths must agree bit for bit on
        # the same perturbation sequence (slack reuse is batched-only).
        a, b, c = self._jobs(8)
        batched = AdmissionController(8)
        batched.plan_shares([a, b, c], self.grid, stop_on_failure=False)
        fast = batched.plan_shares([a, c], self.grid, stop_on_failure=False)
        assert batched.delta_slack_reuses == 1
        with batched_solver_disabled():
            sequential = AdmissionController(8)
            sequential.plan_shares([a, b, c], self.grid,
                                   stop_on_failure=False)
            slow = sequential.plan_shares([a, c], self.grid,
                                          stop_on_failure=False)
        assert _plans_equal(fast.plans, slow.plans)
        assert fast.degraded == slow.degraded
        assert np.array_equal(fast.ledger.used, slow.ledger.used)


# --------------------------------------------------------- warm-hint bound
class TestWarmHintPruning:
    def test_prune_drops_only_stale_jobs(self):
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        a = tokened_job("a", 2.0, 2.0, grid, 8, token=1)
        b = tokened_job("b", 6.0, 4.0, grid, 8, token=2)
        ctrl = AdmissionController(8)
        ctrl.plan_shares([a, b], grid, stop_on_failure=False)
        assert {key[0] for key in ctrl.warm_hints} == {"a", "b"}
        dropped = ctrl.prune_warm_hints({"a"})
        assert dropped == 1
        assert {key[0] for key in ctrl.warm_hints} == {"a"}
        # Pruning is decision-neutral: hints are verified before use, so a
        # re-solve after pruning reproduces the cold fill exactly.
        second = ctrl.plan_shares([a, b], grid, stop_on_failure=False)
        cold = AdmissionController(8)._fill([a, b], grid,
                                            stop_on_failure=False)
        assert _plans_equal(second.plans, cold.plans)


# ------------------------------------------------------------- warm hints
class TestWarmHints:
    def setup_method(self):
        reset_cache()
        self.grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        # remaining 5.0 over 4 usable slots: cap 1 yields 4.0 (infeasible),
        # cap 2 yields 7.2 -> the scan settles on cap 2.
        self.info = tokened_job("j", 5.0, 4.0, self.grid, 8)
        self.available = np.full(6, 8, dtype=np.int64)
        self.baseline = progressive_filling(self.info, self.available)

    def test_round_trip_records_then_verifies_the_cap(self):
        hints: dict[tuple[str, int], int] = {}
        first = progressive_filling(
            self.info, self.available, warm_hints=hints
        )
        assert np.array_equal(first, self.baseline)
        assert hints[("j", 0)] == 2
        assert cache_stats()["warm_misses"] == 1
        second = progressive_filling(
            self.info, self.available, warm_hints=hints
        )
        assert np.array_equal(second, self.baseline)
        assert cache_stats()["warm_hits"] == 1

    @pytest.mark.parametrize(
        "hint", [1, 3, 4, 16], ids=["infeasible", "unknown", "oversized", "beyond"]
    )
    def test_bad_hints_fall_back_and_self_correct(self, hint):
        """Infeasible, unknown, and non-minimal hints must all lose the
        verification and route to the full scan, bit-identically."""
        hints = {("j", 0): hint}
        plan = progressive_filling(self.info, self.available, warm_hints=hints)
        assert np.array_equal(plan, self.baseline)
        assert hints[("j", 0)] == 2
        assert cache_stats()["warm_hits"] == 0

    def test_infeasible_fill_drops_its_hint(self):
        hopeless = tokened_job("h", 100.0, 2.0, self.grid, 8)
        hints = {("h", 0): 2}
        assert progressive_filling(
            hopeless, self.available, warm_hints=hints
        ) is None
        assert ("h", 0) not in hints

    def test_reference_path_ignores_hints(self):
        hints = {("j", 0): 4}  # deliberately wrong; must stay untouched
        with planning_cache_disabled():
            plan = progressive_filling(
                self.info, self.available, warm_hints=hints
            )
        assert np.array_equal(plan, self.baseline)
        assert hints == {("j", 0): 4}


# ------------------------------------------------- bounded controller cache
class TestControllerCacheBound:
    def test_lru_eviction_and_identity(self):
        policy = ElasticFlowPolicy()
        limit = ElasticFlowPolicy.CONTROLLER_CACHE_LIMIT
        keeper = policy._controller(1)
        for capacity in range(2, limit + 2):
            policy._controller(capacity)
        assert len(policy._controllers) == limit
        assert 1 not in policy._controllers  # oldest evicted
        # Touching an entry refreshes it past newer insertions.
        survivor = policy._controller(2)
        policy._controller(limit + 2)
        assert 2 in policy._controllers and 3 not in policy._controllers
        assert policy._controller(2) is survivor
        assert policy._controller(1) is not keeper  # rebuilt after eviction


# -------------------------------------------------------- ledger bulk load
class TestLedgerLoadPlans:
    def test_bulk_load_adopts_and_freezes(self):
        ledger = Ledger(8, 5)
        p1 = np.array([2, 2, 0, 0, 0], dtype=np.int64)
        p2 = np.array([1, 0, 1, 0, 0], dtype=np.int64)
        used = p1 + p2
        ledger.load_plans({"a": p1, "b": p2}, used)
        assert ledger.version == 1
        assert np.array_equal(ledger.available(), 8 - used)
        assert ledger.plan_view("a") is p1 and not p1.flags.writeable
        # The ledger stays a live ledger: incremental mutation still works.
        ledger.remove_plan("a")
        assert np.array_equal(ledger.available(), 8 - p2)
        assert ledger.version == 2


# ---------------------------------------------------------- planning views
class TestPlanningViewSharing:
    def test_same_origin_grids_share_one_view(self):
        """The admission grid may be longer than the allocation grid (the
        candidate's deadline stretches it); both passes must still share
        one memoized view per job."""
        policy = _bound_policy()
        job = _runtime_jobs(1)[0]
        short = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=12)
        long = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=24)
        assert policy._info(job, short) is policy._info(job, long)

    def test_different_origin_builds_a_fresh_view(self):
        policy = _bound_policy()
        job = _runtime_jobs(1)[0]
        grid_a = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=12)
        grid_b = SlotGrid(origin=600.0, slot_seconds=600.0, horizon=12)
        assert policy._info(job, grid_a) is not policy._info(job, grid_b)


# ------------------------------------------------------------- phase probe
class TestPhaseProbe:
    def test_dormant_probe_is_a_noop(self):
        assert not probe.active()
        assert probe.tick() == 0.0
        assert probe.lap("alg1", 0.0) == 0.0
        assert probe.end_event() == {}

    def test_recording_attributes_phases(self):
        recorder = probe.PhaseRecorder()
        with probe.recording(recorder):
            assert probe.active()
            probe.begin_event()
            mark = probe.tick()
            assert mark > 0.0
            mark = probe.lap("views", mark)
            probe.lap("alg1", mark)
            event = probe.end_event()
        assert set(event) == {"views", "alg1"}
        assert all(v >= 0.0 for v in event.values())
        assert recorder.events == [event]
        assert not probe.active()

    def test_allocate_splits_into_phases(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        recorder = probe.PhaseRecorder()
        with probe.recording(recorder):
            probe.begin_event()
            policy.allocate(jobs, 0.0)
            solved = probe.end_event()
            probe.begin_event()
            policy.allocate(jobs, 0.0)
            replayed = probe.end_event()
        assert {"views", "alg1", "alg2"} <= set(solved)
        # The repeat round replays from the fill memo, which lives inside
        # the alg1 lap — every phase still shows up.
        assert {"views", "alg1", "alg2"} <= set(replayed)


# --------------------------------------------------- end-to-end equivalence
def _digest(result):
    return sorted(
        (
            o.job_id,
            o.status.value,
            o.admitted,
            o.completion_time,
            o.scale_events,
        )
        for o in result.outcomes
    )


def _disrupted_workload():
    """A trace that exercises every invalidation source at once: a node
    failure and repair mid-trace, online-profiling curve corrections from a
    biased prior, best-effort arrivals, and deadline-tight SLO jobs."""
    rng = np.random.default_rng(7)
    specs = []
    for i in range(14):
        model, batch = ("resnet50", 128) if i % 2 else ("vgg16", 128)
        one = TRUE_MODEL.curve(model, batch).throughput(1)
        seconds = float(rng.uniform(600.0, 2400.0))
        submit = float(rng.uniform(0.0, 3000.0))
        slack = float(rng.uniform(0.8, 1.6))
        specs.append(
            JobSpec(
                job_id=f"slo{i}",
                model_name=model,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + slack * seconds,
            )
        )
    for i in range(2):
        one = TRUE_MODEL.curve("resnet50", 128).throughput(1)
        specs.append(
            JobSpec(
                job_id=f"be{i}",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=max(1, int(one * 900.0)),
                submit_time=float(rng.uniform(0.0, 1500.0)),
                deadline=None,
            )
        )
    schedule = FailureSchedule(
        windows=(FailureWindow(start=900.0, end=2700.0, node_index=0),)
    )
    return specs, schedule


def _run_disrupted(specs, schedule):
    online = OnlineThroughputModel(ScaledThroughputModel(TRUE_MODEL, 1.3))

    def hook(job, n_gpus, rate):
        online.observe(
            job.spec.model_name, job.spec.global_batch_size, n_gpus, rate
        )

    policy = ElasticFlowPolicy(
        safety_margin=0.03,
        deadline_padding_s=60.0,
        stability_threshold=0.3,
        planning_throughput=online,
    )
    result = Simulator(
        ClusterSpec(n_nodes=2, gpus_per_node=8),
        policy,
        specs,
        throughput=TRUE_MODEL,
        executor=ElasticExecutor.disabled(),
        failures=schedule,
        observation_hook=hook,
        slot_seconds=600.0,
        record_timeline=False,
    ).run()
    return result, policy


def test_disrupted_trace_equivalence_and_reuse():
    """Failure + repair + online curve corrections mid-trace: the warm and
    delta paths must stay byte-identical to the cache-disabled reference —
    and must demonstrably have been exercised."""
    specs, schedule = _disrupted_workload()
    reset_cache()
    cached, policy = _run_disrupted(specs, schedule)
    stats = cache_stats()
    with planning_cache_disabled():
        uncached, _ = _run_disrupted(specs, schedule)
    assert _digest(cached) == _digest(uncached)

    # The incremental layers actually carried load on the cached run.
    controllers = list(policy._controllers.values())
    assert len(controllers) >= 2  # healthy and degraded capacities
    assert sum(c.fill_cache_hits for c in controllers) > 0
    assert sum(c.delta_hits for c in controllers) > 0
    assert sum(c.delta_reuses for c in controllers) > 0
    assert stats["warm_hits"] > 0
