"""Tests for the incremental replanning layer.

Covers the three reuse tiers added on top of the exact-match fill memo —
the round fingerprint in ``ElasticFlowPolicy.allocate``, the retained-fill
event-delta path in ``AdmissionController``, and warm-started progressive
filling — plus the phase probe and the bounded controller cache.  The
load-bearing property throughout is *bit-identical decisions*: every fast
path must reproduce exactly what the cold solve (and the cache-disabled
reference) would have produced.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec
from repro.core.admission import AdmissionController, progressive_filling
from repro.core.job import Job
from repro.core.plan import Ledger
from repro.core.slots import SlotGrid
from repro.perf import probe
from repro.perf.tables import (
    cache_stats,
    planning_cache_disabled,
    reset_cache,
)
from repro.profiles import (
    OnlineThroughputModel,
    ScaledThroughputModel,
    ThroughputModel,
)
from repro.sim import ElasticExecutor, FailureSchedule, FailureWindow, Simulator
from repro.sim.interface import PolicyContext

from conftest import synthetic_planning_job

TRUE_MODEL = ThroughputModel()

THR = {1: 1.0, 2: 1.8, 4: 3.0}


def tokened_job(
    job_id,
    remaining,
    deadline,
    grid,
    capacity,
    thr=THR,
    *,
    token=1,
    best_effort=False,
):
    """A synthetic planning view carrying a cacheable table token.

    The conftest helper builds hand-tabled views (token ``-1``), which the
    fingerprint paths deliberately refuse to cache; these tests need views
    that *do* fingerprint, so the token is stamped on a copy.
    """
    info = synthetic_planning_job(
        job_id, remaining, deadline, grid, capacity, thr, best_effort=best_effort
    )
    return replace(info, tables_token=token)


def _plans_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ------------------------------------------------------- round fingerprint
class TestRoundFingerprint:
    """Every planning input must perturb the round key (or void it)."""

    def setup_method(self):
        self.policy = ElasticFlowPolicy()
        self.grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        self.infos = [
            tokened_job("a", 2.0, 2.0, self.grid, 8, token=1),
            tokened_job("b", 6.0, 4.0, self.grid, 8, token=2),
        ]
        self.baseline = self.policy._round_key(self.infos, self.grid, 8)

    def _key_with(self, infos=None, grid=None, capacity=8):
        return self.policy._round_key(
            infos if infos is not None else self.infos,
            grid if grid is not None else self.grid,
            capacity,
        )

    def test_baseline_is_cacheable_and_stable(self):
        assert self.baseline is not None
        assert self._key_with() == self.baseline

    def test_order_independent(self):
        assert self._key_with(infos=list(reversed(self.infos))) == self.baseline

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda i: replace(i, job_id="renamed"),
            lambda i: replace(i, remaining_iterations=i.remaining_iterations + 1),
            lambda i: replace(i, deadline=i.deadline + 0.5),
            lambda i: replace(i, best_effort=True),
            lambda i: replace(i, tables_token=i.tables_token + 1),
        ],
        ids=["job_id", "remaining", "deadline", "best_effort", "token"],
    )
    def test_each_job_field_perturbs_the_key(self, mutate):
        varied = [mutate(self.infos[0]), self.infos[1]]
        assert self._key_with(infos=varied) != self.baseline

    @pytest.mark.parametrize(
        "grid",
        [
            SlotGrid(origin=1.0, slot_seconds=1.0, horizon=6),
            SlotGrid(origin=0.0, slot_seconds=2.0, horizon=6),
            SlotGrid(origin=0.0, slot_seconds=1.0, horizon=7),
        ],
        ids=["origin", "slot_seconds", "horizon"],
    )
    def test_each_grid_field_perturbs_the_key(self, grid):
        assert self._key_with(grid=grid) != self.baseline

    def test_capacity_perturbs_the_key(self):
        assert self._key_with(capacity=7) != self.baseline

    def test_hand_built_tables_are_uncacheable(self):
        varied = [replace(self.infos[0], tables_token=-1), self.infos[1]]
        assert self._key_with(infos=varied) is None


# ------------------------------------------------------- round-cache replay
def _bound_policy(**kwargs) -> ElasticFlowPolicy:
    policy = ElasticFlowPolicy(**kwargs)
    policy.bind(
        PolicyContext(
            cluster=ClusterSpec(n_nodes=2, gpus_per_node=8),
            throughput=TRUE_MODEL,
            slot_seconds=600.0,
        )
    )
    return policy


def _runtime_jobs(n=3) -> list[Job]:
    one = TRUE_MODEL.curve("resnet50", 128).throughput(1)
    jobs = []
    for i in range(n):
        spec = JobSpec(
            job_id=f"j{i}",
            model_name="resnet50",
            global_batch_size=128,
            max_iterations=max(1, int(one * 1800.0 * (i + 1))),
            submit_time=0.0,
            deadline=3600.0 * (i + 1),
        )
        jobs.append(Job(spec=spec))
    return jobs


class TestRoundCacheReplay:
    def test_identical_round_is_replayed(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        first = policy.allocate(jobs, 0.0)
        assert policy.round_misses == 1 and policy.round_hits == 0
        second = policy.allocate(jobs, 0.0)
        assert policy.round_hits == 1
        assert second == first
        # Replays hand out copies: mutating one must not poison the cache.
        second["j0"] = second.get("j0", 0) + 99
        assert policy.allocate(jobs, 0.0) == first

    def test_progress_invalidates(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        policy.allocate(jobs, 0.0)
        jobs[0].iterations_done += 10.0
        policy.allocate(jobs, 0.0)
        assert policy.round_hits == 0 and policy.round_misses == 2

    def test_time_invalidates(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        policy.allocate(jobs, 0.0)
        policy.allocate(jobs, 600.0)  # new grid origin -> new fingerprint
        assert policy.round_hits == 0 and policy.round_misses == 2

    def test_capacity_invalidates(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        policy.allocate(jobs, 0.0)
        policy.context.usable_gpus = 8  # node failure shrinks the cluster
        policy.allocate(jobs, 0.0)
        assert policy.round_hits == 0 and policy.round_misses == 2

    def test_disabled_cache_skips_fingerprinting_and_matches(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        cached = policy.allocate(jobs, 0.0)
        with planning_cache_disabled():
            uncached = policy.allocate(jobs, 0.0)
        assert uncached == cached
        assert policy.round_misses == 1  # the reference pass never counted

    def test_hysteresis_reruns_on_hit(self):
        policy = _bound_policy(stability_threshold=0.3)
        jobs = _runtime_jobs()
        first = policy.allocate(jobs, 0.0)
        for job in jobs:
            job.n_gpus = first.get(job.job_id, 0)
        second = policy.allocate(jobs, 0.0)
        assert policy.round_hits == 1
        # Current placements equal the targets, so hysteresis is a no-op
        # and the replay must match the solved round exactly.
        assert second == first


# ------------------------------------------------------------- delta fill
class TestDeltaFill:
    """The event-delta path must be byte-identical to the cold fill."""

    def setup_method(self):
        self.grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        self.a = tokened_job("a", 2.0, 2.0, self.grid, 8, token=1)
        self.b = tokened_job("b", 6.0, 4.0, self.grid, 8, token=2)
        self.c = tokened_job("c", 8.0, 6.0, self.grid, 8, token=3)

    def _cold(self, infos):
        return AdmissionController(8)._fill(
            infos, self.grid, stop_on_failure=False
        )

    def _assert_matches_cold(self, result, infos):
        cold = self._cold(infos)
        assert _plans_equal(result.plans, cold.plans)
        assert result.degraded == cold.degraded
        assert result.admitted == cold.admitted
        assert result.infeasible_job == cold.infeasible_job
        assert np.array_equal(
            result.ledger.available(), cold.ledger.available()
        )

    def test_departure_reuses_the_unaffected_prefix(self):
        ctrl = AdmissionController(8)
        first = ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                                 stop_on_failure=False)
        assert ctrl.delta_hits == 0
        second = ctrl.plan_shares([self.a, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        # `a` precedes the departure: reused by reference.  `c` sits behind
        # the freed capacity: re-filled.
        assert second.plans["a"] is first.plans["a"]
        assert ctrl.delta_reuses == 1 and ctrl.delta_refills == 1
        self._assert_matches_cold(second, [self.a, self.c])

    def test_arrival_refills_only_the_suffix(self):
        ctrl = AdmissionController(8)
        first = ctrl.plan_shares([self.a, self.c], self.grid,
                                 stop_on_failure=False)
        second = ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        assert second.plans["a"] is first.plans["a"]
        assert ctrl.delta_reuses == 1 and ctrl.delta_refills == 2
        self._assert_matches_cold(second, [self.a, self.b, self.c])

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: replace(
                b, remaining_iterations=b.remaining_iterations - 1.0
            ),
            lambda b: replace(b, tables_token=99),
        ],
        ids=["remaining_change", "curve_correction"],
    )
    def test_view_change_refills_the_changed_job(self, mutate):
        ctrl = AdmissionController(8)
        first = ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                                 stop_on_failure=False)
        b2 = mutate(self.b)
        second = ctrl.plan_shares([self.a, b2, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        assert second.plans["a"] is first.plans["a"]
        self._assert_matches_cold(second, [self.a, b2, self.c])

    def test_deadline_change_is_departure_plus_arrival(self):
        ctrl = AdmissionController(8)
        ctrl.plan_shares([self.a, self.b, self.c], self.grid,
                         stop_on_failure=False)
        b2 = tokened_job("b", 6.0, 5.0, self.grid, 8, token=2)
        second = ctrl.plan_shares([self.a, b2, self.c], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        self._assert_matches_cold(second, [self.a, b2, self.c])

    def test_best_effort_jobs_stay_zero(self):
        ctrl = AdmissionController(8)
        be = tokened_job("be", 4.0, float("inf"), self.grid, 8,
                         token=4, best_effort=True)
        ctrl.plan_shares([self.a, self.b, be], self.grid,
                         stop_on_failure=False)
        second = ctrl.plan_shares([self.a, be], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1
        assert not second.plans["be"].any() and not be.degraded
        self._assert_matches_cold(second, [self.a, be])

    def test_degraded_flag_survives_reuse(self):
        ctrl = AdmissionController(8)
        hopeless = tokened_job("hopeless", 100.0, 1.0, self.grid, 8, token=5)
        first = ctrl.plan_shares([hopeless, self.c], self.grid,
                                 stop_on_failure=False)
        assert first.degraded == {"hopeless"}
        c2 = replace(self.c, remaining_iterations=7.0)
        second = ctrl.plan_shares([hopeless, c2], self.grid,
                                  stop_on_failure=False)
        assert ctrl.delta_hits == 1 and ctrl.delta_reuses == 1
        assert hopeless.degraded and second.degraded == {"hopeless"}
        assert not second.admitted and second.infeasible_job == "hopeless"
        self._assert_matches_cold(second, [hopeless, c2])

    def test_grid_change_falls_back_to_full_fill(self):
        ctrl = AdmissionController(8)
        ctrl.plan_shares([self.a, self.b], self.grid, stop_on_failure=False)
        shifted = SlotGrid(origin=1.0, slot_seconds=1.0, horizon=6)
        a2 = tokened_job("a", 2.0, 3.0, shifted, 8, token=1)
        b2 = tokened_job("b", 6.0, 5.0, shifted, 8, token=2)
        result = ctrl.plan_shares([a2, b2], shifted, stop_on_failure=False)
        assert ctrl.delta_hits == 0  # retained fill was for another grid
        cold = AdmissionController(8)._fill([a2, b2], shifted,
                                            stop_on_failure=False)
        assert _plans_equal(result.plans, cold.plans)

    def test_exact_repeat_prefers_the_fill_memo(self):
        ctrl = AdmissionController(8)
        infos = [self.a, self.b, self.c]
        first = ctrl.plan_shares(infos, self.grid, stop_on_failure=False)
        second = ctrl.plan_shares(infos, self.grid, stop_on_failure=False)
        assert ctrl.fill_cache_hits == 1 and ctrl.delta_hits == 0
        assert _plans_equal(first.plans, second.plans)
        assert second.plans["a"] is first.plans["a"]  # shared, not copied


# ------------------------------------------------------------- warm hints
class TestWarmHints:
    def setup_method(self):
        reset_cache()
        self.grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        # remaining 5.0 over 4 usable slots: cap 1 yields 4.0 (infeasible),
        # cap 2 yields 7.2 -> the scan settles on cap 2.
        self.info = tokened_job("j", 5.0, 4.0, self.grid, 8)
        self.available = np.full(6, 8, dtype=np.int64)
        self.baseline = progressive_filling(self.info, self.available)

    def test_round_trip_records_then_verifies_the_cap(self):
        hints: dict[tuple[str, int], int] = {}
        first = progressive_filling(
            self.info, self.available, warm_hints=hints
        )
        assert np.array_equal(first, self.baseline)
        assert hints[("j", 0)] == 2
        assert cache_stats()["warm_misses"] == 1
        second = progressive_filling(
            self.info, self.available, warm_hints=hints
        )
        assert np.array_equal(second, self.baseline)
        assert cache_stats()["warm_hits"] == 1

    @pytest.mark.parametrize(
        "hint", [1, 3, 4, 16], ids=["infeasible", "unknown", "oversized", "beyond"]
    )
    def test_bad_hints_fall_back_and_self_correct(self, hint):
        """Infeasible, unknown, and non-minimal hints must all lose the
        verification and route to the full scan, bit-identically."""
        hints = {("j", 0): hint}
        plan = progressive_filling(self.info, self.available, warm_hints=hints)
        assert np.array_equal(plan, self.baseline)
        assert hints[("j", 0)] == 2
        assert cache_stats()["warm_hits"] == 0

    def test_infeasible_fill_drops_its_hint(self):
        hopeless = tokened_job("h", 100.0, 2.0, self.grid, 8)
        hints = {("h", 0): 2}
        assert progressive_filling(
            hopeless, self.available, warm_hints=hints
        ) is None
        assert ("h", 0) not in hints

    def test_reference_path_ignores_hints(self):
        hints = {("j", 0): 4}  # deliberately wrong; must stay untouched
        with planning_cache_disabled():
            plan = progressive_filling(
                self.info, self.available, warm_hints=hints
            )
        assert np.array_equal(plan, self.baseline)
        assert hints == {("j", 0): 4}


# ------------------------------------------------- bounded controller cache
class TestControllerCacheBound:
    def test_lru_eviction_and_identity(self):
        policy = ElasticFlowPolicy()
        limit = ElasticFlowPolicy.CONTROLLER_CACHE_LIMIT
        keeper = policy._controller(1)
        for capacity in range(2, limit + 2):
            policy._controller(capacity)
        assert len(policy._controllers) == limit
        assert 1 not in policy._controllers  # oldest evicted
        # Touching an entry refreshes it past newer insertions.
        survivor = policy._controller(2)
        policy._controller(limit + 2)
        assert 2 in policy._controllers and 3 not in policy._controllers
        assert policy._controller(2) is survivor
        assert policy._controller(1) is not keeper  # rebuilt after eviction


# -------------------------------------------------------- ledger bulk load
class TestLedgerLoadPlans:
    def test_bulk_load_adopts_and_freezes(self):
        ledger = Ledger(8, 5)
        p1 = np.array([2, 2, 0, 0, 0], dtype=np.int64)
        p2 = np.array([1, 0, 1, 0, 0], dtype=np.int64)
        used = p1 + p2
        ledger.load_plans({"a": p1, "b": p2}, used)
        assert ledger.version == 1
        assert np.array_equal(ledger.available(), 8 - used)
        assert ledger.plan_view("a") is p1 and not p1.flags.writeable
        # The ledger stays a live ledger: incremental mutation still works.
        ledger.remove_plan("a")
        assert np.array_equal(ledger.available(), 8 - p2)
        assert ledger.version == 2


# ---------------------------------------------------------- planning views
class TestPlanningViewSharing:
    def test_same_origin_grids_share_one_view(self):
        """The admission grid may be longer than the allocation grid (the
        candidate's deadline stretches it); both passes must still share
        one memoized view per job."""
        policy = _bound_policy()
        job = _runtime_jobs(1)[0]
        short = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=12)
        long = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=24)
        assert policy._info(job, short) is policy._info(job, long)

    def test_different_origin_builds_a_fresh_view(self):
        policy = _bound_policy()
        job = _runtime_jobs(1)[0]
        grid_a = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=12)
        grid_b = SlotGrid(origin=600.0, slot_seconds=600.0, horizon=12)
        assert policy._info(job, grid_a) is not policy._info(job, grid_b)


# ------------------------------------------------------------- phase probe
class TestPhaseProbe:
    def test_dormant_probe_is_a_noop(self):
        assert not probe.active()
        assert probe.tick() == 0.0
        assert probe.lap("alg1", 0.0) == 0.0
        assert probe.end_event() == {}

    def test_recording_attributes_phases(self):
        recorder = probe.PhaseRecorder()
        with probe.recording(recorder):
            assert probe.active()
            probe.begin_event()
            mark = probe.tick()
            assert mark > 0.0
            mark = probe.lap("views", mark)
            probe.lap("alg1", mark)
            event = probe.end_event()
        assert set(event) == {"views", "alg1"}
        assert all(v >= 0.0 for v in event.values())
        assert recorder.events == [event]
        assert not probe.active()

    def test_allocate_splits_into_phases(self):
        policy = _bound_policy()
        jobs = _runtime_jobs()
        recorder = probe.PhaseRecorder()
        with probe.recording(recorder):
            probe.begin_event()
            policy.allocate(jobs, 0.0)
            solved = probe.end_event()
            probe.begin_event()
            policy.allocate(jobs, 0.0)
            replayed = probe.end_event()
        assert {"views", "alg1", "alg2"} <= set(solved)
        # A round-cache hit skips Algorithm 1 entirely.
        assert policy.round_hits == 1
        assert "alg1" not in replayed and "alg2" in replayed


# --------------------------------------------------- end-to-end equivalence
def _digest(result):
    return sorted(
        (
            o.job_id,
            o.status.value,
            o.admitted,
            o.completion_time,
            o.scale_events,
        )
        for o in result.outcomes
    )


def _disrupted_workload():
    """A trace that exercises every invalidation source at once: a node
    failure and repair mid-trace, online-profiling curve corrections from a
    biased prior, best-effort arrivals, and deadline-tight SLO jobs."""
    rng = np.random.default_rng(7)
    specs = []
    for i in range(14):
        model, batch = ("resnet50", 128) if i % 2 else ("vgg16", 128)
        one = TRUE_MODEL.curve(model, batch).throughput(1)
        seconds = float(rng.uniform(600.0, 2400.0))
        submit = float(rng.uniform(0.0, 3000.0))
        slack = float(rng.uniform(0.8, 1.6))
        specs.append(
            JobSpec(
                job_id=f"slo{i}",
                model_name=model,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + slack * seconds,
            )
        )
    for i in range(2):
        one = TRUE_MODEL.curve("resnet50", 128).throughput(1)
        specs.append(
            JobSpec(
                job_id=f"be{i}",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=max(1, int(one * 900.0)),
                submit_time=float(rng.uniform(0.0, 1500.0)),
                deadline=None,
            )
        )
    schedule = FailureSchedule(
        windows=(FailureWindow(start=900.0, end=2700.0, node_index=0),)
    )
    return specs, schedule


def _run_disrupted(specs, schedule):
    online = OnlineThroughputModel(ScaledThroughputModel(TRUE_MODEL, 1.3))

    def hook(job, n_gpus, rate):
        online.observe(
            job.spec.model_name, job.spec.global_batch_size, n_gpus, rate
        )

    policy = ElasticFlowPolicy(
        safety_margin=0.03,
        deadline_padding_s=60.0,
        stability_threshold=0.3,
        planning_throughput=online,
    )
    result = Simulator(
        ClusterSpec(n_nodes=2, gpus_per_node=8),
        policy,
        specs,
        throughput=TRUE_MODEL,
        executor=ElasticExecutor.disabled(),
        failures=schedule,
        observation_hook=hook,
        slot_seconds=600.0,
        record_timeline=False,
    ).run()
    return result, policy


def test_disrupted_trace_equivalence_and_reuse():
    """Failure + repair + online curve corrections mid-trace: the warm and
    delta paths must stay byte-identical to the cache-disabled reference —
    and must demonstrably have been exercised."""
    specs, schedule = _disrupted_workload()
    reset_cache()
    cached, policy = _run_disrupted(specs, schedule)
    stats = cache_stats()
    with planning_cache_disabled():
        uncached, _ = _run_disrupted(specs, schedule)
    assert _digest(cached) == _digest(uncached)

    # The incremental layers actually carried load on the cached run.
    controllers = list(policy._controllers.values())
    assert len(controllers) >= 2  # healthy and degraded capacities
    assert sum(c.fill_cache_hits for c in controllers) > 0
    assert sum(c.delta_hits for c in controllers) > 0
    assert sum(c.delta_reuses for c in controllers) > 0
    assert stats["warm_hits"] > 0
    assert policy.round_misses > 0  # fingerprinting engaged throughout
