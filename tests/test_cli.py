"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "fifo"])

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestListModels:
    def test_prints_table(self, capsys):
        assert main(["list-models"]) == 0
        output = capsys.readouterr().out
        assert "resnet50" in output and "deepspeech2" in output


class TestScalingCurve:
    def test_prints_series_and_peak(self, capsys):
        assert main(["scaling-curve", "resnet50", "256", "--max-gpus", "16"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output
        assert "peak-throughput size" in output

    def test_unknown_model_is_reported(self, capsys):
        assert main(["scaling-curve", "alexnet", "128"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_json_output(self, capsys):
        code = main(
            ["simulate", "--policy", "edf", "--gpus", "16", "--jobs", "6",
             "--no-overheads", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["jobs"] == 6.0
        assert 0.0 <= payload["dsr"] <= 1.0

    def test_table_output(self, capsys):
        code = main(
            ["simulate", "--policy", "elasticflow", "--gpus", "16", "--jobs", "5",
             "--no-overheads"]
        )
        assert code == 0
        assert "dsr" in capsys.readouterr().out


class TestCompare:
    def test_compares_policies(self, capsys):
        code = main(
            ["compare", "--policies", "elasticflow,edf", "--gpus", "16",
             "--jobs", "6", "--no-overheads"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "elasticflow" in output and "edf" in output


class TestExperiment:
    @pytest.mark.parametrize("artifact", ["table1", "fig2a", "fig2b", "fig3", "fig4"])
    def test_light_artifacts(self, artifact, capsys):
        assert main(["experiment", artifact]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig12a(self, capsys):
        assert main(["experiment", "fig12a"]) == 0
        assert "Overhead" in capsys.readouterr().out

    def test_fig12b(self, capsys):
        assert main(["experiment", "fig12b"]) == 0
        assert "migrate-8" in capsys.readouterr().out


class TestMakeTrace:
    def test_json_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["make-trace", "--out", str(out), "--cluster-gpus", "32",
             "--jobs", "15"]
        )
        assert code == 0
        from repro.traces import trace_from_json

        trace = trace_from_json(out.read_text())
        assert len(trace) == 15

    def test_csv_trace(self, tmp_path):
        out = tmp_path / "trace.csv"
        assert main(
            ["make-trace", "--out", str(out), "--cluster-gpus", "32",
             "--jobs", "10"]
        ) == 0
        from repro.traces import read_trace_csv

        assert len(read_trace_csv(out)) == 10
