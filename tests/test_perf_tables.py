"""Tests for the memoized planning tables and their invalidation hooks."""

import numpy as np
import pytest

from repro.perf import tables as tables_mod
from repro.perf.tables import (
    cache_enabled,
    cache_stats,
    compute_planning_tables,
    curve_revision,
    invalidate_planning_tables,
    planning_cache_disabled,
    planning_tables_for,
    reset_cache,
)
from repro.profiles import ThroughputModel
from repro.profiles.online import OnlineThroughputModel


@pytest.fixture(autouse=True)
def _fresh_cache():
    reset_cache()
    yield
    reset_cache()


def _curve(model="resnet50", batch=128):
    return ThroughputModel().curve(model, batch)


class TestComputeTables:
    def test_matches_inline_computation(self):
        """The tables must equal the historical per-call computation."""
        curve = _curve()
        capacity = 16
        built = compute_planning_tables(curve, capacity)
        sizes = list(curve.allowed_sizes(capacity))
        assert list(built.sizes) == sizes
        best_size, best_thr = 0, 0.0
        for x in range(1, capacity + 1):
            if x in sizes:
                thr = curve.throughput(x)
                if thr > best_thr:
                    best_size, best_thr = x, thr
            assert built.throughput_table[x] == best_thr
            assert built.size_table[x] == best_size
        assert built.throughput_table[0] == 0.0
        assert built.size_table[0] == 0

    def test_tables_are_read_only(self):
        built = compute_planning_tables(_curve(), 8)
        with pytest.raises(ValueError):
            built.throughput_table[1] = 99.0
        with pytest.raises(ValueError):
            built.size_table[1] = 99

    def test_tokens_are_unique_per_build(self):
        curve = _curve()
        a = compute_planning_tables(curve, 8)
        b = compute_planning_tables(curve, 8)
        assert a.token != b.token


class TestMemoisation:
    def test_second_lookup_hits(self):
        curve = _curve()
        first = planning_tables_for(curve, 8)
        second = planning_tables_for(curve, 8)
        assert first is second
        stats = cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_distinct_capacity_is_a_distinct_entry(self):
        curve = _curve()
        a = planning_tables_for(curve, 8)
        b = planning_tables_for(curve, 16)
        assert a is not b
        assert len(a.throughput_table) == 9
        assert len(b.throughput_table) == 17

    def test_distinct_curves_do_not_collide(self):
        a = planning_tables_for(_curve("resnet50"), 8)
        b = planning_tables_for(_curve("vgg16"), 8)
        assert a.token != b.token

    def test_escape_hatch_bypasses_and_does_not_populate(self):
        curve = _curve()
        with planning_cache_disabled():
            assert not cache_enabled()
            a = planning_tables_for(curve, 8)
            b = planning_tables_for(curve, 8)
        assert a is not b  # fresh build each time
        assert cache_stats()["bypasses"] == 2
        assert cache_enabled()
        # The bypassed builds must not have seeded the store.
        planning_tables_for(curve, 8)
        assert cache_stats()["misses"] == 1


class TestInvalidation:
    def test_invalidate_forces_rebuild_with_new_token(self):
        curve = _curve()
        before = planning_tables_for(curve, 8)
        invalidate_planning_tables(curve)
        after = planning_tables_for(curve, 8)
        assert after is not before
        assert after.token != before.token
        assert cache_stats()["invalidations"] == 1

    def test_curve_revision_bumps_on_every_invalidation(self):
        curve = _curve()
        assert curve_revision(curve) == 0
        invalidate_planning_tables(curve)
        assert curve_revision(curve) == 1
        invalidate_planning_tables(curve)  # even with nothing cached
        assert curve_revision(curve) == 2

    def test_reset_cache_keeps_revisions_monotone(self):
        """reset_cache forgets tables but must never rewind revisions —
        downstream memo keys rely on the counter being monotone."""
        curve = _curve()
        invalidate_planning_tables(curve)
        revision = curve_revision(curve)
        reset_cache()
        assert curve_revision(curve) == revision

    def test_online_observation_invalidates_dependent_tables(self):
        """An OnlineThroughputModel correction must flow through to the
        planning tables: same curve object, fresh table contents."""
        online = OnlineThroughputModel(ThroughputModel(), alpha=1.0)
        curve = online.curve("resnet50", 128)
        before = planning_tables_for(curve, 8)
        revision_before = curve_revision(curve)
        measured = curve.throughput(1) * 0.5
        online.observe("resnet50", 128, n_gpus=1, observed_rate=measured)
        assert curve_revision(curve) > revision_before
        after = planning_tables_for(curve, 8)
        assert after.token != before.token
        assert not np.array_equal(after.throughput_table, before.throughput_table)

    def test_observation_on_unseen_curve_is_harmless(self):
        online = OnlineThroughputModel(ThroughputModel(), alpha=0.5)
        online.observe("vgg16", 64, n_gpus=2, observed_rate=1.0)
        assert cache_stats()["invalidations"] == 0


class TestModuleHygiene:
    def test_public_surface(self):
        for name in tables_mod.__all__:
            assert hasattr(tables_mod, name)
