"""Tests for node-failure injection (Section 4.4 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, PlacementManager
from repro.core import ElasticFlowPolicy, JobSpec
from repro.errors import ConfigurationError, PlacementError, SimulationError
from repro.profiles import ThroughputModel
from repro.sim import (
    ElasticExecutor,
    FailureSchedule,
    FailureWindow,
    NodeFailureModel,
    Simulator,
)

MODEL = ThroughputModel()


def spec(i, submit=0.0, deadline_rel=7200.0, seconds=1800.0):
    one = MODEL.curve("resnet50", 128).throughput(1)
    return JobSpec(
        job_id=f"j{i}",
        model_name="resnet50",
        global_batch_size=128,
        max_iterations=max(1, int(one * seconds)),
        submit_time=submit,
        deadline=submit + deadline_rel,
    )


class TestFailureWindow:
    def test_valid_window(self):
        window = FailureWindow(start=10.0, end=20.0, node_index=1)
        assert window.end > window.start

    def test_invalid_windows_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureWindow(start=10.0, end=10.0, node_index=0)
        with pytest.raises(ConfigurationError):
            FailureWindow(start=-1.0, end=5.0, node_index=0)
        with pytest.raises(ConfigurationError):
            FailureWindow(start=0.0, end=5.0, node_index=-1)


class TestFailureSchedule:
    def test_overlapping_same_node_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule(
                windows=(
                    FailureWindow(0.0, 100.0, 0),
                    FailureWindow(50.0, 150.0, 0),
                )
            )

    def test_overlap_on_different_nodes_allowed(self):
        schedule = FailureSchedule(
            windows=(FailureWindow(0.0, 100.0, 0), FailureWindow(50.0, 150.0, 1))
        )
        assert len(schedule) == 2

    def test_within(self):
        schedule = FailureSchedule(
            windows=(FailureWindow(0.0, 10.0, 0), FailureWindow(500.0, 510.0, 1))
        )
        assert len(schedule.within(100.0)) == 1

    def test_none(self):
        assert len(FailureSchedule.none()) == 0


class TestNodeFailureModel:
    def test_sample_deterministic(self):
        model = NodeFailureModel(mtbf_hours=24, mttr_hours=1)
        a = model.sample(4, 86400.0, seed=3)
        b = model.sample(4, 86400.0, seed=3)
        assert a.windows == b.windows

    def test_shorter_mtbf_means_more_failures(self):
        horizon = 14 * 24 * 3600.0
        flaky = NodeFailureModel(mtbf_hours=12, mttr_hours=1).sample(8, horizon, 0)
        sturdy = NodeFailureModel(mtbf_hours=720, mttr_hours=1).sample(8, horizon, 0)
        assert len(flaky) > len(sturdy)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeFailureModel(mtbf_hours=0)
        with pytest.raises(ConfigurationError):
            NodeFailureModel(mttr_hours=-1)
        with pytest.raises(ConfigurationError):
            NodeFailureModel().sample(0, 100.0)
        with pytest.raises(ConfigurationError):
            NodeFailureModel().sample(4, 0.0)


class TestPlacementNodeFaults:
    def test_fail_node_evicts_residents(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=8))
        manager.place("a", 8)  # node 0
        manager.place("b", 8)  # node 1
        evicted = manager.fail_node(0)
        assert evicted == ["a"]
        assert manager.usable_gpus == 8
        assert manager.failed_nodes == [0]
        assert not manager.is_placed("a")
        assert manager.is_placed("b")

    def test_failed_node_unusable_until_repair(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=8))
        manager.fail_node(1)
        manager.place("a", 8)  # fits on node 0
        with pytest.raises(PlacementError):
            manager.place("b", 8)
        manager.repair_node(1)
        manager.place("b", 8)
        assert manager.usable_gpus == 16

    def test_double_fail_rejected(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=8))
        manager.fail_node(0)
        with pytest.raises(PlacementError):
            manager.fail_node(0)

    def test_repair_healthy_rejected(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=8))
        with pytest.raises(PlacementError):
            manager.repair_node(0)

    def test_fail_out_of_range_rejected(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=8))
        with pytest.raises(PlacementError):
            manager.fail_node(5)

    def test_spanning_job_evicted_by_either_node(self):
        manager = PlacementManager(ClusterSpec(n_nodes=2, gpus_per_node=8))
        manager.place("wide", 16)
        assert manager.fail_node(1) == ["wide"]

    def test_defrag_around_failed_node(self):
        """Migration still works with a pinned (failed) node in the middle."""
        manager = PlacementManager(ClusterSpec(n_nodes=4, gpus_per_node=8))
        manager.place("a", 8)
        manager.fail_node(1)
        manager.place("b", 8)
        manager.place("c", 4)
        manager.release("a")
        # 12 free GPUs across nodes 0 and 3; an 8-block must still fit.
        placement, _ = manager.place("d", 8)
        assert placement.n_gpus == 8


class TestEngineWithFailures:
    def test_eviction_and_recovery(self):
        specs = [spec(i, submit=i * 100.0) for i in range(4)]
        schedule = FailureSchedule(
            windows=(FailureWindow(start=300.0, end=1500.0, node_index=0),)
        )
        result = Simulator(
            ClusterSpec(2, 8),
            ElasticFlowPolicy(),
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
            failures=schedule,
        ).run()
        assert result.completed_count + result.dropped_count == 4

    def test_failure_reduces_visible_capacity(self):
        specs = [spec(0, seconds=4000.0)]
        schedule = FailureSchedule(
            windows=(FailureWindow(start=100.0, end=5000.0, node_index=1),)
        )
        sim = Simulator(
            ClusterSpec(2, 8),
            ElasticFlowPolicy(),
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
            failures=schedule,
        )
        result = sim.run()
        # During the outage at most 8 GPUs were ever in use.
        during = [
            s for s in result.timeline.samples if 100.0 <= s.time < 5000.0
        ]
        assert during and all(s.gpus_in_use <= 8 for s in during)

    def test_failure_on_unknown_node_rejected(self):
        schedule = FailureSchedule(
            windows=(FailureWindow(start=1.0, end=2.0, node_index=9),)
        )
        with pytest.raises(SimulationError):
            Simulator(
                ClusterSpec(2, 8),
                ElasticFlowPolicy(),
                [spec(0)],
                throughput=MODEL,
                failures=schedule,
            )

    def test_failure_reserve_survives_outage(self):
        """With a reserve, admitted jobs ride out a single-node outage."""
        specs = [spec(i, submit=i * 50.0, deadline_rel=7200.0) for i in range(4)]
        schedule = FailureSchedule(
            windows=(FailureWindow(start=400.0, end=2000.0, node_index=0),)
        )
        result = Simulator(
            ClusterSpec(2, 8),
            ElasticFlowPolicy(failure_reserve_gpus=8),
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
            failures=schedule,
        ).run()
        admitted = [o for o in result.outcomes if o.admitted]
        assert admitted
        assert all(o.met_deadline for o in admitted)

    def test_failure_loses_uncheckpointed_progress(self):
        """A crash rolls the job back to its last checkpoint; a planned
        scaling event does not (it checkpoints first)."""
        # Sized so the job is still running when the node dies at t=900.
        lone = spec(0, seconds=8 * 3600.0, deadline_rel=24 * 3600.0)
        schedule = FailureSchedule(
            windows=(FailureWindow(start=900.0, end=1200.0, node_index=0),)
        )
        sim = Simulator(
            ClusterSpec(2, 8),
            ElasticFlowPolicy(),
            [lone],
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
            failures=schedule,
        )
        sim.run_until(899.0)
        before_crash = sim.jobs["j0"].iterations_done
        checkpointed = sim.jobs["j0"].checkpointed_iterations
        assert before_crash > checkpointed  # progress since the last event
        sim.run_until(900.0)  # the node hosting the job fails right now
        after_crash = sim.jobs["j0"].iterations_done
        assert after_crash == checkpointed < before_crash
        result = sim.run()
        assert result.completed_count == 1

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_random_outages_never_wedge_the_engine(self, seed):
        specs = [spec(i, submit=i * 120.0, deadline_rel=5400.0) for i in range(5)]
        schedule = NodeFailureModel(mtbf_hours=1.0, mttr_hours=0.2).sample(
            2, 7200.0, seed=seed
        )
        result = Simulator(
            ClusterSpec(2, 8),
            ElasticFlowPolicy(),
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
            failures=schedule,
        ).run()
        assert result.completed_count + result.dropped_count == 5
