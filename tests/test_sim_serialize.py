"""Round-trip tests for the lossless result serialisation layer."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import (
    ExperimentConfig,
    improvement_factors,
    run_policies,
)
from repro.experiments.harness import testbed_workload as build_testbed
from repro.sim.serialize import (
    decode_float,
    encode_float,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
    sanitize_for_json,
)


class TestFloatEncoding:
    @pytest.mark.parametrize(
        "value,encoded",
        [
            (None, None),
            (1.5, 1.5),
            (math.inf, "inf"),
            (-math.inf, "-inf"),
        ],
    )
    def test_round_trip(self, value, encoded):
        assert encode_float(value) == encoded
        assert decode_float(encoded) == value

    def test_nan_round_trips(self):
        assert encode_float(math.nan) == "nan"
        assert math.isnan(decode_float("nan"))

    def test_decode_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            decode_float("Infinity")

    def test_sanitize_handles_nested_structures(self):
        report = {
            "factors": {"edf": math.inf, "gandiva": 2.0},
            "series": [1.0, math.nan, None],
        }
        clean = sanitize_for_json(report)
        assert clean["factors"]["edf"] == "inf"
        assert clean["series"][1] == "nan"
        assert clean["series"][2] is None
        # The whole point: strict JSON, no bare Infinity/NaN literals.
        text = json.dumps(clean, allow_nan=False)
        assert "Infinity" not in text


class TestImprovementFactorSerialisation:
    def test_infinite_factor_is_json_encodable(self):
        """A baseline meeting zero deadlines yields inf; the sanitized
        encoding must survive a strict JSON round trip."""
        config = ExperimentConfig()
        cluster, specs = build_testbed(config, cluster_gpus=16, n_jobs=8)
        results = run_policies(["elasticflow", "edf"], cluster, specs, config)
        factors = improvement_factors(results)
        factors["edf"] = math.inf  # force the zero-deadline baseline case
        text = json.dumps(sanitize_for_json(factors), allow_nan=False)
        assert json.loads(text)["edf"] == "inf"


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig()
        cluster, specs = build_testbed(
            config, cluster_gpus=16, n_jobs=10, best_effort_fraction=0.3
        )
        return run_policies(
            ["elasticflow"], cluster, specs, config, record_timeline=True
        )["elasticflow"]

    def test_dict_round_trip_preserves_everything(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.policy_name == result.policy_name
        assert rebuilt.outcomes == result.outcomes
        assert rebuilt.total_gpus == result.total_gpus
        assert rebuilt.events_processed == result.events_processed
        assert rebuilt.timeline is not None
        assert rebuilt.timeline.samples == result.timeline.samples

    def test_json_round_trip_is_byte_stable(self, result):
        text = result_to_json(result)
        assert result_to_json(result_from_json(text)) == text

    def test_summary_survives(self, result):
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.summary() == result.summary()

    def test_no_timeline_round_trips(self):
        config = ExperimentConfig()
        cluster, specs = build_testbed(config, cluster_gpus=16, n_jobs=6)
        result = run_policies(["edf"], cluster, specs, config)["edf"]
        rebuilt = result_from_json(result_to_json(result))
        assert rebuilt.timeline is None
        assert rebuilt.outcomes == result.outcomes

    def test_schema_mismatch_rejected(self, result):
        data = result_to_dict(result)
        data["schema"] = 999
        with pytest.raises(ConfigurationError):
            result_from_dict(data)

    def test_malformed_text_rejected(self):
        with pytest.raises(ConfigurationError):
            result_from_json("{not json")
