"""Tests for the shared numeric-hygiene helpers (repro.numeric)."""

from __future__ import annotations

import pytest

from repro.numeric import (
    EPS,
    feq,
    floor_power_of_two,
    fne,
    is_power_of_two,
    next_power_of_two,
)


def test_eps_is_the_planning_tolerance() -> None:
    assert EPS == pytest.approx(1e-9)


def test_feq_fne_are_complements() -> None:
    assert feq(1.0, 1.0)
    assert feq(1.0, 1.0 + EPS / 2)
    assert not feq(1.0, 1.0 + 3 * EPS)
    assert fne(1.0, 1.0 + 3 * EPS)
    assert not fne(1.0, 1.0 + EPS / 2)
    # The classic accumulation case exact equality gets wrong:
    assert 0.1 + 0.2 != 0.3
    assert feq(0.1 + 0.2, 0.3)


def test_feq_accepts_a_custom_epsilon() -> None:
    assert feq(1.0, 1.5, eps=0.5)
    assert fne(1.0, 1.5, eps=0.4)


@pytest.mark.parametrize("value", [1, 2, 4, 8, 64, 1024, 2**30])
def test_powers_of_two_are_recognised(value: int) -> None:
    assert is_power_of_two(value)


@pytest.mark.parametrize("value", [-4, -1, 0, 3, 6, 12, 1023, 1025])
def test_non_powers_are_rejected(value: int) -> None:
    assert not is_power_of_two(value)


def test_floor_power_of_two() -> None:
    assert floor_power_of_two(-3) == 0
    assert floor_power_of_two(0) == 0
    assert floor_power_of_two(1) == 1
    assert floor_power_of_two(5) == 4
    assert floor_power_of_two(8) == 8
    assert floor_power_of_two(1023) == 512


def test_next_power_of_two() -> None:
    assert next_power_of_two(-3) == 1
    assert next_power_of_two(0) == 1
    assert next_power_of_two(1) == 1
    assert next_power_of_two(5) == 8
    assert next_power_of_two(8) == 8
    assert next_power_of_two(1025) == 2048


@pytest.mark.parametrize("value", range(1, 300))
def test_floor_and_next_bracket_every_value(value: int) -> None:
    lo, hi = floor_power_of_two(value), next_power_of_two(value)
    assert is_power_of_two(lo) and is_power_of_two(hi)
    assert lo <= value <= hi
    if is_power_of_two(value):
        assert lo == hi == value
    else:
        assert hi == 2 * lo
