"""End-to-end tests of the discrete-event engine with the ElasticFlow policy.

The central property: **when ElasticFlow admits a job, the job meets its
deadline** (Section 3.1's performance guarantee).  With the executor
disabled this must hold exactly; with overheads enabled a small safety
margin restores it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec, JobStatus
from repro.errors import SchedulingError, SimulationError
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, SchedulerPolicy, Simulator

SMALL = ClusterSpec(n_nodes=2, gpus_per_node=8)
MODEL = ThroughputModel()


def spec(i, submit=0.0, deadline_rel=3600.0, iters=20000, model="resnet50", batch=128, best_effort=False):
    return JobSpec(
        job_id=f"job-{i}",
        model_name=model,
        global_batch_size=batch,
        max_iterations=iters,
        submit_time=submit,
        deadline=None if best_effort else submit + deadline_rel,
    )


def run(specs, policy=None, cluster=SMALL, executor=None, **kwargs):
    sim = Simulator(
        cluster,
        policy or ElasticFlowPolicy(),
        specs,
        throughput=MODEL,
        executor=executor or ElasticExecutor.disabled(),
        **kwargs,
    )
    return sim.run()


class TestBasicRuns:
    def test_single_job_completes_on_time(self):
        result = run([spec(0)])
        assert result.deadline_satisfactory_ratio == 1.0
        assert result.completed_count == 1

    def test_impossible_job_is_dropped(self):
        # One iteration per ~24 ms; 10M iterations can't finish in a minute.
        result = run([spec(0, deadline_rel=60.0, iters=10_000_000)])
        assert result.dropped_count == 1
        assert result.deadline_satisfactory_ratio == 0.0

    def test_best_effort_job_never_dropped(self):
        result = run([spec(0, iters=10_000_000, best_effort=True)])
        assert result.dropped_count == 0
        assert result.completed_count == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SimulationError):
            run([spec(0), spec(0)])

    def test_outcome_fields_populated(self):
        result = run([spec(0)])
        outcome = result.outcomes[0]
        assert outcome.admitted
        assert outcome.completion_time is not None
        assert outcome.jct > 0

    def test_events_processed_counted(self):
        result = run([spec(0)])
        assert result.events_processed >= 2


class TestElasticBehaviour:
    def test_lone_job_scales_out(self):
        """With an empty cluster the single job gets many GPUs."""
        result = run([spec(0, deadline_rel=7 * 24 * 3600.0)])
        assert result.timeline is not None
        peak = max(s.gpus_in_use for s in result.timeline.samples)
        assert peak >= 8

    def test_contention_shrinks_allocations(self):
        specs = [spec(i, submit=0.0, deadline_rel=7200.0) for i in range(8)]
        result = run(specs)
        assert result.deadline_satisfactory_ratio == 1.0
        # At some instant the cluster must have been shared.
        assert any(s.running_jobs >= 2 for s in result.timeline.samples)

    def test_scale_events_recorded(self):
        specs = [spec(0, deadline_rel=7200.0), spec(1, submit=120.0, deadline_rel=7200.0)]
        result = run(specs)
        assert any(o.scale_events > 0 for o in result.outcomes)

    def test_timeline_optional(self):
        result = run([spec(0)], record_timeline=False)
        assert result.timeline is None

    def test_gpus_never_exceed_capacity(self):
        specs = [spec(i, submit=60.0 * i, deadline_rel=5400.0) for i in range(6)]
        result = run(specs)
        assert all(s.gpus_in_use <= 16 for s in result.timeline.samples)


class TestOverheads:
    def test_overheads_delay_completion(self):
        fast = run([spec(0), spec(1, submit=300.0)])
        slow = run(
            [spec(0), spec(1, submit=300.0)],
            executor=ElasticExecutor(),
        )
        assert slow.outcome_of("job-0").completion_time >= fast.outcome_of(
            "job-0"
        ).completion_time

    def test_guarantee_holds_with_margin(self):
        specs = [spec(i, submit=200.0 * i, deadline_rel=5400.0) for i in range(6)]
        result = run(
            specs,
            policy=ElasticFlowPolicy(safety_margin=0.05),
            executor=ElasticExecutor(),
        )
        admitted = [o for o in result.outcomes if o.admitted]
        assert all(o.met_deadline for o in admitted)


class TestPolicyValidation:
    class OverAllocator(SchedulerPolicy):
        name = "over"

        def allocate(self, active, now):
            return {job.job_id: 1024 for job in active}

    class NonPowerOfTwo(SchedulerPolicy):
        name = "odd"

        def allocate(self, active, now):
            return {job.job_id: 3 for job in active}

    class Starver(SchedulerPolicy):
        name = "starver"

        def allocate(self, active, now):
            return {}

    def test_over_allocation_rejected(self):
        with pytest.raises(SchedulingError):
            run([spec(0)], policy=self.OverAllocator())

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SchedulingError):
            run([spec(0)], policy=self.NonPowerOfTwo())

    def test_starvation_hits_event_guard(self):
        with pytest.raises(SimulationError):
            run([spec(0)], policy=self.Starver(), max_events=500)

    def test_unbound_policy_rejected(self):
        from repro.errors import ConfigurationError

        policy = ElasticFlowPolicy()
        with pytest.raises(ConfigurationError):
            _ = policy.context


class TestGuaranteeProperty:
    """The paper's performance guarantee, checked on random workloads."""

    @settings(max_examples=15, deadline=None)
    @given(
        n_jobs=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_admitted_jobs_always_meet_deadlines(self, n_jobs, seed):
        rng = np.random.default_rng(seed)
        models = [("resnet50", 128), ("vgg16", 64), ("bert", 64), ("gpt2", 128)]
        specs = []
        for i in range(n_jobs):
            name, batch = models[rng.integers(len(models))]
            # Work sized to 10-60 minutes on one GPU.
            one_gpu = MODEL.curve(name, batch).throughput(1)
            seconds = float(rng.uniform(600, 3600))
            specs.append(
                JobSpec(
                    job_id=f"job-{i}",
                    model_name=name,
                    global_batch_size=batch,
                    max_iterations=max(1, int(one_gpu * seconds)),
                    submit_time=float(rng.uniform(0, 1800)),
                    deadline=None,
                )
            )
            # Deadline tightness lambda in [0.5, 1.5] of single-GPU duration.
            lam = float(rng.uniform(0.5, 1.5))
            specs[-1] = JobSpec(
                job_id=specs[-1].job_id,
                model_name=specs[-1].model_name,
                global_batch_size=specs[-1].global_batch_size,
                max_iterations=specs[-1].max_iterations,
                submit_time=specs[-1].submit_time,
                deadline=specs[-1].submit_time + lam * seconds,
            )
        result = run(specs, slot_seconds=120.0)
        for outcome in result.outcomes:
            if outcome.admitted:
                assert outcome.met_deadline, (
                    f"{outcome.job_id} admitted but missed: "
                    f"finished {outcome.completion_time}, due {outcome.deadline}"
                )
        assert result.completed_count + result.dropped_count == n_jobs
