"""Tests for the serverless job model."""

import math

import pytest

from repro.core import Job, JobSpec, JobStatus
from repro.errors import ConfigurationError, SchedulingError


def spec(**overrides) -> JobSpec:
    defaults = dict(
        job_id="job-1",
        model_name="resnet50",
        global_batch_size=128,
        max_iterations=1000,
        submit_time=0.0,
        deadline=3600.0,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_best_effort_when_deadline_none(self):
        job = spec(deadline=None)
        assert job.best_effort
        assert job.effective_deadline == math.inf

    def test_best_effort_when_deadline_inf(self):
        assert spec(deadline=math.inf).best_effort

    def test_slo_job_not_best_effort(self):
        job = spec()
        assert not job.best_effort
        assert job.effective_deadline == 3600.0
        assert job.relative_deadline == 3600.0

    def test_deadline_before_submit_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(submit_time=100.0, deadline=50.0)

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(job_id="")

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(max_iterations=0)

    def test_non_power_of_two_request_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(requested_gpus=3)

    def test_negative_submit_rejected(self):
        with pytest.raises(ConfigurationError):
            spec(submit_time=-1.0)


class TestJobLifecycle:
    def test_initial_state(self):
        job = Job(spec=spec())
        assert job.status is JobStatus.PENDING
        assert job.remaining_iterations == 1000
        assert not job.is_finished
        assert not job.is_active

    def test_admit_then_complete(self):
        job = Job(spec=spec())
        job.mark_admitted(5.0)
        assert job.status is JobStatus.ADMITTED
        assert job.is_active
        job.iterations_done = 1000.0
        job.mark_completed(100.0)
        assert job.status is JobStatus.COMPLETED
        assert job.completion_time == 100.0
        assert job.met_deadline()

    def test_late_completion_misses_deadline(self):
        job = Job(spec=spec(deadline=50.0))
        job.mark_admitted(0.0)
        job.mark_completed(60.0)
        assert not job.met_deadline()

    def test_unfinished_job_never_met_deadline(self):
        assert not Job(spec=spec()).met_deadline()

    def test_drop(self):
        job = Job(spec=spec())
        job.mark_dropped(1.0)
        assert job.status is JobStatus.DROPPED
        assert job.drop_time == 1.0

    def test_invalid_transitions_rejected(self):
        job = Job(spec=spec())
        job.mark_admitted(0.0)
        with pytest.raises(SchedulingError):
            job.mark_admitted(1.0)
        with pytest.raises(SchedulingError):
            job.mark_dropped(1.0)
        job.mark_completed(2.0)
        with pytest.raises(SchedulingError):
            job.mark_completed(3.0)


class TestProgress:
    def test_advance_accrues_iterations(self):
        job = Job(spec=spec())
        job.advance(seconds=10.0, iterations_per_second=5.0, now=10.0)
        assert job.iterations_done == 50.0
        assert job.remaining_iterations == 950.0

    def test_advance_clamps_at_max(self):
        job = Job(spec=spec(max_iterations=100))
        job.advance(seconds=1000.0, iterations_per_second=5.0, now=1000.0)
        assert job.iterations_done == 100.0
        assert job.is_finished

    def test_advance_excludes_stalled_time(self):
        job = Job(spec=spec())
        job.stall_until = 5.0
        # Window [0, 10]: the first 5 seconds are a scaling stall.
        job.advance(seconds=10.0, iterations_per_second=2.0, now=10.0)
        assert job.iterations_done == pytest.approx(10.0)

    def test_advance_fully_stalled_window(self):
        job = Job(spec=spec())
        job.stall_until = 100.0
        job.advance(seconds=10.0, iterations_per_second=2.0, now=10.0)
        assert job.iterations_done == 0.0

    def test_advance_negative_rejected(self):
        with pytest.raises(SchedulingError):
            Job(spec=spec()).advance(-1.0, 1.0, now=0.0)
