"""Decision-equivalence regression: the fast path must change nothing.

Two layers of evidence:

- A hypothesis sweep over randomized planning instances asserting the
  vectorized fill and the reference scan return bit-identical plans.
- A seeded end-to-end trace simulated twice — planning caches on, then
  under :func:`planning_cache_disabled` — asserting identical outcomes
  job for job (admission, completion time, scale events).
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import (
    AdmissionController,
    _progressive_filling_reference,
    progressive_filling,
)
from repro.core.scheduler import ElasticFlowPolicy
from repro.core.slots import SlotGrid
from repro.cluster.topology import ClusterSpec
from repro.perf.tables import (
    batched_solver_disabled,
    planning_cache_disabled,
    reset_cache,
)
from repro.profiles import ThroughputModel
from repro.sim.engine import Simulator
from repro.traces.synthetic import ClusterTraceConfig, generate_trace
from repro.traces.workload import build_jobs

from conftest import synthetic_planning_job


# --------------------------------------------------------------- unit level
@st.composite
def fill_instances(draw):
    horizon = draw(st.integers(min_value=1, max_value=12))
    grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=horizon)
    capacity = draw(st.sampled_from([1, 2, 4, 8]))
    n_sizes = draw(st.integers(min_value=1, max_value=3))
    sizes = sorted(
        draw(
            st.lists(
                st.sampled_from([1, 2, 3, 4, 6, 8]),
                min_size=n_sizes,
                max_size=n_sizes,
                unique=True,
            )
        )
    )
    sizes = [s for s in sizes if s <= capacity] or [1]
    thr = {}
    last = 0.0
    for s in sizes:
        last += draw(st.floats(min_value=0.1, max_value=2.0))
        thr[s] = last
    remaining = draw(st.floats(min_value=0.0, max_value=30.0))
    deadline = draw(st.floats(min_value=0.5, max_value=float(horizon)))
    info = synthetic_planning_job("j", remaining, deadline, grid, capacity, thr)
    # Availability may legitimately include zeros and (defensively) negatives.
    available = np.array(
        draw(
            st.lists(
                st.integers(min_value=-1, max_value=capacity),
                min_size=horizon,
                max_size=horizon,
            )
        ),
        dtype=np.int64,
    )
    start_slot = draw(st.integers(min_value=0, max_value=min(1, horizon - 1)))
    head = None
    if start_slot == 1:
        head = np.zeros(horizon, dtype=np.int64)
        head[0] = draw(st.sampled_from([0] + sizes))
    return info, available, start_slot, head


class TestFillEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(fill_instances())
    def test_fast_fill_matches_reference_bit_for_bit(self, instance):
        info, available, start_slot, head = instance
        fast = progressive_filling(
            info, available, start_slot=start_slot, head=head
        )
        reference = _progressive_filling_reference(
            info, available, start_slot=start_slot, head=head
        )
        if reference is None:
            assert fast is None
        else:
            assert fast is not None
            assert np.array_equal(fast, reference)

    def test_interior_zero_weights_are_respected(self):
        """Hand-built views may carry zero-weight slots *inside* the
        window; the fast path's window must span them, not stop early."""
        grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=6)
        info = synthetic_planning_job("j", 3.0, 6.0, grid, 4, {1: 1.0})
        info.weights = info.weights.copy()
        info.weights[2] = 0.0  # a dead slot inside the usable window
        available = np.full(6, 4, dtype=np.int64)
        fast = progressive_filling(info, available)
        reference = _progressive_filling_reference(info, available)
        assert fast is not None and reference is not None
        assert np.array_equal(fast, reference)


# -------------------------------------------------------- controller level
@st.composite
def controller_scenarios(draw):
    """A randomized multi-job admission instance plus a perturbation
    sequence: each step re-plans some subset of the jobs with rescaled
    remaining work, exercising the delta path's departures, arrivals,
    watermark reuses, slack reuses, and refills."""
    horizon = draw(st.integers(min_value=4, max_value=10))
    capacity = draw(st.sampled_from([4, 8]))
    n_jobs = draw(st.integers(min_value=2, max_value=5))
    jobs = []
    for i in range(n_jobs):
        n_sizes = draw(st.integers(min_value=1, max_value=3))
        sizes = sorted(
            draw(
                st.lists(
                    st.sampled_from([1, 2, 3, 4, 6, 8]),
                    min_size=n_sizes,
                    max_size=n_sizes,
                    unique=True,
                )
            )
        )
        sizes = [s for s in sizes if s <= capacity] or [1]
        thr = {}
        last = 0.0
        for s in sizes:
            last += draw(st.floats(min_value=0.1, max_value=2.0))
            thr[s] = last
        remaining = draw(st.floats(min_value=0.5, max_value=30.0))
        best_effort = i > 0 and draw(st.booleans())
        deadline = (
            float("inf")
            if best_effort
            else draw(st.floats(min_value=0.5, max_value=float(horizon)))
        )
        jobs.append((f"j{i}", remaining, deadline, thr, best_effort))
    n_steps = draw(st.integers(min_value=2, max_value=4))
    steps = []
    for _ in range(n_steps):
        live = sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_jobs - 1), min_size=1
                )
            )
        )
        steps.append(
            [
                (idx, draw(st.floats(min_value=0.3, max_value=1.0)))
                for idx in live
            ]
        )
    return horizon, capacity, jobs, steps


def _run_scenario(scenario, mode):
    """Drive one controller through the whole perturbation sequence.

    Fresh planning views are built per run from the same concrete scenario
    data, so every mode plans identical inputs; ``reference`` re-solves
    each step from scratch under the cache-disabled escape hatch."""
    horizon, capacity, jobs, steps = scenario
    grid = SlotGrid(origin=0.0, slot_seconds=1.0, horizon=horizon)
    ctrl = AdmissionController(capacity)
    outputs = []
    for step in steps:
        infos = []
        for idx, factor in step:
            job_id, remaining, deadline, thr, best_effort = jobs[idx]
            info = synthetic_planning_job(
                job_id,
                remaining * factor,
                deadline,
                grid,
                capacity,
                thr,
                best_effort=best_effort,
            )
            infos.append(replace(info, tables_token=idx + 1))
        if mode == "reference":
            with planning_cache_disabled():
                result = ctrl.plan_shares(infos, grid, stop_on_failure=False)
        else:
            result = ctrl.plan_shares(infos, grid, stop_on_failure=False)
        outputs.append(
            (
                {k: v.copy() for k, v in result.plans.items()},
                set(result.degraded),
                result.admitted,
                result.infeasible_job,
                result.ledger.used.copy(),
            )
        )
    return outputs


class TestBatchedSolverEquivalence:
    """The batched multi-job solver (with its interval index and slack
    tier) must be bit-identical to the sequential per-job solver and to the
    cache-disabled reference across whole perturbation sequences."""

    @settings(max_examples=80, deadline=None)
    @given(controller_scenarios())
    def test_batched_sequential_and_reference_agree(self, scenario):
        batched = _run_scenario(scenario, "batched")
        with batched_solver_disabled():
            sequential = _run_scenario(scenario, "sequential")
        reference = _run_scenario(scenario, "reference")
        for fast, slow, ref in zip(batched, sequential, reference):
            for other in (slow, ref):
                assert set(fast[0]) == set(other[0])
                for job_id in fast[0]:
                    assert np.array_equal(fast[0][job_id], other[0][job_id])
                assert fast[1] == other[1]  # degraded sets
                assert fast[2] == other[2]  # admitted
                assert fast[3] == other[3]  # infeasible job
                assert np.array_equal(fast[4], other[4])  # ledger used


# --------------------------------------------------------------- end to end
def _simulate(specs, cluster, throughput):
    sim = Simulator(
        cluster,
        ElasticFlowPolicy(
            safety_margin=0.03, deadline_padding_s=60.0, stability_threshold=0.3
        ),
        specs,
        throughput=throughput,
        slot_seconds=600.0,
        record_timeline=False,
    )
    return sim.run()


def _digest(result):
    return sorted(
        (
            o.job_id,
            o.status.value,
            o.admitted,
            o.completion_time,
            o.scale_events,
        )
        for o in result.outcomes
    )


@pytest.mark.parametrize("seed", [3, 11])
def test_trace_decisions_identical_with_and_without_cache(seed):
    """A seeded trace must produce byte-identical scheduling outcomes with
    every memo enabled and under the cache-disabled escape hatch."""
    config = ClusterTraceConfig(
        "equivalence",
        64,
        120,
        target_load=1.1,
        duration_median_s=2000.0,
        duration_sigma=1.2,
    )
    trace = generate_trace(config, seed=seed)
    throughput = ThroughputModel()
    specs = build_jobs(trace, throughput, seed=seed)
    cluster = ClusterSpec(n_nodes=8, gpus_per_node=8)

    reset_cache()
    cached = _simulate(specs, cluster, throughput)
    with planning_cache_disabled():
        uncached = _simulate(specs, cluster, throughput)

    assert _digest(cached) == _digest(uncached)
