"""Smoke tests for the perf harness (python -m repro.perf)."""

import json

import pytest

from repro.perf import bench


@pytest.fixture
def tiny_bench(monkeypatch):
    """Shrink the benchmark trace so the smoke run stays fast."""
    monkeypatch.setattr(bench, "QUICK_JOBS", 30)
    return bench


def test_main_writes_report(tmp_path, tiny_bench, capsys):
    out = tmp_path / "BENCH_core.json"
    code = tiny_bench.main(["--quick", "--seed", "5", "-o", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == 1
    assert report["quick"] is True
    assert report["seed"] == 5

    e2e = report["end_to_end"]
    for key in ("n_jobs", "cluster_gpus", "cached", "uncached", "speedup"):
        assert key in e2e
    assert e2e["decisions_match"] is True
    for side in ("cached", "uncached"):
        metrics = e2e[side]
        assert metrics["wall_s"] > 0
        assert metrics["events"] > 0
        assert metrics["events_per_sec"] > 0
        assert "p50_ms" in metrics and "p95_ms" in metrics
    cache = e2e["cached"]["cache"]
    assert cache["hits"] > 0

    admission = report["admission"]
    assert admission["candidates"] > 0
    assert admission["ops_per_sec"] > 0

    allocation = report["allocation"]
    assert allocation["rounds"] > 0
    assert allocation["allocs_per_sec"] > 0

    printed = capsys.readouterr().out
    assert "end-to-end" in printed


def test_decision_digest_orders_outcomes(tiny_bench):
    metrics, result = bench._run_sim(12, seed=1)
    digest = bench._decision_digest(result)
    assert digest == sorted(digest)
    assert len(digest) == 12
