"""Smoke tests for the perf harness (python -m repro.perf)."""

import json

import pytest

from repro.perf import bench, delta


@pytest.fixture
def tiny_bench(monkeypatch):
    """Shrink the benchmark trace so the smoke run stays fast."""
    monkeypatch.setattr(bench, "QUICK_JOBS", 30)
    monkeypatch.setitem(bench.SCALES["quick"], "n_jobs", 30)
    return bench


def test_main_writes_report(tmp_path, tiny_bench, capsys):
    out = tmp_path / "BENCH_core.json"
    code = tiny_bench.main(["--quick", "--seed", "5", "-o", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == 2
    assert report["quick"] is True
    assert report["scale"] == "quick"
    assert report["seed"] == 5

    e2e = report["end_to_end"]
    for key in ("n_jobs", "cluster_gpus", "cached", "uncached", "speedup"):
        assert key in e2e
    assert e2e["decisions_match"] is True
    for side in ("cached", "uncached"):
        metrics = e2e[side]
        assert metrics["wall_s"] > 0
        assert metrics["events"] > 0
        assert metrics["events_per_sec"] > 0
        assert "p50_ms" in metrics and "p95_ms" in metrics
    cache = e2e["cached"]["cache"]
    assert cache["hits"] > 0

    admission = report["admission"]
    assert admission["candidates"] > 0
    assert admission["ops_per_sec"] > 0

    allocation = report["allocation"]
    assert allocation["rounds"] > 0
    assert allocation["allocs_per_sec"] > 0

    buddy = report["buddy"]
    assert buddy["ops"] > 0
    assert buddy["ops_per_sec"] > 0

    counters = e2e["cached"]["counters"]
    assert counters["alg2_heap_pushes"] > 0
    assert counters["buddy_allocs"] > 0

    printed = capsys.readouterr().out
    assert "end-to-end" in printed
    assert "buddy" in printed


def test_bench_buddy_is_deterministic():
    first = bench.bench_buddy(3, ops=2000)
    second = bench.bench_buddy(3, ops=2000)
    assert first["ops"] == second["ops"] > 0
    assert first["capacity"] == bench.BUDDY_BENCH_GPUS


def test_decision_digest_orders_outcomes(tiny_bench):
    metrics, result = bench._run_sim(12, seed=1)
    digest = bench._decision_digest(result)
    assert digest == sorted(digest)
    assert len(digest) == 12


# ------------------------------------------------------- perf-delta gate
def _report(phases, wall=10.0, buddy_wall=None):
    report = {
        "scale": "quick",
        "seed": 0,
        "end_to_end": {
            "cached": {
                "wall_s": wall,
                "events_per_sec": 100.0,
                "phases": phases,
            }
        },
    }
    if buddy_wall is not None:
        report["buddy"] = {"ops": 1000, "wall_s": buddy_wall, "ops_per_sec": 1.0}
    return report


class TestDeltaGate:
    def test_roundtrip_report_passes_against_itself(self):
        report = _report({"alg1_s": 3.0, "alg2_s": 5.0, "other_s": 2.0})
        baseline = delta.extract_baseline(report)
        assert delta.check_phases(report, baseline) == []

    def test_uniform_slowdown_passes(self):
        """A slow runner scales every phase equally — shares unchanged."""
        baseline = delta.extract_baseline(
            _report({"alg1_s": 3.0, "alg2_s": 5.0}, wall=10.0)
        )
        slower = _report({"alg1_s": 9.0, "alg2_s": 15.0}, wall=30.0)
        assert delta.check_phases(slower, baseline) == []

    def test_single_phase_regression_fails(self):
        baseline = delta.extract_baseline(
            _report({"alg1_s": 3.0, "alg2_s": 5.0}, wall=10.0)
        )
        regressed = _report({"alg1_s": 3.0, "alg2_s": 9.0}, wall=14.0)
        failures = delta.check_phases(regressed, baseline)
        assert len(failures) == 1 and "alg2_s" in failures[0]

    def test_buddy_pseudo_fraction_gates(self):
        baseline = delta.extract_baseline(
            _report({"alg1_s": 3.0}, wall=10.0, buddy_wall=1.0)
        )
        assert baseline["fractions"]["buddy_bench"] == pytest.approx(0.1)
        same = _report({"alg1_s": 3.0}, wall=10.0, buddy_wall=1.0)
        assert delta.check_phases(same, baseline) == []
        regressed = _report({"alg1_s": 3.0}, wall=10.0, buddy_wall=2.0)
        failures = delta.check_phases(regressed, baseline)
        assert len(failures) == 1 and "buddy_bench" in failures[0]

    def test_buddy_key_optional_on_both_sides(self):
        """Old baselines never gate it; a baseline with it demands it."""
        old_baseline = delta.extract_baseline(_report({"alg1_s": 3.0}))
        with_buddy = _report({"alg1_s": 3.0}, buddy_wall=1.0)
        assert delta.check_phases(with_buddy, old_baseline) == []
        new_baseline = delta.extract_baseline(with_buddy)
        failures = delta.check_phases(_report({"alg1_s": 3.0}), new_baseline)
        assert any("buddy_bench" in line for line in failures)

    def test_missing_phase_fails(self):
        baseline = delta.extract_baseline(
            _report({"alg1_s": 3.0, "alg2_s": 5.0})
        )
        failures = delta.check_phases(_report({"alg1_s": 3.0}), baseline)
        assert any("missing" in line for line in failures)

    def test_cli_write_then_gate(self, tmp_path):
        report_path = tmp_path / "report.json"
        baseline_path = tmp_path / "baseline.json"
        report_path.write_text(
            json.dumps(_report({"alg1_s": 3.0, "alg2_s": 5.0}))
        )
        assert (
            delta.main(
                [
                    "--report",
                    str(report_path),
                    "--baseline",
                    str(baseline_path),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert (
            delta.main(
                ["--report", str(report_path), "--baseline", str(baseline_path)]
            )
            == 0
        )
        regressed = tmp_path / "regressed.json"
        regressed.write_text(
            json.dumps(_report({"alg1_s": 3.0, "alg2_s": 9.0}, wall=14.0))
        )
        assert (
            delta.main(
                ["--report", str(regressed), "--baseline", str(baseline_path)]
            )
            == 1
        )
