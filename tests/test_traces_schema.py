"""Tests for the trace data model."""

import pytest

from repro.errors import TraceError
from repro.traces import Trace, TraceJob


def row(job_id="j0", submit=0.0, gpus=2, duration=600.0):
    return TraceJob(job_id=job_id, submit_time=submit, n_gpus=gpus, duration_s=duration)


class TestTraceJob:
    def test_gpu_seconds(self):
        assert row(gpus=4, duration=100.0).gpu_seconds == 400.0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(TraceError):
            row(gpus=3)

    def test_zero_gpus_rejected(self):
        with pytest.raises(TraceError):
            row(gpus=0)

    def test_negative_submit_rejected(self):
        with pytest.raises(TraceError):
            row(submit=-1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(TraceError):
            row(duration=0.0)

    def test_empty_id_rejected(self):
        with pytest.raises(TraceError):
            row(job_id="")


class TestTrace:
    def test_jobs_sorted_by_submit_time(self):
        trace = Trace(
            name="t",
            cluster_gpus=8,
            jobs=[row("b", submit=100.0), row("a", submit=50.0)],
        )
        assert [j.job_id for j in trace.jobs] == ["a", "b"]

    def test_span_and_totals(self):
        trace = Trace(
            name="t",
            cluster_gpus=8,
            jobs=[row("a", submit=0.0, gpus=2, duration=100.0),
                  row("b", submit=300.0, gpus=4, duration=50.0)],
        )
        assert trace.span_s == 300.0
        assert trace.total_gpu_seconds == 400.0
        assert len(trace) == 2

    def test_load_factor(self):
        trace = Trace(
            name="t",
            cluster_gpus=4,
            jobs=[row("a", submit=0.0, gpus=4, duration=100.0)],
        )
        # 400 GPU-seconds offered over 4 GPUs x 100 s horizon.
        assert trace.load_factor() == pytest.approx(1.0)

    def test_empty_trace_metrics(self):
        trace = Trace(name="t", cluster_gpus=8)
        assert trace.span_s == 0.0
        assert trace.load_factor() == 0.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(TraceError):
            Trace(name="t", cluster_gpus=8, jobs=[row("a"), row("a")])

    def test_head(self):
        trace = Trace(
            name="t",
            cluster_gpus=8,
            jobs=[row(f"j{i}", submit=float(i)) for i in range(5)],
        )
        head = trace.head(2)
        assert len(head) == 2
        assert head.cluster_gpus == 8
        assert [j.job_id for j in head.jobs] == ["j0", "j1"]

    def test_head_negative_rejected(self):
        with pytest.raises(TraceError):
            Trace(name="t", cluster_gpus=8).head(-1)

    def test_invalid_name_or_cluster(self):
        with pytest.raises(TraceError):
            Trace(name="", cluster_gpus=8)
        with pytest.raises(TraceError):
            Trace(name="t", cluster_gpus=0)
