"""Tests for the worker FSM and the scaling coordinator."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.executor import (
    JobCoordinator,
    ScalingPhase,
    Worker,
    WorkerState,
)
from repro.profiles import ThroughputModel, get_model
from repro.sim import ElasticExecutor

MODEL = get_model("resnet50")


def coordinator(**kwargs) -> JobCoordinator:
    return JobCoordinator("job-1", MODEL, 256, **kwargs)


class TestWorkerFSM:
    def test_happy_path(self):
        worker = Worker(worker_id="w0", gpu_index=0)
        for state in (
            WorkerState.INITIALIZING,
            WorkerState.READY,
            WorkerState.TRAINING,
            WorkerState.PAUSED,
            WorkerState.CHECKPOINTING,
            WorkerState.PAUSED,
            WorkerState.TRAINING,
            WorkerState.STOPPED,
        ):
            worker.transition(state)
        assert worker.is_terminal

    def test_illegal_transition_rejected(self):
        worker = Worker(worker_id="w0", gpu_index=0)
        with pytest.raises(SchedulingError, match="illegal transition"):
            worker.transition(WorkerState.TRAINING)  # CREATED -> TRAINING

    def test_terminal_state_is_final(self):
        worker = Worker(worker_id="w0", gpu_index=0)
        worker.transition(WorkerState.INITIALIZING)
        worker.transition(WorkerState.STOPPED)
        with pytest.raises(SchedulingError):
            worker.transition(WorkerState.READY)

    def test_history_recorded(self):
        worker = Worker(worker_id="w0", gpu_index=0)
        worker.transition(WorkerState.INITIALIZING)
        assert worker.history == [WorkerState.CREATED, WorkerState.INITIALIZING]

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            Worker(worker_id="", gpu_index=0)
        with pytest.raises(ConfigurationError):
            Worker(worker_id="w0", gpu_index=-1)


class TestLaunch:
    def test_cold_start_brings_workers_to_training(self):
        coord = coordinator()
        transcript = coord.launch([0, 1, 2, 3], now=0.0)
        assert coord.n_workers == 4
        assert coord.is_running
        assert transcript.old_workers == 0
        assert transcript.new_workers == 4
        # No drain/checkpoint/restore on a first launch.
        assert transcript.seconds_in(ScalingPhase.DRAIN) == 0.0
        assert transcript.seconds_in(ScalingPhase.CHECKPOINT) == 0.0
        assert transcript.seconds_in(ScalingPhase.RESTORE) == 0.0

    def test_local_batches_assigned(self):
        coord = coordinator()
        coord.launch([0, 1, 2, 3], now=0.0)
        assert sum(w.local_batch for w in coord.workers.values()) == 256

    def test_double_launch_rejected(self):
        coord = coordinator()
        coord.launch([0], now=0.0)
        with pytest.raises(SchedulingError):
            coord.launch([1], now=1.0)

    def test_bad_indices_rejected(self):
        coord = coordinator()
        with pytest.raises(ConfigurationError):
            coord.launch([], now=0.0)
        with pytest.raises(ConfigurationError):
            coord.launch([0, 0], now=0.0)
        with pytest.raises(ConfigurationError):
            coord.launch([-1], now=0.0)


class TestScale:
    def test_grow_preserves_survivors(self):
        coord = coordinator()
        coord.launch([0, 1], now=0.0)
        survivors = {gpu: coord.workers[gpu] for gpu in (0, 1)}
        transcript = coord.scale(
            [0, 1, 2, 3], now=100.0, iterations_done=500.0, iteration_seconds=0.05
        )
        assert coord.n_workers == 4
        # Surviving workers kept their objects (NCCL groups stay alive).
        assert coord.workers[0] is survivors[0]
        assert coord.workers[1] is survivors[1]
        assert transcript.plan.n_workers == 4

    def test_shrink_stops_departures(self):
        coord = coordinator()
        coord.launch([0, 1, 2, 3], now=0.0)
        departing = coord.workers[3]
        coord.scale([0, 1], now=50.0, iterations_done=100.0, iteration_seconds=0.05)
        assert coord.n_workers == 2
        assert departing.is_terminal

    def test_protocol_phase_order(self):
        coord = coordinator()
        coord.launch([0], now=0.0)
        transcript = coord.scale(
            [0, 1], now=10.0, iterations_done=50.0, iteration_seconds=0.1
        )
        order = [record.phase for record in transcript.phases]
        assert order == [
            ScalingPhase.DRAIN,
            ScalingPhase.CHECKPOINT,
            ScalingPhase.RECONFIGURE,
            ScalingPhase.RESTORE,
            ScalingPhase.RESUME,
        ]
        times = [record.start for record in transcript.phases]
        assert times == sorted(times)

    def test_progress_carried_through_checkpoint(self):
        coord = coordinator()
        coord.launch([0], now=0.0)
        coord.scale([0, 1], now=10.0, iterations_done=123.0, iteration_seconds=0.1)
        assert coord.iterations_done == 123.0
        assert coord.store.latest("job-1").iterations_done == 123.0

    def test_scale_without_launch_rejected(self):
        with pytest.raises(SchedulingError):
            coordinator().scale(
                [0], now=0.0, iterations_done=0.0, iteration_seconds=0.1
            )


class TestSuspendAndFinish:
    def test_suspend_releases_everything(self):
        coord = coordinator()
        coord.launch([0, 1], now=0.0)
        transcript = coord.suspend(
            now=10.0, iterations_done=42.0, iteration_seconds=0.05
        )
        assert coord.n_workers == 0
        assert transcript.new_workers == 0
        assert transcript.seconds_in(ScalingPhase.RESTORE) == 0.0
        assert coord.store.has_checkpoint("job-1")

    def test_relaunch_restores_from_checkpoint(self):
        coord = coordinator()
        coord.launch([0], now=0.0)
        coord.suspend(now=10.0, iterations_done=42.0, iteration_seconds=0.05)
        transcript = coord.launch([2, 3], now=100.0)
        assert transcript.seconds_in(ScalingPhase.RESTORE) > 0.0
        assert coord.iterations_done == 42.0

    def test_finish_reclaims_checkpoints(self):
        coord = coordinator()
        coord.launch([0], now=0.0)
        coord.scale([0, 1], now=5.0, iterations_done=10.0, iteration_seconds=0.05)
        coord.finish()
        assert coord.n_workers == 0
        assert not coord.store.has_checkpoint("job-1")


class TestAgreementWithClosedForm:
    def test_transcript_close_to_elastic_executor(self):
        """The simulator's closed-form overhead tracks the detailed protocol."""
        executor = ElasticExecutor()
        curve = ThroughputModel().curve("resnet50", 256)
        for old, new in [(1, 8), (8, 1), (4, 8), (8, 4)]:
            coord = coordinator()
            coord.launch(list(range(old)), now=0.0)
            transcript = coord.scale(
                list(range(new)),
                now=100.0,
                iterations_done=10.0,
                iteration_seconds=curve.iteration_seconds(old),
            )
            closed_form = executor.scaling_overhead(MODEL, old, new)
            # The transcript adds the drain (sub-second) and counts only
            # joining workers; both stay within a small factor.
            assert transcript.total_seconds == pytest.approx(
                closed_form, rel=0.5
            )
