"""Tests for the lightweight experiment drivers (no simulation needed)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    fig2a_scaling_curves,
    fig2b_placement_throughput,
    fig3_edf_example,
    fig4_admission_example,
    fig12a_profiling_overheads,
    fig12b_scaling_overheads,
    format_series,
    format_table,
    table1_models,
)
from repro.experiments.fig12_overheads import SCALING_CASES


class TestTable1:
    def test_six_models_grouped_by_task(self):
        rows = table1_models()
        assert len(rows) == 6
        tasks = [row.task for row in rows]
        # Grouped: cv rows first, then nlp, then speech.
        assert tasks == sorted(tasks, key={"cv": 0, "nlp": 1, "speech": 2}.get)

    def test_batch_sizes_sorted(self):
        for row in table1_models():
            assert list(row.batch_sizes) == sorted(row.batch_sizes)


class TestFig2:
    def test_fig2a_covers_all_models(self):
        series = fig2a_scaling_curves()
        assert {s.model for s in series} == {
            "resnet50", "vgg16", "inceptionv3", "bert", "gpt2", "deepspeech2"
        }
        for line in series:
            assert line.speedups[0] == pytest.approx(1.0)

    def test_fig2b_normalised_to_scattered(self):
        series = fig2b_placement_throughput()
        for line in series:
            assert line.speedups[-1] == pytest.approx(1.0)
            assert line.speedups[0] > 1.5  # compact placement clearly wins

    def test_fig2b_resnet_anchor(self):
        series = {s.model: s for s in fig2b_placement_throughput()}
        assert series["resnet50"].speedups[0] == pytest.approx(2.17, abs=0.15)


class TestFig3:
    def test_edf_violates_b(self):
        outcome = fig3_edf_example()
        assert outcome["edf"].deadlines_met == 1
        assert not outcome["edf"].b_met

    def test_one_worker_each_succeeds(self):
        outcome = fig3_edf_example()
        assert outcome["one_worker_each"].deadlines_met == 2

    def test_elasticflow_finds_the_schedule(self):
        assert fig3_edf_example()["elasticflow_admits_both"]


class TestFig4:
    def test_paper_numbers(self):
        result = fig4_admission_example()
        assert result.plan[:2] == (1, 4)
        assert result.gpu_time_alone == 4.0
        assert result.gpu_time_contended == 5.0


class TestFig12:
    def test_profiling_rows(self):
        rows = fig12a_profiling_overheads()
        assert len(rows) == 6
        for row in rows:
            assert row.overhead_minutes > 0
            assert row.configurations_profiled >= len(row.batch_sizes) * 2

    def test_scaling_rows_cover_all_cases(self):
        rows = fig12b_scaling_overheads()
        labels = {label for _, _, label in SCALING_CASES}
        for row in rows:
            assert set(row.seconds_by_case) == labels
            assert all(v > 0 for v in row.seconds_by_case.values())


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "y")])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.500" in lines[2]

    def test_format_table_title(self):
        text = format_table(["a"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_table_mismatched_row_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [(1,)])

    def test_format_series(self):
        text = format_series("y", [1, 2], [3.0, 4.0], x_label="x")
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert lines[1].startswith("y")

    def test_format_series_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_series("y", [1], [1, 2])

    def test_format_table_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
