"""Tests for the seed-spawn scheme (and the old seed-arithmetic collision)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.harness import ExperimentConfig
from repro.experiments.harness import testbed_workload as build_testbed
from repro.parallel.seeds import spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(0, "trace") == spawn_seed(0, "trace")

    def test_distinct_streams_per_label(self):
        assert spawn_seed(0, "trace") != spawn_seed(0, "jobs")

    def test_distinct_across_masters(self):
        seeds = {spawn_seed(master, "trace") for master in range(200)}
        assert len(seeds) == 200

    def test_path_labels_compose(self):
        assert spawn_seed(0, "fig8b", 0, "trace") != spawn_seed(0, "fig8b", 1, "trace")
        assert spawn_seed(0, "fig8b", 0, "trace") != spawn_seed(0, "trace")

    def test_range_is_63_bit(self):
        for master in range(50):
            value = spawn_seed(master, "jobs")
            assert 0 <= value < 2**63

    def test_requires_labels(self):
        with pytest.raises(ConfigurationError):
            spawn_seed(0)

    def test_no_adjacent_sweep_collision(self):
        """Regression: ``seed + 1`` aliased the jobs stream of master ``s``
        with the trace stream of master ``s + 1``; spawned streams must
        never collide across adjacent (or any nearby) masters."""
        for master in range(100):
            jobs = spawn_seed(master, "testbed", "jobs")
            for other in range(master - 3, master + 4):
                assert jobs != spawn_seed(other, "testbed", "trace")

    def test_path_is_positional(self):
        assert spawn_seed(0, "a", "b") != spawn_seed(0, "b", "a")


class TestWorkloadSeedDerivation:
    def test_adjacent_seeds_give_unrelated_workloads(self):
        """Adjacent master seeds must produce genuinely different workloads
        (the old scheme made seed s's model assignment reuse seed s-1's
        trace stream)."""
        specs = {}
        for seed in (0, 1, 2):
            config = ExperimentConfig(seed=seed)
            _, jobs = build_testbed(config, cluster_gpus=16, n_jobs=10)
            specs[seed] = tuple(
                (spec.model_name, spec.submit_time, spec.deadline) for spec in jobs
            )
        assert specs[0] != specs[1]
        assert specs[1] != specs[2]

    def test_same_master_is_reproducible(self):
        runs = []
        for _ in range(2):
            config = ExperimentConfig(seed=7)
            _, jobs = build_testbed(config, cluster_gpus=16, n_jobs=10)
            runs.append(
                tuple((s.job_id, s.model_name, s.submit_time, s.deadline) for s in jobs)
            )
        assert runs[0] == runs[1]
