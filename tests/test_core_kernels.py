"""Tests for the optional compiled ladder kernel and the batch seam.

The kernel is a zero-hard-dependency accelerator: without numba installed
(this repo's CI image) every test here still runs, exercising the python
reference against the numpy two-pass path — the bit-identity contract the
module docstring argues must hold in all configurations.
"""

import numpy as np

from repro.core.batch import WarmRowBatch
from repro.core.kernels import (
    _ladder_rows_py,
    compiled_kernels_disabled,
    kernels_available,
    kernels_enabled,
    ladder_rows,
    set_kernels_enabled,
)


def random_bucket(rng, n_rows, width):
    lengths = rng.integers(1, width + 1, size=n_rows)
    padded = np.zeros((n_rows, width), dtype=np.float64)
    for i in range(n_rows):
        padded[i, : lengths[i]] = rng.uniform(0.1, 600.0, size=lengths[i])
    thr_hint = rng.uniform(0.5, 8.0, size=n_rows)
    thr_below = rng.uniform(0.0, 8.0, size=n_rows)
    return padded, thr_hint, thr_below, lengths.astype(np.int64)


def numpy_reference(padded, thr_hint, thr_below, lengths):
    """The two-pass cumsum path exactly as WarmRowBatch writes it."""
    hint_rows = np.cumsum(thr_hint[:, None] * padded, axis=1)
    below_rows = np.cumsum(thr_below[:, None] * padded, axis=1)
    ends = below_rows[np.arange(padded.shape[0]), lengths - 1]
    return hint_rows, ends


class TestLadderRows:
    def test_python_reference_matches_numpy_bit_for_bit(self):
        rng = np.random.default_rng(7)
        for width in (1, 4, 16, 64):
            padded, thr_hint, thr_below, lengths = random_bucket(rng, 23, width)
            expect_rows, expect_ends = numpy_reference(
                padded, thr_hint, thr_below, lengths
            )
            hint_rows = np.empty_like(padded)
            ends = np.empty(padded.shape[0])
            _ladder_rows_py(padded, thr_hint, thr_below, lengths, hint_rows, ends)
            assert np.array_equal(hint_rows, expect_rows)  # exact, not approx
            assert np.array_equal(ends, expect_ends)

    def test_ladder_rows_matches_numpy_in_every_mode(self):
        rng = np.random.default_rng(11)
        padded, thr_hint, thr_below, lengths = random_bucket(rng, 17, 32)
        expect_rows, expect_ends = numpy_reference(
            padded, thr_hint, thr_below, lengths
        )
        for enabled in (True, False):
            previous = set_kernels_enabled(enabled)
            try:
                rows, ends = ladder_rows(padded, thr_hint, thr_below, lengths)
            finally:
                set_kernels_enabled(previous)
            assert np.array_equal(rows, expect_rows)
            assert np.array_equal(ends, expect_ends)


class TestToggles:
    def test_set_kernels_enabled_returns_previous(self):
        previous = set_kernels_enabled(False)
        try:
            assert not kernels_enabled()
            assert set_kernels_enabled(True) is False
            # Enabled only when numba is actually importable.
            assert kernels_enabled() == kernels_available()
        finally:
            set_kernels_enabled(previous)

    def test_context_manager_restores_state(self):
        previous = set_kernels_enabled(True)
        try:
            with compiled_kernels_disabled():
                assert not kernels_enabled()
            assert kernels_enabled() == kernels_available()
        finally:
            set_kernels_enabled(previous)


class TestSolvePending:
    def add_rows(self, batch, rng, count):
        handles = []
        for _ in range(count):
            length = int(rng.integers(1, 24))
            weights = rng.uniform(0.1, 600.0, size=length)
            handles.append(
                batch.add(weights, float(rng.uniform(0.5, 8.0)), float(rng.uniform(0.0, 8.0)))
            )
        return handles

    def test_incremental_solves_match_one_shot(self):
        """Splitting adds across solves yields the all-at-once rows exactly."""
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        incremental = WarmRowBatch()
        oneshot = WarmRowBatch()
        # Mixed chunk sizes straddle SMALL_BATCH on both sides.
        for chunk in (3, 12, 1, 9):
            self.add_rows(incremental, rng_a, chunk)
            incremental.solve_pending()
        self.add_rows(oneshot, rng_b, 3 + 12 + 1 + 9)
        oneshot.solve()
        assert len(incremental) == len(oneshot)
        for handle in range(len(oneshot)):
            assert np.array_equal(
                incremental.hint_row(handle), oneshot.hint_row(handle)
            )
            assert incremental.below_total(handle) == oneshot.below_total(handle)

    def test_solve_is_idempotent(self):
        rng = np.random.default_rng(3)
        batch = WarmRowBatch()
        handles = self.add_rows(batch, rng, 10)
        batch.solve()
        rows = [batch.hint_row(h).copy() for h in handles]
        batch.solve()  # nothing pending: a no-op
        for handle, row in zip(handles, rows):
            assert np.array_equal(batch.hint_row(handle), row)
