"""Property tests for the engine with scaling overheads enabled.

Physical sanity bounds that must hold whatever the policy does: no job
finishes faster than its peak-throughput lower bound, attained service
never exceeds the time-capacity product, and overheads only ever delay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_policy
from repro.cluster import ClusterSpec
from repro.core import JobSpec
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator

MODEL = ThroughputModel()
CLUSTER = ClusterSpec(n_nodes=2, gpus_per_node=8)


def build_workload(seed: int, n_jobs: int) -> list[JobSpec]:
    rng = np.random.default_rng(seed)
    pool = [("resnet50", 128), ("bert", 64), ("vgg16", 64)]
    specs = []
    for i in range(n_jobs):
        name, batch = pool[int(rng.integers(len(pool)))]
        one = MODEL.curve(name, batch).throughput(1)
        seconds = float(rng.uniform(900, 3600))
        submit = float(rng.uniform(0, 1800))
        lam = float(rng.uniform(0.6, 1.4))
        specs.append(
            JobSpec(
                job_id=f"j{i}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + lam * seconds,
                requested_gpus=int(2 ** rng.integers(0, 3)),
            )
        )
    return specs


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    policy_name=st.sampled_from(["elasticflow", "edf", "tiresias"]),
)
def test_physical_bounds_hold_under_overheads(seed, policy_name):
    specs = build_workload(seed, n_jobs=8)
    sim = Simulator(
        CLUSTER,
        make_policy(policy_name),
        specs,
        throughput=MODEL,
        executor=ElasticExecutor(),
    )
    result = sim.run()
    for spec in specs:
        outcome = result.outcome_of(spec.job_id)
        if outcome.completion_time is None:
            continue
        curve = MODEL.curve(spec.model_name, spec.global_batch_size)
        peak = max(
            curve.throughput(size) for size in curve.allowed_sizes(16)
        )
        lower_bound = spec.max_iterations / peak
        elapsed = outcome.completion_time - spec.submit_time
        # No job can beat its peak-throughput runtime.
        assert elapsed >= lower_bound - 1e-6, spec.job_id
        # Attained service is bounded by elapsed x cluster size.
        job = sim.jobs[spec.job_id]
        assert job.gpu_seconds <= elapsed * CLUSTER.total_gpus + 1e-6


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_overheads_never_speed_anything_up(seed):
    """Per-job completion with overheads is >= completion without."""
    specs = build_workload(seed, n_jobs=6)

    def run(executor):
        return Simulator(
            CLUSTER,
            make_policy("gandiva"),  # deterministic FIFO sizes
            specs,
            throughput=MODEL,
            executor=executor,
        ).run()

    free = run(ElasticExecutor.disabled())
    charged = run(ElasticExecutor())
    for spec in specs:
        a = free.outcome_of(spec.job_id).completion_time
        b = charged.outcome_of(spec.job_id).completion_time
        assert a is not None and b is not None
        assert b >= a - 1e-6, spec.job_id


def test_stall_time_accounted_not_lost():
    """A single job's completion delay equals its accumulated stalls."""
    spec = build_workload(0, n_jobs=1)[0]
    executor = ElasticExecutor()
    sim = Simulator(
        CLUSTER,
        make_policy("gandiva"),
        [spec],
        throughput=MODEL,
        executor=executor,
    )
    result = sim.run()
    job = sim.jobs[spec.job_id]
    curve = MODEL.curve(spec.model_name, spec.global_batch_size)
    size = min(spec.requested_gpus, curve.max_useful_gpus(16))
    pure_runtime = spec.max_iterations / curve.effective_throughput(size)
    elapsed = result.outcome_of(spec.job_id).completion_time - spec.submit_time
    stall = elapsed - pure_runtime
    # Exactly one cold-start launch: base + restore + per-worker terms.
    profile = curve.model
    expected = executor.scaling_overhead(profile, 0, size)
    assert stall == pytest.approx(expected, rel=1e-6, abs=1e-3)
