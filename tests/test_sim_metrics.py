"""Tests for the evaluation metrics."""

import math

import pytest

from repro.core import Job, JobSpec, JobStatus
from repro.errors import ConfigurationError
from repro.sim import JobOutcome, SimulationResult


def outcome(
    job_id="a",
    deadline=100.0,
    best_effort=False,
    status=JobStatus.COMPLETED,
    completion=50.0,
    submit=0.0,
    admitted=True,
):
    return JobOutcome(
        job_id=job_id,
        model_name="resnet50",
        submit_time=submit,
        deadline=math.inf if best_effort else deadline,
        best_effort=best_effort,
        status=status,
        admitted=admitted,
        completion_time=completion,
        scale_events=0,
    )


class TestJobOutcome:
    def test_from_job(self):
        job = Job(
            spec=JobSpec(
                job_id="x",
                model_name="bert",
                global_batch_size=64,
                max_iterations=10,
                submit_time=5.0,
                deadline=100.0,
            )
        )
        job.mark_admitted(5.0)
        job.mark_completed(42.0)
        result = JobOutcome.from_job(job)
        assert result.met_deadline
        assert result.jct == 37.0
        assert result.admitted

    def test_unfinished_job(self):
        assert not outcome(completion=None).met_deadline
        assert outcome(completion=None).jct is None

    def test_late_completion(self):
        late = outcome(deadline=10.0, completion=20.0)
        assert not late.met_deadline
        assert late.jct == 20.0


class TestSimulationResult:
    def build(self, outcomes):
        return SimulationResult(policy_name="test", outcomes=outcomes, total_gpus=8)

    def test_dsr_counts_dropped_jobs(self):
        outcomes = [
            outcome("a", completion=50.0),
            outcome("b", status=JobStatus.DROPPED, completion=None, admitted=False),
            outcome("c", deadline=10.0, completion=20.0),
            outcome("d", completion=90.0),
        ]
        result = self.build(outcomes)
        assert result.deadline_satisfactory_ratio == pytest.approx(0.5)
        assert result.deadlines_met == 2
        assert result.dropped_count == 1

    def test_dsr_excludes_best_effort(self):
        outcomes = [
            outcome("a", completion=50.0),
            outcome("be", best_effort=True, completion=1e9),
        ]
        assert self.build(outcomes).deadline_satisfactory_ratio == 1.0

    def test_dsr_nan_without_slo_jobs(self):
        result = self.build([outcome("be", best_effort=True)])
        assert math.isnan(result.deadline_satisfactory_ratio)

    def test_makespan(self):
        outcomes = [
            outcome("a", submit=10.0, completion=50.0),
            outcome("b", submit=0.0, completion=200.0),
        ]
        assert self.build(outcomes).makespan == 200.0

    def test_average_jct(self):
        outcomes = [
            outcome("a", submit=0.0, completion=10.0),
            outcome("b", submit=0.0, completion=30.0),
            outcome("c", completion=None, status=JobStatus.DROPPED, admitted=False),
        ]
        assert self.build(outcomes).average_jct() == pytest.approx(20.0)

    def test_average_jct_best_effort_only(self):
        outcomes = [
            outcome("a", submit=0.0, completion=10.0),
            outcome("be", best_effort=True, submit=0.0, completion=100.0),
        ]
        result = self.build(outcomes)
        assert result.average_jct(best_effort_only=True) == pytest.approx(100.0)

    def test_average_jct_empty_is_nan(self):
        result = self.build([outcome("a", completion=None, status=JobStatus.DROPPED, admitted=False)])
        assert math.isnan(result.average_jct())

    def test_outcome_lookup(self):
        result = self.build([outcome("a")])
        assert result.outcome_of("a").job_id == "a"
        with pytest.raises(ConfigurationError):
            result.outcome_of("ghost")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            self.build([outcome("a"), outcome("a")])

    def test_summary_keys(self):
        summary = self.build([outcome("a")]).summary()
        assert {"jobs", "dsr", "admitted", "dropped", "makespan_h"} <= set(summary)
