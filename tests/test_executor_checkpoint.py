"""Tests for the versioned checkpoint store."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.executor import CheckpointStore


@pytest.fixture()
def store() -> CheckpointStore:
    return CheckpointStore(keep_versions=2)


class TestSaveLoad:
    def test_versions_increase(self, store):
        first = store.save("job", nbytes=1e9, iterations_done=100.0, now=10.0)
        second = store.save("job", nbytes=1e9, iterations_done=200.0, now=20.0)
        assert (first.version, second.version) == (1, 2)

    def test_latest_returns_newest(self, store):
        store.save("job", nbytes=1e9, iterations_done=100.0, now=10.0)
        store.save("job", nbytes=1e9, iterations_done=200.0, now=20.0)
        assert store.latest("job").iterations_done == 200.0

    def test_missing_checkpoint_raises(self, store):
        with pytest.raises(SchedulingError):
            store.latest("ghost")
        assert not store.has_checkpoint("ghost")

    def test_lineages_are_per_job(self, store):
        store.save("a", nbytes=1e9, iterations_done=1.0, now=1.0)
        store.save("b", nbytes=1e9, iterations_done=2.0, now=1.0)
        assert store.latest("a").iterations_done == 1.0
        assert store.latest("b").iterations_done == 2.0


class TestRetention:
    def test_old_versions_pruned(self, store):
        for i in range(5):
            store.save("job", nbytes=1e9, iterations_done=float(i), now=float(i))
        assert store.versions_of("job") == [4, 5]

    def test_total_bytes_bounded_by_retention(self, store):
        for i in range(10):
            store.save("job", nbytes=1e9, iterations_done=float(i), now=float(i))
        assert store.total_bytes == pytest.approx(2e9)

    def test_forget_reclaims(self, store):
        store.save("job", nbytes=1e9, iterations_done=1.0, now=1.0)
        store.forget("job")
        assert store.total_bytes == 0.0
        assert not store.has_checkpoint("job")


class TestInvariants:
    def test_progress_never_regresses(self, store):
        store.save("job", nbytes=1e9, iterations_done=500.0, now=1.0)
        with pytest.raises(SchedulingError, match="lose progress"):
            store.save("job", nbytes=1e9, iterations_done=400.0, now=2.0)

    def test_invalid_checkpoint_rejected(self, store):
        with pytest.raises(ConfigurationError):
            store.save("job", nbytes=0.0, iterations_done=1.0, now=1.0)
        with pytest.raises(ConfigurationError):
            store.save("job", nbytes=1e9, iterations_done=-1.0, now=1.0)

    def test_invalid_retention_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckpointStore(keep_versions=0)
