"""Unit and property tests for the ring all-reduce communication model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.profiles import InterconnectSpec, LinkSpec, ring_allreduce_seconds

INTERCONNECT = InterconnectSpec()


class TestLinkSpec:
    def test_transfer_seconds(self):
        link = LinkSpec(alpha_s=1e-6, beta_bytes_per_s=1e9)
        assert link.transfer_seconds(1e9) == pytest.approx(1.0 + 1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(alpha_s=-1.0, beta_bytes_per_s=1e9)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(alpha_s=0.0, beta_bytes_per_s=0.0)

    def test_negative_bytes_rejected(self):
        link = LinkSpec(alpha_s=0.0, beta_bytes_per_s=1e9)
        with pytest.raises(ConfigurationError):
            link.transfer_seconds(-1)


class TestInterconnectSpec:
    def test_inter_node_bandwidth_scales_with_gpus(self):
        one = INTERCONNECT.inter_node_bandwidth(1)
        four = INTERCONNECT.inter_node_bandwidth(4)
        eight = INTERCONNECT.inter_node_bandwidth(8)
        assert four == pytest.approx(4 * one)
        assert eight == pytest.approx(8 * one)

    def test_inter_node_bandwidth_caps_at_hca_count(self):
        spec = InterconnectSpec(gpus_per_node=16, hcas_per_node=8)
        assert spec.inter_node_bandwidth(16) == spec.inter_node_bandwidth(8)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            InterconnectSpec(gpus_per_node=0)
        with pytest.raises(ConfigurationError):
            INTERCONNECT.inter_node_bandwidth(0)


class TestRingAllreduce:
    def test_single_gpu_is_free(self):
        assert ring_allreduce_seconds(1e9, 1, 1, INTERCONNECT) == 0.0

    def test_intra_node_faster_than_inter_node(self):
        intra = ring_allreduce_seconds(4e8, 8, 1, INTERCONNECT)
        inter = ring_allreduce_seconds(4e8, 8, 8, INTERCONNECT)
        assert intra < inter

    def test_fewer_nodes_is_faster_for_same_gpus(self):
        times = [
            ring_allreduce_seconds(4e8, 8, nodes, INTERCONNECT) for nodes in (2, 4, 8)
        ]
        assert times == sorted(times)

    def test_too_many_gpus_for_one_node_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_seconds(4e8, 16, 1, INTERCONNECT)

    def test_more_nodes_than_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_seconds(4e8, 2, 4, INTERCONNECT)

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_seconds(4e8, 0, 1, INTERCONNECT)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_allreduce_seconds(-1.0, 2, 1, INTERCONNECT)

    @settings(max_examples=50)
    @given(
        grad=st.floats(min_value=1e6, max_value=1e10),
        log_n=st.integers(min_value=1, max_value=3),
    )
    def test_intra_node_cost_grows_with_gradient_and_workers(self, grad, log_n):
        n = 2**log_n
        smaller = ring_allreduce_seconds(grad, n, 1, INTERCONNECT)
        bigger_grad = ring_allreduce_seconds(2 * grad, n, 1, INTERCONNECT)
        assert bigger_grad > smaller
        if n < 8:
            more_workers = ring_allreduce_seconds(grad, 2 * n, 1, INTERCONNECT)
            assert more_workers > smaller

    @settings(max_examples=50)
    @given(
        grad=st.floats(min_value=1e6, max_value=1e10),
        log_nodes=st.integers(min_value=1, max_value=4),
    )
    def test_compact_multi_node_beats_scattered(self, grad, log_nodes):
        """A job using whole nodes beats the same GPU count spread out."""
        nodes = 2**log_nodes
        n_gpus = 8 * nodes
        compact = ring_allreduce_seconds(grad, n_gpus, nodes, INTERCONNECT)
        scattered = ring_allreduce_seconds(grad, n_gpus, n_gpus, INTERCONNECT)
        assert compact <= scattered
