"""Fixture-driven tests for every static-analysis rule.

Each rule in :mod:`repro.analysis` has a positive fixture (exactly one
violation, its line marked ``# <- finding``) and a negative fixture (the
sanctioned spelling of the same code) under ``tests/analysis_fixtures/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, run_analysis

FIXTURE_DIR = Path(__file__).parent / "analysis_fixtures"

#: Every rule the analyser ships, lowercased to match fixture file names.
RULE_IDS = [
    "det001",
    "det002",
    "cc001",
    "cc002",
    "cc003",
    "cc004",
    "cc005",
    "nh001",
    "nh002",
    "sim001",
    "err001",
    "err002",
    "sup001",
    "par001",
    "ip001",
    "ip002",
    "ip003",
    "ip004",
    "ip005",
]

#: Line marker used by positive fixtures.  SUP001's finding *is* a
#: suppression comment, so appending a marker there would change what the
#: suppression parser sees; its expected line is the disable comment itself.
_MARKERS = {"sup001": "lint: disable"}
_DEFAULT_MARKER = "# <- finding"


def _expected_line(path: Path, rule: str) -> int:
    marker = _MARKERS.get(rule, _DEFAULT_MARKER)
    for index, text in enumerate(path.read_text().splitlines(), start=1):
        if marker in text:
            return index
    raise AssertionError(f"{path.name} has no marker {marker!r}")


def _run(path: Path, tmp_path: Path):
    # A fresh baseline path keeps the run hermetic (nothing baselined).
    # Interprocedural fixtures may span modules: a ``<rule>_dep*.py``
    # companion (e.g. the in-scope sink the positive fixture calls into)
    # is analysed alongside the fixture itself.
    base = path.stem.rsplit("_", 1)[0]
    companions = sorted(FIXTURE_DIR.glob(f"{base}_dep*.py"))
    return run_analysis(
        [path, *companions], baseline_path=tmp_path / "baseline.json"
    )


def test_rule_catalog_matches_fixture_set() -> None:
    assert sorted(rule.rule_id for rule in all_rules()) == sorted(
        rule_id.upper() for rule_id in RULE_IDS
    )


@pytest.mark.parametrize("rule", RULE_IDS)
def test_positive_fixture_yields_exactly_one_finding(
    rule: str, tmp_path: Path
) -> None:
    fixture = FIXTURE_DIR / f"{rule}_pos.py"
    report = _run(fixture, tmp_path)
    assert len(report.findings) == 1, [f.format_human() for f in report.findings]
    finding = report.findings[0]
    assert finding.rule_id == rule.upper()
    assert finding.line == _expected_line(fixture, rule)
    assert finding.path.endswith(f"{rule}_pos.py")
    assert finding.snippet  # the span resolves to real source text
    assert not report.baselined and not report.suppressed


@pytest.mark.parametrize("rule", RULE_IDS)
def test_negative_fixture_is_clean(rule: str, tmp_path: Path) -> None:
    fixture = FIXTURE_DIR / f"{rule}_neg.py"
    report = _run(fixture, tmp_path)
    assert not report.findings, [f.format_human() for f in report.findings]


def test_cc004_is_a_warning_and_does_not_gate(tmp_path: Path) -> None:
    report = _run(FIXTURE_DIR / "cc004_pos.py", tmp_path)
    [finding] = report.findings
    assert finding.severity.value == "warning"
    assert report.ok  # warnings are reported but do not fail the run


def test_justified_suppression_is_recorded_not_silent(tmp_path: Path) -> None:
    report = _run(FIXTURE_DIR / "sup001_neg.py", tmp_path)
    assert not report.findings
    assert [f.rule_id for f in report.suppressed] == ["NH001"]


def test_removing_invalidates_hook_fails_cache_coherence(tmp_path: Path) -> None:
    """Acceptance check: drop the invalidation call from a real mutator.

    ``OnlineThroughputModel.observe`` mutates the coherent ``_corrections``
    field and discharges its obligation by calling
    ``invalidate_planning_tables(...)``.  Deleting that call must trip
    CC001 when the analyser sees the mutated copy next to the provider
    declarations in ``repro.perf.tables``.
    """
    src = Path(__file__).parent.parent / "src" / "repro"
    online = (src / "profiles" / "online.py").read_text()
    mutated = "\n".join(
        line
        for line in online.splitlines()
        if not line.strip().startswith("invalidate_planning_tables(")
    )
    assert mutated != online  # the hook call was present and got removed
    broken = tmp_path / "online_broken.py"
    broken.write_text("# lint-module: repro.profiles.online\n" + mutated)
    tables = tmp_path / "tables_copy.py"
    tables.write_text(
        "# lint-module: repro.perf.tables\n" + (src / "perf" / "tables.py").read_text()
    )
    report = run_analysis(
        [broken, tables], baseline_path=tmp_path / "baseline.json"
    )
    cc001 = [f for f in report.findings if f.rule_id == "CC001"]
    assert cc001, [f.format_human() for f in report.findings]
    assert any("observe" in f.message for f in cc001)
    assert not report.ok
