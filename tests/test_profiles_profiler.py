"""Tests for the pre-run profiling simulation (Fig 12a substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.profiles import PreRunProfiler, ThroughputModel


@pytest.fixture(scope="module")
def profiler() -> PreRunProfiler:
    return PreRunProfiler(ThroughputModel())


class TestPreRunProfiler:
    def test_profiles_every_batch_size(self, profiler):
        report = profiler.profile("resnet50", [64, 128])
        batches = {point.global_batch for point in report.points}
        assert batches == {64, 128}

    def test_overhead_positive_and_accumulates(self, profiler):
        one = profiler.profile("resnet50", [64]).total_overhead_seconds
        two = profiler.profile("resnet50", [64, 128]).total_overhead_seconds
        assert 0 < one < two

    def test_early_exit_on_throughput_plateau(self, profiler):
        """Profiling stops one step past the peak GPU count."""
        report = profiler.profile("inceptionv3", [64])
        sizes = sorted(point.n_gpus for point in report.points)
        curve = ThroughputModel().curve("inceptionv3", 64)
        peak = curve.max_useful_gpus(128)
        assert max(sizes) == 2 * peak

    def test_gpu_counts_are_doubling(self, profiler):
        report = profiler.profile("bert", [64])
        sizes = sorted(point.n_gpus for point in report.points)
        assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))

    def test_best_size_matches_curve_peak(self, profiler):
        report = profiler.profile("vgg16", [128])
        curve = ThroughputModel().curve("vgg16", 128)
        assert report.best_size(128) == curve.max_useful_gpus(128)

    def test_best_size_unprofiled_batch_raises(self, profiler):
        report = profiler.profile("vgg16", [128])
        with pytest.raises(ConfigurationError):
            report.best_size(999)

    def test_empty_batches_rejected(self, profiler):
        with pytest.raises(ConfigurationError):
            profiler.profile("vgg16", [])

    def test_heavier_models_cost_more_to_profile(self, profiler):
        """Per-iteration time drives overhead, so slow models profile slower."""
        fast = profiler.profile("resnet50", [64]).total_overhead_seconds
        slow = profiler.profile("deepspeech2", [64]).total_overhead_seconds
        assert slow > fast

    def test_invalid_constructor_args_rejected(self):
        with pytest.raises(ConfigurationError):
            PreRunProfiler(ThroughputModel(), measure_iterations=0)
        with pytest.raises(ConfigurationError):
            PreRunProfiler(ThroughputModel(), setup_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            PreRunProfiler(ThroughputModel(), max_gpus=0)
