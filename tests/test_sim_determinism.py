"""Determinism and progress-conservation tests for the engine.

The simulator must be a pure function of (workload, policy, seed): two runs
with identical inputs produce byte-identical outcomes, and work is
conserved — a completed job accrued exactly its termination condition.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import POLICY_NAMES, make_policy
from repro.cluster import ClusterSpec
from repro.core import JobSpec, JobStatus
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator

MODEL = ThroughputModel()


def workload(seed: int, n_jobs: int = 12) -> list[JobSpec]:
    rng = np.random.default_rng(seed)
    pool = [("resnet50", 128), ("vgg16", 64), ("bert", 64)]
    specs = []
    for i in range(n_jobs):
        name, batch = pool[int(rng.integers(len(pool)))]
        one = MODEL.curve(name, batch).throughput(1)
        seconds = float(rng.uniform(600, 3600))
        submit = float(rng.uniform(0, 1800))
        lam = float(rng.uniform(0.5, 1.5))
        specs.append(
            JobSpec(
                job_id=f"j{i}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + lam * seconds,
                requested_gpus=int(2 ** rng.integers(0, 3)),
            )
        )
    return specs


def run(policy_name: str, specs, **kwargs):
    return Simulator(
        ClusterSpec(2, 8),
        make_policy(policy_name),
        specs,
        throughput=MODEL,
        executor=ElasticExecutor.disabled(),
        **kwargs,
    ).run()


def fingerprint(result):
    return tuple(
        (o.job_id, o.status.value, o.admitted, o.completion_time, o.scale_events)
        for o in sorted(result.outcomes, key=lambda o: o.job_id)
    )


class TestDeterminism:
    @pytest.mark.parametrize("policy_name", POLICY_NAMES)
    def test_identical_runs_identical_outcomes(self, policy_name):
        specs = workload(17)
        first = run(policy_name, specs)
        second = run(policy_name, specs)
        assert fingerprint(first) == fingerprint(second)

    def test_timelines_identical_too(self):
        specs = workload(3)
        first = run("elasticflow", specs)
        second = run("elasticflow", specs)
        assert [
            (s.time, s.gpus_in_use, s.running_jobs) for s in first.timeline.samples
        ] == [
            (s.time, s.gpus_in_use, s.running_jobs) for s in second.timeline.samples
        ]


class TestConservation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_completed_jobs_did_exactly_their_work(self, seed):
        specs = workload(seed, n_jobs=8)
        sim = Simulator(
            ClusterSpec(2, 8),
            make_policy("elasticflow"),
            specs,
            throughput=MODEL,
            executor=ElasticExecutor.disabled(),
        )
        result = sim.run()
        for job in sim.jobs.values():
            if job.status is JobStatus.COMPLETED:
                assert job.iterations_done == pytest.approx(
                    job.spec.max_iterations
                )
            elif job.status is JobStatus.DROPPED:
                assert job.iterations_done == 0.0
        # Attained service is positive exactly for jobs that ever ran.
        for job in sim.jobs.values():
            if job.status is JobStatus.COMPLETED:
                assert job.gpu_seconds > 0.0

    def test_completion_respects_throughput(self):
        """A lone job's completion time matches work / throughput."""
        one = MODEL.curve("resnet50", 128).throughput(1)
        iters = int(one * 600)
        spec = JobSpec(
            job_id="solo",
            model_name="resnet50",
            global_batch_size=128,
            max_iterations=iters,
            submit_time=0.0,
            deadline=86400.0,
        )
        result = run("gandiva", [spec])  # fixed 1-GPU allocation
        expected = iters / one
        assert result.outcome_of("solo").completion_time == pytest.approx(
            expected, rel=1e-6
        )
