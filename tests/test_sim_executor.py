"""Tests for the elastic executor overhead model (Fig 12b substrate)."""

import pytest

from repro.errors import ConfigurationError
from repro.profiles import get_model
from repro.sim import ElasticExecutor


@pytest.fixture(scope="module")
def executor() -> ElasticExecutor:
    return ElasticExecutor()


class TestScalingOverhead:
    def test_positive_for_any_change(self, executor):
        model = get_model("resnet50")
        for old, new in [(1, 8), (8, 1), (4, 8), (8, 4), (0, 8), (8, 0)]:
            assert executor.scaling_overhead(model, old, new) > 0

    def test_noop_transition_is_free(self, executor):
        assert executor.scaling_overhead(get_model("resnet50"), 0, 0) == 0.0

    def test_bigger_models_checkpoint_slower(self, executor):
        small = executor.scaling_overhead(get_model("resnet50"), 4, 8)
        big = executor.scaling_overhead(get_model("vgg16"), 4, 8)
        assert big > small

    def test_cases_are_similar_in_magnitude(self, executor):
        """Fig 12b: the five transition cases have comparable overheads."""
        model = get_model("bert")
        cases = [
            executor.scaling_overhead(model, 1, 8),
            executor.scaling_overhead(model, 8, 1),
            executor.scaling_overhead(model, 4, 8),
            executor.scaling_overhead(model, 8, 4),
            executor.migration_overhead(model, 8),
        ]
        assert max(cases) < 2 * min(cases)

    def test_suspend_cheaper_than_scale(self, executor):
        """Suspension only checkpoints; scaling checkpoints and restores."""
        model = get_model("gpt2")
        suspend = executor.scaling_overhead(model, 8, 0)
        scale = executor.scaling_overhead(model, 8, 4)
        assert suspend < scale

    def test_overheads_are_tens_of_seconds(self, executor):
        """Sanity: small relative to the ~23-minute scheduling interval."""
        for name in ("resnet50", "vgg16", "bert", "gpt2"):
            overhead = executor.scaling_overhead(get_model(name), 1, 8)
            assert 5.0 < overhead < 120.0

    def test_negative_counts_rejected(self, executor):
        with pytest.raises(ConfigurationError):
            executor.scaling_overhead(get_model("bert"), -1, 4)

    def test_migration_zero_gpus_rejected(self, executor):
        with pytest.raises(ConfigurationError):
            executor.migration_overhead(get_model("bert"), 0)


class TestDisabled:
    def test_disabled_charges_nothing(self):
        executor = ElasticExecutor.disabled()
        assert executor.scaling_overhead(get_model("vgg16"), 1, 64) == 0.0
        assert executor.migration_overhead(get_model("vgg16"), 8) == 0.0

    def test_invalid_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            ElasticExecutor(framework_base_s=-1.0)
        with pytest.raises(ConfigurationError):
            ElasticExecutor(serialization_mb_per_s=0.0)
