"""Tests for the engine-backed multi-seed replication driver."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.multiseed import multiseed_satisfactory_ratios
from repro.parallel.cache import RunCache


class TestMultiseed:
    def test_shape_and_determinism(self):
        kwargs = dict(cluster_gpus=16, n_jobs=8)
        first = multiseed_satisfactory_ratios(
            ["elasticflow", "edf"], [0, 1, 2], **kwargs
        )
        second = multiseed_satisfactory_ratios(
            ["elasticflow", "edf"], [0, 1, 2], **kwargs
        )
        assert set(first) == {"elasticflow", "edf"}
        for name, sweep in first.items():
            assert sweep.n == 3
            assert sweep.values == second[name].values
            assert 0.0 <= sweep.mean <= 1.0

    def test_elasticflow_not_worse_than_edf_on_average(self):
        sweeps = multiseed_satisfactory_ratios(
            ["elasticflow", "edf"], [0, 1, 2], cluster_gpus=16, n_jobs=10
        )
        assert sweeps["elasticflow"].mean >= sweeps["edf"].mean

    def test_incremental_seed_addition_reuses_cache(self, tmp_path):
        cache = RunCache(root=tmp_path / "c")
        multiseed_satisfactory_ratios(
            ["elasticflow"], [0, 1], cluster_gpus=16, n_jobs=8, cache=cache
        )
        stores_before = cache.stats.stores
        sweeps = multiseed_satisfactory_ratios(
            ["elasticflow"], [0, 1, 2], cluster_gpus=16, n_jobs=8, cache=cache
        )
        # Only the new seed's cell executed and was stored.
        assert cache.stats.stores == stores_before + 1
        assert sweeps["elasticflow"].n == 3

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            multiseed_satisfactory_ratios([], [0])
        with pytest.raises(ConfigurationError):
            multiseed_satisfactory_ratios(["edf"], [])
