"""Direct unit tests for Algorithm 2's proposal machinery."""

import math

import numpy as np
import pytest

from repro.core import Ledger
from repro.core.allocation import Upgrade, _propose

from conftest import synthetic_planning_job
from repro.core.slots import SlotGrid

FIG_CURVE = {1: 1.0, 2: 1.5, 4: 2.0}


def grid() -> SlotGrid:
    return SlotGrid(origin=0.0, slot_seconds=1.0, horizon=5)


def seeded_ledger(info, plan):
    ledger = Ledger(4, 5)
    ledger.set_plan(info.job_id, np.asarray(plan, dtype=np.int64))
    return ledger


class TestPropose:
    def test_proposes_next_size_step(self):
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, FIG_CURVE)
        ledger = seeded_ledger(info, [1, 1, 1, 0, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert upgrade is not None
        assert upgrade.plan[0] == 2
        assert upgrade.added_gpus == 1

    def test_no_proposal_at_the_top_size(self):
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, FIG_CURVE)
        ledger = seeded_ledger(info, [4, 0, 0, 0, 0])
        assert _propose(info, ledger, 1.0) is None

    def test_no_proposal_when_throughput_flat(self):
        flat = {1: 1.0, 2: 1.5, 4: 1.5}
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, flat)
        ledger = seeded_ledger(info, [2, 2, 0, 0, 0])
        assert _propose(info, ledger, 1.0) is None  # constraint (7)

    def test_no_proposal_without_slot0_capacity(self):
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, FIG_CURVE)
        ledger = seeded_ledger(info, [1, 1, 1, 0, 0])
        blocker = synthetic_planning_job("b", 1.0, 4.0, grid(), 4, FIG_CURVE)
        ledger.set_plan("b", np.array([3, 0, 0, 0, 0]))
        assert _propose(info, ledger, 1.0) is None

    def test_priority_is_gpu_time_saved_per_gpu(self):
        # Linear curve: upgrading 1 -> 2 halves the runtime; GPU-time equal,
        # so the marginal return is ~zero (neither saved nor wasted).
        linear = {1: 1.0, 2: 2.0, 4: 4.0}
        info = synthetic_planning_job("a", 4.0, 5.0, grid(), 4, linear)
        ledger = seeded_ledger(info, [1, 1, 1, 1, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert upgrade is not None
        assert upgrade.priority == pytest.approx(0.0, abs=1e-9)

    def test_concave_upgrade_has_negative_priority(self):
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, FIG_CURVE)
        ledger = seeded_ledger(info, [1, 1, 1, 0, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert upgrade.priority < 0  # running faster wastes GPU-time

    def test_best_effort_first_gpu_is_infinite_priority(self):
        info = synthetic_planning_job(
            "be", 5.0, math.inf, grid(), 4, FIG_CURVE, best_effort=True
        )
        ledger = seeded_ledger(info, [0, 0, 0, 0, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert upgrade is not None
        assert math.isinf(upgrade.priority)
        assert upgrade.tiebreak == pytest.approx(5.0)  # SRTF key

    def test_degraded_job_uses_best_effort_path(self):
        info = synthetic_planning_job("late", 5.0, 2.0, grid(), 4, FIG_CURVE)
        info.degraded = True
        ledger = seeded_ledger(info, [0, 0, 0, 0, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert upgrade is not None
        assert math.isinf(upgrade.priority)
        assert upgrade.plan[1:].sum() == 0  # leftovers only, slot 0 only

    def test_stale_version_stamped(self):
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, FIG_CURVE)
        ledger = seeded_ledger(info, [1, 1, 1, 0, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert upgrade.ledger_version == ledger.version
        ledger.set_plan("other", np.zeros(5, dtype=np.int64))
        assert upgrade.ledger_version != ledger.version

    def test_upgrade_is_frozen(self):
        info = synthetic_planning_job("a", 3.0, 4.0, grid(), 4, FIG_CURVE)
        ledger = seeded_ledger(info, [1, 1, 1, 0, 0])
        upgrade = _propose(info, ledger, 1.0)
        assert isinstance(upgrade, Upgrade)
        with pytest.raises(AttributeError):
            upgrade.priority = 1.0
