"""Bench for Fig 10 — cluster efficiency under loose deadlines."""

from conftest import run_once

from repro.experiments import fig10_cluster_efficiency, format_series, format_table


def test_fig10_cluster_efficiency(benchmark, config):
    result = run_once(benchmark, fig10_cluster_efficiency, config=config)
    print()
    print("Fig 10: cluster efficiency over time (Eq. 8)")
    for name, values in result.efficiency.items():
        shown = min(len(values), 12)
        print(
            format_series(
                name,
                [round(h, 1) for h in result.hours[name][:shown]],
                [round(v, 3) for v in values[:shown]],
                x_label="hour",
            )
        )
    print()
    print(
        format_table(
            ["Policy", "Mean CE", "Makespan (h)"],
            [
                (name, result.mean_efficiency[name], result.makespan_h[name])
                for name in result.mean_efficiency
            ],
        )
    )
    # Deadlines are loose (lambda = 1.5) so every scheduler ran all jobs.
    assert result.all_jobs_ran_everywhere
    # Paper shape: ElasticFlow posts the best average efficiency and the
    # smallest makespan.
    best_ce = result.mean_efficiency["elasticflow"]
    for name, value in result.mean_efficiency.items():
        assert best_ce >= value - 1e-9, f"{name} more efficient than ElasticFlow"
    # ... and a makespan at least as small as every baseline's, up to the
    # checkpoint/restore stalls its own rescaling pays on the final job
    # (makespan is tail-dominated; a few stalls amount to ~2 %).
    best_makespan = result.makespan_h["elasticflow"]
    for name, value in result.makespan_h.items():
        assert best_makespan <= 1.05 * value, f"{name} finished before ElasticFlow"
