"""Bench: ElasticFlow's online admission versus the clairvoyant oracle.

An extension beyond the paper: on small instances we can compute the
offline-optimal number of guaranteeable deadlines by exhaustive subset
search and measure the price ElasticFlow pays for deciding at arrival time
without knowledge of the future.
"""

import numpy as np

from conftest import run_once

from repro.baselines import make_policy
from repro.cluster import ClusterSpec
from repro.core import JobSpec
from repro.experiments import format_table
from repro.experiments.oracle import clairvoyant_max_admissions
from repro.profiles import ThroughputModel
from repro.sim import ElasticExecutor, Simulator

MODEL = ThroughputModel()


def instance(seed: int, n_jobs: int = 10) -> list[JobSpec]:
    rng = np.random.default_rng(seed)
    pool = [("resnet50", 128), ("bert", 64), ("vgg16", 64)]
    specs = []
    for i in range(n_jobs):
        name, batch = pool[int(rng.integers(len(pool)))]
        one = MODEL.curve(name, batch).throughput(1)
        seconds = float(rng.uniform(1800, 5400))
        lam = float(rng.uniform(0.4, 0.9))
        submit = float(rng.uniform(0, 300))
        specs.append(
            JobSpec(
                job_id=f"j{i}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(one * seconds)),
                submit_time=submit,
                deadline=submit + lam * seconds,
            )
        )
    return specs


def test_online_admission_vs_clairvoyant_oracle(benchmark):
    def run():
        rows = []
        for seed in range(6):
            specs = instance(seed)
            oracle = clairvoyant_max_admissions(specs, 8, MODEL)
            result = Simulator(
                ClusterSpec(1, 8),
                make_policy("elasticflow"),
                specs,
                throughput=MODEL,
                executor=ElasticExecutor.disabled(),
            ).run()
            rows.append(
                (
                    seed,
                    oracle.max_admissions,
                    result.admitted_count,
                    result.deadlines_met,
                    oracle.subsets_checked,
                )
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["Seed", "Oracle admits", "Online admits", "Online met", "Subsets"],
            rows,
            title="Online ElasticFlow vs clairvoyant admission (10 jobs, 8 GPUs)",
        )
    )
    total_oracle = sum(row[1] for row in rows)
    total_online = sum(row[2] for row in rows)
    for seed, oracle_count, online, met, _ in rows:
        assert online <= oracle_count, f"seed {seed}: online beat the oracle?!"
        assert met == online  # the guarantee: everything admitted finished
    # Online admission captures most of the clairvoyant optimum.
    assert total_online >= 0.75 * total_oracle
