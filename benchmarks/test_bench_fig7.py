"""Bench for Fig 7 — GPU allocation and admission over time."""

from conftest import run_once

from repro.experiments import fig7_timelines, format_series


def test_fig7_timelines(benchmark, config):
    series = run_once(benchmark, fig7_timelines, config=config, scale="large")
    print()
    print("Fig 7a: GPUs allocated over time (hours)")
    for name, line in series.items():
        shown = min(len(line.hours), 12)
        print(
            format_series(
                name,
                [round(h, 1) for h in line.hours[:shown]],
                line.gpus_in_use[:shown],
                x_label="hour",
            )
        )
    elastic = series["elasticflow"]
    print()
    print("Fig 7b: ElasticFlow submitted vs admitted jobs")
    shown = min(len(elastic.hours), 12)
    print(
        format_series(
            "submitted", [round(h, 1) for h in elastic.hours[:shown]],
            elastic.submitted[:shown], x_label="hour",
        )
    )
    print(
        format_series(
            "admitted", [round(h, 1) for h in elastic.hours[:shown]],
            elastic.admitted[:shown], x_label="hour",
        )
    )
    # ElasticFlow exploits idle GPUs: its peak allocation tops the
    # non-elastic baselines'.
    peak = {name: max(line.gpus_in_use) for name, line in series.items()}
    assert peak["elasticflow"] >= peak["gandiva"]
    assert peak["elasticflow"] >= peak["tiresias"]
    # Counters are cumulative and admission never exceeds submission.
    assert list(elastic.submitted) == sorted(elastic.submitted)
    assert all(a <= s for a, s in zip(elastic.admitted, elastic.submitted))
    # Some jobs were dropped during the burst (admitted < submitted at end).
    assert elastic.admitted[-1] < elastic.submitted[-1]
