"""Bench for the deadline-tightness sweep (extension beyond the paper)."""

from conftest import run_once

from repro.experiments import format_table, lambda_tightness_sweep


def test_lambda_tightness_sweep(benchmark, config):
    rows = run_once(benchmark, lambda_tightness_sweep, config=config)
    names = list(rows[0].ratios)
    print()
    print(
        format_table(
            ["lambda"] + names,
            [[row.tightness] + [row.ratios[n] for n in names] for row in rows],
            title="DSR vs uniform deadline tightness (lambda x duration)",
        )
    )
    tightest, loosest = rows[0], rows[-1]
    # Structural crossover 1: with lambda < 1 the non-elastic schedulers
    # are capped at (essentially) zero, while elastic ones still deliver.
    assert tightest.ratios["gandiva"] <= 0.05
    assert tightest.ratios["chronus"] <= 0.05
    assert tightest.ratios["elasticflow"] > 0.3
    # Structural crossover 2: with generous slack everyone converges.
    for name in names:
        assert loosest.ratios[name] > 0.8
    # ElasticFlow leads (weakly) at every tightness.
    for row in rows:
        best = row.ratios["elasticflow"]
        for name, value in row.ratios.items():
            assert best >= value - 1e-9, f"{name} at lambda {row.tightness}"
    # DSR is (weakly) monotone in slack for every scheduler.
    for name in names:
        series = [row.ratios[name] for row in rows]
        assert all(a <= b + 0.05 for a, b in zip(series, series[1:])), name
