"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints its
rows/series (visible with ``pytest benchmarks/ --benchmark-only -s``).
Experiment functions are deterministic per seed, so a benchmark run doubles
as a reproduction of the evaluation section.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentConfig


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """One shared configuration so every figure sees the same settings."""
    return ExperimentConfig(seed=0)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark a heavy experiment with a single measured round."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
