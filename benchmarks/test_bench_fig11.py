"""Bench for Fig 11 — mixing SLO and best-effort jobs."""

import math

from conftest import run_once

from repro.experiments import fig11_best_effort_mix, format_table


def test_fig11_best_effort_mix(benchmark, config):
    rows = run_once(benchmark, fig11_best_effort_mix, config=config)
    names = list(rows[0].slo_satisfactory_ratio)
    print()
    print(
        format_table(
            ["BE share"] + names,
            [
                [row.best_effort_fraction]
                + [row.slo_satisfactory_ratio[n] for n in names]
                for row in rows
            ],
            title="Fig 11a: SLO deadline satisfactory ratio",
        )
    )
    print()
    print(
        format_table(
            ["BE share"] + names,
            [
                [row.best_effort_fraction]
                + [row.best_effort_jct_normalized[n] for n in names]
                for row in rows
            ],
            title="Fig 11b: best-effort average JCT (normalised to Gandiva)",
        )
    )
    # Fig 11a shape: ElasticFlow posts the top SLO ratio at every mix.
    for row in rows:
        best = row.slo_satisfactory_ratio["elasticflow"]
        for name, value in row.slo_satisfactory_ratio.items():
            assert best >= value - 0.1, (
                f"{name} clearly beat ElasticFlow at {row.best_effort_fraction}"
            )
    # Fig 11b shape: ElasticFlow's best-effort JCT stays within a small
    # factor of Gandiva's (EDF's explodes).
    for row in rows[1:]:
        value = row.best_effort_jct_normalized["elasticflow"]
        assert not math.isnan(value)
        assert value < 3.0
        assert row.best_effort_jct_normalized["edf"] > value
