"""Benches for Fig 6 — end-to-end deadline satisfactory ratio.

Shape targets (paper Section 6.2): ElasticFlow first on both cluster
scales; on the 128-GPU run it beats every baseline on deadlines met, with
the deadline-aware non-elastic Chronus and the elastic deadline-unaware
schedulers in between.
"""

from conftest import run_once

from repro.experiments import fig6_deadline_satisfaction, format_table


def _print(result):
    print()
    print(
        format_table(
            ["Policy", "DSR", "Deadlines met", "Dropped"],
            result.rows(),
            title=f"Fig 6 ({result.label}): deadline satisfactory ratio",
        )
    )
    factors = result.improvements
    print(
        "ElasticFlow deadlines-met improvement: "
        + ", ".join(f"{name} {value:.2f}x" for name, value in factors.items())
    )


def test_fig6a_small_testbed(benchmark, config):
    result = run_once(benchmark, fig6_deadline_satisfaction, scale="small", config=config)
    _print(result)
    ratios = result.satisfactory_ratios
    assert len(ratios) == 7  # all baselines incl. Pollux
    best = ratios["elasticflow"]
    for name, value in ratios.items():
        assert best >= value - 1e-9, f"{name} beat ElasticFlow"


def test_fig6b_large_testbed(benchmark, config):
    result = run_once(benchmark, fig6_deadline_satisfaction, scale="large", config=config)
    _print(result)
    ratios = result.satisfactory_ratios
    assert set(ratios) == {"elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus"}
    best = ratios["elasticflow"]
    for name, value in ratios.items():
        assert best >= value - 1e-9, f"{name} beat ElasticFlow"
    # Every improvement factor lands in the paper's reported band shape
    # (strictly above 1x; the paper reports 1.46-7.65x).
    for name, factor in result.improvements.items():
        assert factor > 1.0, f"no improvement over {name}"
