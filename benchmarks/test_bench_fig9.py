"""Bench for Fig 9 — sources of improvement (ablation)."""

from conftest import run_once

from repro.experiments import fig9_sources_of_improvement, format_table


def test_fig9_sources_of_improvement(benchmark, config):
    rows = run_once(benchmark, fig9_sources_of_improvement, config=config)
    print()
    headers = ["GPUs"] + list(rows[0].ratios)
    print(
        format_table(
            headers,
            [[row.cluster_gpus] + [row.ratios[n] for n in rows[0].ratios] for row in rows],
            title="Fig 9: deadline satisfactory ratio vs cluster size (fixed load)",
        )
    )
    smallest, largest = rows[0], rows[-1]
    # Both ingredients beat plain EDF on the constrained cluster.
    assert smallest.ratios["edf+ac"] > smallest.ratios["edf"]
    assert smallest.ratios["edf+es"] > smallest.ratios["edf"]
    assert smallest.ratios["elasticflow"] > smallest.ratios["edf"]
    # The EDF+ES gap to ElasticFlow narrows as the cluster grows: with
    # abundant GPUs nearly everything is admitted and elasticity dominates.
    gap_small = abs(
        smallest.ratios["elasticflow"] - smallest.ratios["edf+es"]
    )
    gap_large = abs(largest.ratios["elasticflow"] - largest.ratios["edf+es"])
    assert gap_large <= gap_small + 0.05
    # Every scheduler improves (weakly) with more GPUs.
    for name in rows[0].ratios:
        assert largest.ratios[name] >= smallest.ratios[name] - 0.05
