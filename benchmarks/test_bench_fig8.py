"""Benches for Fig 8 — simulation results including Pollux and the trace sweep."""

from conftest import run_once

from repro.experiments import fig8a_with_pollux, fig8b_trace_sweep, format_table


def test_fig8a_simulation_with_pollux(benchmark, config):
    result = run_once(benchmark, fig8a_with_pollux, config=config)
    print()
    print(
        format_table(
            ["Policy", "DSR", "Deadlines met", "Dropped"],
            result.rows(),
            title="Fig 8a: 195-job simulation including Pollux",
        )
    )
    ratios = result.satisfactory_ratios
    assert "pollux" in ratios
    best = ratios["elasticflow"]
    for name, value in ratios.items():
        assert best >= value - 1e-9, f"{name} beat ElasticFlow"


def test_fig8b_trace_sweep(benchmark, config):
    """All ten production-like traces plus Philly, proportionally scaled.

    The paper's full-size traces run for CPU-hours; the scaled sweep keeps
    each trace's offered load, which is what the relative results depend on.
    """
    rows = run_once(
        benchmark, fig8b_trace_sweep, config=config, scale=0.0625
    )
    print()
    headers = ["Trace", "GPUs", "Jobs"] + list(rows[0].ratios)
    print(
        format_table(
            headers,
            [
                [row.trace, row.cluster_gpus, row.n_jobs]
                + [row.ratios[name] for name in rows[0].ratios]
                for row in rows
            ],
            title="Fig 8b: deadline satisfactory ratio per trace",
        )
    )
    assert len(rows) == 11  # ten clusters + philly
    wins = sum(
        1
        for row in rows
        if row.ratios["elasticflow"]
        >= max(v for k, v in row.ratios.items() if k != "elasticflow") - 1e-9
    )
    # ElasticFlow leads on (essentially) every trace.
    assert wins >= 10
    # EDF's paper behaviour: beats the deadline-unaware baselines on the
    # lightly loaded traces (9, 10, philly) ...
    light = [r for r in rows if r.trace in ("cluster-9", "cluster-10", "philly")]
    for row in light:
        others = max(row.ratios[n] for n in ("gandiva", "tiresias", "themis"))
        assert row.ratios["edf"] >= others
    # ... and trails ElasticFlow badly on the overloaded ones.
    heavy = [r for r in rows if r.trace in ("cluster-2", "cluster-5", "cluster-7")]
    for row in heavy:
        assert row.ratios["elasticflow"] > row.ratios["edf"]
