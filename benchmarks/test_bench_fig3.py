"""Bench for Fig 3 — EDF's failure on non-linearly scaling jobs."""

from repro.experiments import fig3_edf_example, format_table


def test_fig3_edf_counterexample(benchmark):
    outcome = benchmark(fig3_edf_example)
    edf = outcome["edf"]
    one_each = outcome["one_worker_each"]
    print()
    print(
        format_table(
            ["Schedule", "A finishes", "B finishes", "Deadlines met"],
            [
                (edf.schedule, edf.finish_a, edf.finish_b, edf.deadlines_met),
                (
                    one_each.schedule,
                    one_each.finish_a,
                    one_each.finish_b,
                    one_each.deadlines_met,
                ),
            ],
            title="Fig 3: deadlines at t=3.0 (A) and t=3.5 (B)",
        )
    )
    # Fig 3(b): EDF satisfies A but violates B.
    assert edf.a_met and not edf.b_met
    # Fig 3(c): one worker each satisfies both.
    assert one_each.deadlines_met == 2
    # ElasticFlow's progressive filling finds the feasible schedule.
    assert outcome["elasticflow_admits_both"]
