"""Benches for Fig 12 — profiling and scaling/migration overheads."""

from repro.experiments import (
    fig12a_profiling_overheads,
    fig12b_scaling_overheads,
    format_table,
)
from repro.experiments.fig12_overheads import SCALING_CASES


def test_fig12a_profiling_overheads(benchmark):
    rows = benchmark(fig12a_profiling_overheads)
    print()
    print(
        format_table(
            ["Model", "Batch sizes", "Configs", "Overhead (min)"],
            [
                (
                    row.model,
                    ",".join(map(str, row.batch_sizes)),
                    row.configurations_profiled,
                    row.overhead_minutes,
                )
                for row in rows
            ],
            title="Fig 12a: pre-run profiling overheads",
        )
    )
    assert len(rows) == 6
    # Profiling costs minutes, marginal next to hours-long training jobs.
    for row in rows:
        assert 0.5 < row.overhead_minutes < 60.0


def test_fig12b_scaling_overheads(benchmark):
    rows = benchmark(fig12b_scaling_overheads)
    labels = [label for _, _, label in SCALING_CASES]
    print()
    print(
        format_table(
            ["Model"] + labels,
            [[row.model] + [row.seconds_by_case[l] for l in labels] for row in rows],
            title="Fig 12b: scaling/migration overheads (seconds)",
        )
    )
    for row in rows:
        values = list(row.seconds_by_case.values())
        # Paper shape: the five cases are similar (checkpoint/restore
        # dominates) and small next to the ~23-minute scheduling interval.
        assert max(values) < 2 * min(values)
        assert max(values) < 120.0
