"""Multi-seed robustness bench.

The paper reports averaged improvements over many traces; single-seed
results carry workload-sampling noise.  This bench replays the Fig 6(a)
configuration across several seeds and reports mean +/- 95 % CI per
policy, asserting ElasticFlow's lead is not a seed artifact.
"""

from conftest import run_once

from repro.experiments import format_table
from repro.experiments.harness import ExperimentConfig, run_policies
from repro.experiments.harness import testbed_workload as build_testbed
from repro.experiments.stats import sweep_seeds

POLICIES = ("elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus")
SEEDS = [0, 1, 2, 3, 4]


def test_multiseed_deadline_satisfaction(benchmark):
    def run():
        sweeps = {}
        for policy in POLICIES:
            def metric(seed, policy=policy):
                config = ExperimentConfig(seed=seed)
                cluster, specs = build_testbed(
                    config, cluster_gpus=32, n_jobs=25, target_load=2.0
                )
                result = run_policies([policy], cluster, specs, config)[policy]
                return result.deadline_satisfactory_ratio

            sweeps[policy] = sweep_seeds(metric, SEEDS)
        return sweeps

    sweeps = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["Policy", "Mean DSR", "+/- 95% CI", "Min", "Max"],
            [
                (
                    name,
                    sweep.mean,
                    sweep.ci95_halfwidth,
                    min(sweep.values),
                    max(sweep.values),
                )
                for name, sweep in sweeps.items()
            ],
            title=f"Fig 6(a) configuration over {len(SEEDS)} workload seeds",
        )
    )
    elastic = sweeps["elasticflow"]
    for name, sweep in sweeps.items():
        if name == "elasticflow":
            continue
        # ElasticFlow's mean beats every baseline's mean by more than the
        # combined confidence half-widths: the lead is not sampling noise.
        gap = elastic.mean - sweep.mean
        assert gap > 0, f"{name} mean {sweep.mean} >= elasticflow {elastic.mean}"
        assert gap > 0.5 * (elastic.ci95_halfwidth + sweep.ci95_halfwidth), name
    # ElasticFlow wins on every individual seed, too.
    for index in range(len(SEEDS)):
        best_baseline = max(
            sweeps[name].values[index] for name in POLICIES if name != "elasticflow"
        )
        assert elastic.values[index] >= best_baseline - 1e-9
