"""Ablation benches for the design decisions called out in DESIGN.md.

1. Pessimistic planning curves — Section 4.3's rejected "naive approach":
   plan as if every job were maximally scattered.  Buddy placement makes
   compact curves safe, and pessimism should cost admitted jobs.
2. Power-of-two worker counts — the CoDDL-style restriction buddy
   allocation needs.  Measured as extra GPU-time of the minimum
   satisfactory shares versus unrestricted integer sizes.
3. Slot-width sensitivity — planning granularity versus outcome quality.
"""

import numpy as np

from conftest import run_once

from repro.core import AdmissionController, ElasticFlowPolicy, SlotGrid
from repro.core.admission import planning_job
from repro.core.job import Job, JobSpec
from repro.experiments import format_table
from repro.experiments.harness import run_policies
from repro.experiments.harness import testbed_workload as build_testbed
from repro.profiles import InterconnectSpec, LinkSpec, ThroughputModel
from repro.sim import Simulator


def pessimistic_model() -> ThroughputModel:
    """Curves assuming one GPU per server — the worst legal placement."""
    scattered = InterconnectSpec(
        gpus_per_node=1,
        hcas_per_node=1,
        inter_node=LinkSpec(alpha_s=80e-6, beta_bytes_per_s=9e9),
    )
    return ThroughputModel(scattered)


def test_ablation_pessimistic_planning(benchmark, config):
    """Planning with worst-placement curves admits visibly fewer jobs."""

    def run():
        cluster, specs = build_testbed(
            config, cluster_gpus=64, n_jobs=80, target_load=1.6
        )
        compact = run_policies(["elasticflow"], cluster, specs, config)[
            "elasticflow"
        ]
        pessimist_policy = ElasticFlowPolicy(
            safety_margin=config.safety_margin,
            deadline_padding_s=config.deadline_padding_s,
            stability_threshold=config.stability_threshold,
            planning_throughput=pessimistic_model(),
        )
        pessimist = Simulator(
            cluster,
            pessimist_policy,
            specs,
            throughput=config.throughput,
            slot_seconds=config.slot_seconds,
            executor=config.executor(),
        ).run()
        return compact, pessimist

    compact, pessimist = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["Planning curves", "DSR", "Admitted", "Dropped"],
            [
                ("compact (buddy)", compact.deadline_satisfactory_ratio,
                 compact.admitted_count, compact.dropped_count),
                ("pessimistic (naive)", pessimist.deadline_satisfactory_ratio,
                 pessimist.admitted_count, pessimist.dropped_count),
            ],
            title="Ablation: Section 4.3 placement-aware vs pessimistic planning",
        )
    )
    assert compact.admitted_count > pessimist.admitted_count
    assert (
        compact.deadline_satisfactory_ratio
        > pessimist.deadline_satisfactory_ratio
    )


def test_ablation_power_of_two_cost(benchmark):
    """Buddy's power-of-two restriction costs little extra GPU-time."""

    def run():
        capacity = 64
        grid = SlotGrid(origin=0.0, slot_seconds=600.0, horizon=24)
        results = {}
        for restricted in (True, False):
            model = ThroughputModel(power_of_two=restricted)
            controller = AdmissionController(capacity)
            infos = []
            rng_local = np.random.default_rng(7)
            for i in range(12):
                name = ("resnet50", "vgg16", "bert")[int(rng_local.integers(3))]
                curve = model.curve(name, 128)
                seconds = float(rng_local.uniform(1800, 7200))
                spec_job = Job(
                    spec=JobSpec(
                        job_id=f"j{i}",
                        model_name=name,
                        global_batch_size=128,
                        max_iterations=max(1, int(curve.throughput(1) * seconds)),
                        deadline=float(rng_local.uniform(0.8, 1.5)) * seconds,
                    )
                )
                infos.append(planning_job(spec_job, curve, grid, capacity))
            outcome = controller.plan_shares(infos, grid, stop_on_failure=False)
            gpu_time = sum(
                float(np.sum(plan)) * grid.slot_seconds
                for plan in outcome.plans.values()
            )
            results[restricted] = (gpu_time, len(outcome.degraded))
        return results

    results = run_once(benchmark, run)
    restricted_time, restricted_failures = results[True]
    free_time, free_failures = results[False]
    print()
    print(
        format_table(
            ["Sizes", "Min-share GPU-time (GPU-h)", "Infeasible"],
            [
                ("powers of two", restricted_time / 3600.0, restricted_failures),
                ("unrestricted", free_time / 3600.0, free_failures),
            ],
            title="Ablation: cost of the power-of-two (buddy) restriction",
        )
    )
    # The restriction wastes at most a modest factor of reserved GPU-time
    # and breaks no feasibility on this workload.
    assert restricted_failures <= free_failures + 1
    assert restricted_time <= 2.0 * free_time + 1e-9


def test_ablation_online_profiling(benchmark, config):
    """Section 5's during-execution profiling: a 50 %-optimistic stale
    profile breaks admitted deadlines; the online EWMA correction repairs
    planning and restores the guarantee."""
    from repro.profiles import OnlineThroughputModel, ScaledThroughputModel

    def run():
        cluster, specs = build_testbed(
            config, cluster_gpus=16, n_jobs=40, target_load=1.6
        )

        def simulate(planning, hook=None):
            return Simulator(
                cluster,
                ElasticFlowPolicy(planning_throughput=planning),
                specs,
                throughput=config.throughput,
                slot_seconds=config.slot_seconds,
                executor=config.executor(),
                observation_hook=hook,
            ).run()

        stale = simulate(ScaledThroughputModel(config.throughput, 1.5))
        online = OnlineThroughputModel(
            ScaledThroughputModel(config.throughput, 1.5)
        )

        def hook(job, n_gpus, rate):
            online.observe(
                job.spec.model_name, job.spec.global_batch_size, n_gpus, rate
            )

        corrected = simulate(online, hook)
        return stale, corrected

    stale, corrected = run_once(benchmark, run)

    def missed(result):
        return sum(1 for o in result.outcomes if o.admitted and not o.met_deadline)

    print()
    print(
        format_table(
            ["Planning profile", "DSR", "Admitted", "Admitted-but-late"],
            [
                ("stale (1.5x optimistic)", stale.deadline_satisfactory_ratio,
                 stale.admitted_count, missed(stale)),
                ("online-corrected", corrected.deadline_satisfactory_ratio,
                 corrected.admitted_count, missed(corrected)),
            ],
            title="Ablation: Section 5 during-execution throughput profiling",
        )
    )
    assert missed(stale) > 0
    assert missed(corrected) < missed(stale)


def test_ablation_slot_width(benchmark, config):
    """Coarser planning slots degrade outcomes only gradually."""

    def run():
        cluster, specs = build_testbed(
            config, cluster_gpus=64, n_jobs=80, target_load=1.6
        )
        ratios = {}
        for slot in (300.0, 600.0, 1800.0):
            policy = config.policy("elasticflow")
            result = Simulator(
                cluster,
                policy,
                specs,
                throughput=config.throughput,
                slot_seconds=slot,
                executor=config.executor(),
            ).run()
            ratios[slot] = result.deadline_satisfactory_ratio
        return ratios

    ratios = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["Slot width (s)", "DSR"],
            [(int(slot), ratio) for slot, ratio in ratios.items()],
            title="Ablation: planning-slot width sensitivity",
        )
    )
    values = list(ratios.values())
    assert max(values) - min(values) < 0.25
