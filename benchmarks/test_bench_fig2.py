"""Benches for Fig 2 — scaling curves and placement sensitivity."""

from repro.experiments import (
    fig2a_scaling_curves,
    fig2b_placement_throughput,
    format_series,
)


def test_fig2a_scaling_curves(benchmark):
    series = benchmark(fig2a_scaling_curves)
    assert len(series) == 6
    print()
    print("Fig 2a: normalised scaling curves (global batch 256)")
    for line in series:
        print(format_series(line.model, line.xs, line.speedups, x_label="gpus"))
        # Every curve is sub-linear at 8 GPUs (the paper's observation).
        speedup_8 = dict(zip(line.xs, line.speedups))[8]
        assert 1.0 < speedup_8 < 8.0


def test_fig2b_placement_throughput(benchmark):
    series = benchmark(fig2b_placement_throughput)
    print()
    print("Fig 2b: 8-GPU job throughput by servers spanned (norm. to 8 servers)")
    by_model = {}
    for line in series:
        print(format_series(line.model, line.xs, line.speedups, x_label="servers"))
        by_model[line.model] = dict(zip(line.xs, line.speedups))
    # Paper headline: same-server ResNet50 is ~2.17x the 8-server placement.
    assert 1.9 < by_model["resnet50"][1] < 2.5
    # Placement always matters: fewer servers is never slower.
    for spans in by_model.values():
        values = [spans[k] for k in sorted(spans)]
        assert values == sorted(values, reverse=True)
