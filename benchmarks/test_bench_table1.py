"""Bench for Table 1 — the evaluation's model pool."""

from repro.experiments import format_table, table1_models


def test_table1_model_pool(benchmark):
    rows = benchmark(table1_models)
    assert len(rows) == 6
    assert {row.task for row in rows} == {"cv", "nlp", "speech"}
    print()
    print(
        format_table(
            ["Task", "Dataset", "Model", "Batch sizes"],
            [
                (row.task, row.dataset, row.model, ",".join(map(str, row.batch_sizes)))
                for row in rows
            ],
            title="Table 1: DNN models used in the evaluation",
        )
    )
