"""Bench for Fig 4 — the minimum-satisfactory-share worked example."""

from repro.experiments import fig4_admission_example, format_table


def test_fig4_admission_example(benchmark):
    result = benchmark(fig4_admission_example)
    print()
    print(
        format_table(
            ["Scenario", "GPU time"],
            [
                ("job C alone (Fig 4b)", result.gpu_time_alone),
                ("job C after A and B (Fig 4c)", result.gpu_time_contended),
            ],
            title="Fig 4: job C (deadline 2, work 3) on a 4-GPU cluster",
        )
    )
    print(f"minimum satisfactory share plan: {result.plan}")
    # The paper's numbers: 4 GPU-time alone, 5 GPU-time behind jobs A and B,
    # realised as 1 GPU in slot 0 and 4 GPUs in slot 1.
    assert result.gpu_time_alone == 4.0
    assert result.gpu_time_contended == 5.0
    assert result.plan[:2] == (1, 4)
    assert result.iterations_achieved >= 3.0
