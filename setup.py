"""Legacy setup shim: enables editable installs on setuptools without PEP 660."""

from setuptools import setup

setup()
