#!/usr/bin/env python3
"""Compare ElasticFlow against the six baseline schedulers.

Replays one production-like trace (64 GPUs, ~100 jobs, offered load ~1.6x)
under every scheduler in the repository and prints the deadline
satisfactory ratio table — a pocket-sized version of the paper's Fig 6/8.

Run:  python examples/scheduler_comparison.py
"""

from repro.baselines import POLICY_NAMES
from repro.experiments import format_table
from repro.experiments.harness import ExperimentConfig, run_policies, testbed_workload


def main() -> None:
    config = ExperimentConfig(seed=3)
    cluster, specs = testbed_workload(
        config, cluster_gpus=64, n_jobs=100, target_load=1.6
    )
    print(
        f"workload: {len(specs)} jobs on {cluster.total_gpus} GPUs "
        f"(offered load ~1.6x; deadlines lambda~U[0.5, 1.5])"
    )
    print("running 9 schedulers...")

    results = run_policies(list(POLICY_NAMES), cluster, specs, config)

    rows = []
    for name, result in sorted(
        results.items(),
        key=lambda item: -item[1].deadline_satisfactory_ratio,
    ):
        rows.append(
            (
                name,
                result.deadline_satisfactory_ratio,
                result.deadlines_met,
                result.dropped_count,
                result.average_jct() / 3600.0,
            )
        )
    print()
    print(
        format_table(
            ["Policy", "DSR", "Met", "Dropped", "Avg JCT (h)"],
            rows,
            title="Deadline satisfactory ratio by scheduler",
        )
    )

    elastic = results["elasticflow"]
    print()
    print(
        "ElasticFlow admitted "
        f"{elastic.admitted_count}/{len(specs)} jobs and met "
        f"{elastic.deadlines_met} deadlines; every unmet deadline was "
        "declined up front rather than discovered at the deadline."
    )


if __name__ == "__main__":
    main()
