#!/usr/bin/env python3
"""Driving ElasticFlow through its serverless front end.

The experiment harness replays pre-recorded traces; a real deployment is
interactive — developers submit jobs whenever they like and immediately
learn whether their deadline is guaranteed.  This example plays a morning
on a small cluster through :class:`repro.platform.ElasticFlowPlatform`:
submissions arrive over time, admission answers come back synchronously,
and the cluster map shows elasticity at work.

Run:  python examples/interactive_platform.py
"""

from repro import ClusterSpec, ElasticFlowPlatform
from repro.cluster import PlacementManager, render_occupancy  # noqa: F401 (docs)
from repro.profiles import ThroughputModel

HOUR = 3600.0


def main() -> None:
    throughput = ThroughputModel()
    platform = ElasticFlowPlatform(
        ClusterSpec(n_nodes=2, gpus_per_node=8), throughput=throughput
    )
    rate = throughput.curve("resnet50", 128).throughput(1)

    print("09:00  nightly retrain lands with a lunchtime deadline")
    nightly = platform.submit(
        model_name="resnet50",
        global_batch_size=128,
        max_iterations=int(rate * 9.0 * HOUR),  # ~9 single-GPU hours
        deadline_in=3.0 * HOUR,
        job_id="retrain",
    )
    print(f"       admitted={nightly.admitted}  gpus={nightly.gpus}")

    platform.run_until(0.5 * HOUR)
    print(f"09:30  retrain progress {nightly.progress:5.1%} on {nightly.gpus} GPUs")

    print("09:30  a researcher asks for the impossible")
    hopeless = platform.submit(
        model_name="vgg16",
        global_batch_size=256,
        max_iterations=int(10_000_000),
        deadline_in=0.5 * HOUR,
        job_id="hopeless",
    )
    print(f"       admitted={hopeless.admitted} (declined up front, not at the deadline)")

    print("09:30  ...and resubmits as best-effort")
    besteffort = platform.submit(
        model_name="gpt2",
        global_batch_size=128,
        max_iterations=int(throughput.curve("gpt2", 128).throughput(1) * 4.0 * HOUR),
        job_id="research",
    )
    print(f"       admitted={besteffort.admitted} (no deadline, runs on leftovers)")

    platform.run_until(1.5 * HOUR)
    print(
        f"10:30  cluster: {platform.gpus_in_use}/16 GPUs busy, "
        f"active jobs: {', '.join(platform.active_jobs)}"
    )
    print(f"       retrain {nightly.progress:5.1%}   research {besteffort.progress:5.1%}")

    result = platform.drain()
    print()
    print("end of session")
    print(f"  retrain  finished {nightly.completion_time / HOUR:4.2f}h "
          f"(deadline 3.00h) on-time={nightly.met_deadline}")
    print(f"  research finished {besteffort.completion_time / HOUR:4.2f}h (best-effort)")
    print(f"  platform DSR over the session: {result.deadline_satisfactory_ratio:.2f}")


if __name__ == "__main__":
    main()
