#!/usr/bin/env python3
"""The paper's motivating scenario: models retrained in time for releases.

A recommendation team fine-tunes BERT on fresh data every night; the model
must be onboarded before the 09:00 product refresh (Section 1: "fine-tuning
BERT model with daily news to update recommendation services every day").
Meanwhile researchers submit ad-hoc jobs around the clock.

ElasticFlow admits the nightly jobs with a hard guarantee and soaks the
ad-hoc work into whatever capacity the guarantees leave over.

Run:  python examples/daily_model_refresh.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec
from repro.profiles import ThroughputModel
from repro.sim import Simulator

HOUR = 3600.0
DAYS = 3


def nightly_jobs(throughput: ThroughputModel) -> list[JobSpec]:
    """One BERT fine-tune per night, submitted at 01:00, due at 09:00."""
    jobs = []
    curve = throughput.curve("bert", 128)
    iterations = int(curve.throughput(1) * 5 * HOUR)  # ~5 single-GPU hours
    for day in range(DAYS):
        submit = day * 24 * HOUR + 1 * HOUR
        jobs.append(
            JobSpec(
                job_id=f"nightly-bert-day{day}",
                model_name="bert",
                global_batch_size=128,
                max_iterations=iterations,
                submit_time=submit,
                deadline=day * 24 * HOUR + 9 * HOUR,
            )
        )
    return jobs


def adhoc_jobs(throughput: ThroughputModel, rng: np.random.Generator) -> list[JobSpec]:
    """Research jobs with mixed deadlines arriving through the day."""
    pool = [("resnet50", 128), ("vgg16", 64), ("inceptionv3", 128), ("gpt2", 128)]
    jobs = []
    for i in range(24):
        name, batch = pool[int(rng.integers(len(pool)))]
        curve = throughput.curve(name, batch)
        hours = float(rng.uniform(0.5, 4.0))
        submit = float(rng.uniform(0, DAYS * 24)) * HOUR
        best_effort = bool(rng.random() < 0.4)
        deadline = None if best_effort else submit + float(rng.uniform(0.8, 2.0)) * hours * HOUR
        jobs.append(
            JobSpec(
                job_id=f"adhoc-{i:02d}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(curve.throughput(1) * hours * HOUR)),
                submit_time=submit,
                deadline=deadline,
            )
        )
    return jobs


def main() -> None:
    throughput = ThroughputModel()
    rng = np.random.default_rng(11)
    jobs = nightly_jobs(throughput) + adhoc_jobs(throughput, rng)

    simulator = Simulator(
        ClusterSpec(n_nodes=4, gpus_per_node=8),
        ElasticFlowPolicy(safety_margin=0.03, deadline_padding_s=60.0,
                          stability_threshold=0.3),
        jobs,
        throughput=throughput,
        slot_seconds=600.0,
    )
    result = simulator.run()

    print("=== nightly model refresh (the release-critical jobs) ===")
    for day in range(DAYS):
        outcome = result.outcome_of(f"nightly-bert-day{day}")
        finish = outcome.completion_time / HOUR - day * 24
        print(
            f"day {day}: admitted={outcome.admitted}  "
            f"finished at {finish:05.2f}h (due 09:00)  "
            f"on time={outcome.met_deadline}"
        )
    nightly_ok = all(
        result.outcome_of(f"nightly-bert-day{d}").met_deadline for d in range(DAYS)
    )
    print("every release made its 09:00 deadline:", nightly_ok)

    print()
    print("=== ad-hoc research jobs ===")
    adhoc = [o for o in result.outcomes if o.job_id.startswith("adhoc")]
    slo = [o for o in adhoc if not o.best_effort]
    best_effort = [o for o in adhoc if o.best_effort]
    met = sum(o.met_deadline for o in slo)
    print(f"SLO ad-hoc jobs: {met}/{len(slo)} met deadlines "
          f"({sum(1 for o in slo if not o.admitted)} dropped at admission)")
    jct = [o.jct / HOUR for o in best_effort if o.jct is not None]
    print(f"best-effort jobs: {len(best_effort)} ran on leftovers, "
          f"mean completion latency {np.mean(jct):.1f}h")


if __name__ == "__main__":
    main()
