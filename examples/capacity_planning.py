#!/usr/bin/env python3
"""Capacity planning with the simulator: how many GPUs does a workload need?

An operator wants to know the smallest cluster that keeps the deadline
satisfactory ratio above a target for a known workload mix.  Because
ElasticFlow's admission control makes the DSR a clean monotone function of
capacity, the simulator doubles as a sizing tool: sweep cluster sizes,
replay the same trace, read off the knee.

Run:  python examples/capacity_planning.py
"""

from repro.cluster import ClusterSpec
from repro.experiments import format_table
from repro.experiments.harness import ExperimentConfig, run_policies, testbed_workload

TARGET_DSR = 0.9


def main() -> None:
    config = ExperimentConfig(seed=5)
    # The workload is generated once against a 64-GPU reference so the
    # offered GPU-hours stay identical at every candidate size.
    _, specs = testbed_workload(
        config, cluster_gpus=64, n_jobs=90, target_load=1.5
    )

    rows = []
    chosen = None
    for n_nodes in (2, 4, 8, 16, 32):
        cluster = ClusterSpec(n_nodes=n_nodes, gpus_per_node=8)
        result = run_policies(["elasticflow"], cluster, specs, config)["elasticflow"]
        ratio = result.deadline_satisfactory_ratio
        rows.append(
            (
                cluster.total_gpus,
                ratio,
                result.admitted_count,
                result.dropped_count,
                result.makespan / 3600.0,
            )
        )
        if chosen is None and ratio >= TARGET_DSR:
            chosen = cluster.total_gpus

    print(
        format_table(
            ["GPUs", "DSR", "Admitted", "Dropped", "Makespan (h)"],
            rows,
            title=f"Capacity sweep for a {len(specs)}-job workload",
        )
    )
    print()
    if chosen is None:
        print(f"no size in the sweep reaches DSR >= {TARGET_DSR}")
    else:
        print(
            f"smallest cluster meeting DSR >= {TARGET_DSR}: {chosen} GPUs "
            f"({chosen // 8} nodes)"
        )


if __name__ == "__main__":
    main()
