#!/usr/bin/env python3
"""Operator policies: defending the cluster against a flooding tenant.

Section 4.4 of the paper notes that a user "may submit many jobs with close
deadlines to occupy all GPUs in the cluster" and suggests quotas or pricing
as the operator's answer.  This example runs the same two-tenant workload
twice — once with plain admission control, once with a per-user quota plus
a pricing policy — and shows how the honest tenant's jobs survive the flood
only under the operator policy.

Run:  python examples/multitenant_quotas.py
"""

from repro.cluster import ClusterSpec
from repro.core import (
    CompositePolicy,
    ElasticFlowPolicy,
    JobSpec,
    PricingPolicy,
    UserQuotaPolicy,
)
from repro.profiles import ThroughputModel
from repro.sim import Simulator

HOUR = 3600.0


def build_workload(throughput: ThroughputModel) -> list[JobSpec]:
    jobs: list[JobSpec] = []
    resnet_rate = throughput.curve("resnet50", 128).throughput(1)
    # Mallory floods the cluster with ten tight-deadline jobs at t=0..10 s.
    for i in range(10):
        jobs.append(
            JobSpec(
                job_id=f"mallory-{i}",
                model_name="resnet50",
                global_batch_size=128,
                max_iterations=int(resnet_rate * 4.0 * HOUR),
                submit_time=float(i),
                deadline=float(i) + 2.2 * HOUR,
                user="mallory",
            )
        )
    # Three honest tenants submit shortly after.
    bert_rate = throughput.curve("bert", 64).throughput(1)
    for i, user in enumerate(("alice", "bob", "carol")):
        jobs.append(
            JobSpec(
                job_id=f"{user}-job",
                model_name="bert",
                global_batch_size=64,
                max_iterations=int(bert_rate * 0.5 * HOUR),
                submit_time=30.0 + i,
                deadline=30.0 + i + 0.75 * HOUR,
                user=user,
            )
        )
    return jobs


def run(policy: ElasticFlowPolicy, jobs, throughput):
    return Simulator(
        ClusterSpec(n_nodes=2, gpus_per_node=8),
        policy,
        jobs,
        throughput=throughput,
        slot_seconds=300.0,
    ).run()


def report(label: str, result) -> None:
    mallory = [o for o in result.outcomes if o.job_id.startswith("mallory")]
    honest = [o for o in result.outcomes if not o.job_id.startswith("mallory")]
    print(f"--- {label}")
    print(f"  mallory: {sum(o.admitted for o in mallory)}/10 admitted")
    for outcome in honest:
        verdict = "met deadline" if outcome.met_deadline else (
            "ADMITTED but late" if outcome.admitted else "DROPPED"
        )
        print(f"  {outcome.job_id:12s} {verdict}")


def main() -> None:
    throughput = ThroughputModel()
    jobs = build_workload(throughput)

    # 1) Plain ElasticFlow: feasibility is the only gate.
    plain = run(ElasticFlowPolicy(), jobs, throughput)
    report("no operator policy (first come, first reserved)", plain)

    # 2) Quota (max 2 admissions/user/day) + pricing (per-user budgets).
    pricing = PricingPolicy(
        budgets={"mallory": 10.0, "alice": 50.0, "bob": 50.0, "carol": 50.0},
        rate_per_gpu_hour=1.0,
    )
    pricing.register_curve(throughput.curve("resnet50", 128))
    pricing.register_curve(throughput.curve("bert", 64))
    guarded_policy = ElasticFlowPolicy(
        operator_policy=CompositePolicy([UserQuotaPolicy(max_jobs=2), pricing])
    )
    guarded = run(guarded_policy, jobs, throughput)
    report("quota + pricing operator policy", guarded)

    honest_ok = all(
        o.met_deadline for o in guarded.outcomes
        if not o.job_id.startswith("mallory")
    )
    print()
    print("honest tenants protected by the operator policy:", honest_ok)
    print(f"mallory's remaining budget: {pricing.balance('mallory'):.2f} credits")


if __name__ == "__main__":
    main()
