#!/usr/bin/env python3
"""Reliability drill: how node failures interact with deadline guarantees.

Section 4.4 of the paper notes that ElasticFlow "can be extended to taking
node failures into consideration by ... reserving enough resources".  This
example injects random node outages into a deadline-driven workload and
compares three configurations:

1. no failures (the guarantee baseline),
2. failures with plain ElasticFlow (admitted jobs can get burned), and
3. failures with a one-node failure reserve (guarantees ride out the
   outage at the cost of admitting a little less).

Run:  python examples/failure_drill.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec
from repro.profiles import ThroughputModel
from repro.sim import NodeFailureModel, Simulator

HOUR = 3600.0
CLUSTER = ClusterSpec(n_nodes=4, gpus_per_node=8)


def build_jobs(throughput: ThroughputModel) -> list[JobSpec]:
    rng = np.random.default_rng(21)
    pool = [("resnet50", 128), ("bert", 64), ("inceptionv3", 128)]
    jobs = []
    for i in range(110):
        name, batch = pool[int(rng.integers(len(pool)))]
        rate = throughput.curve(name, batch).throughput(1)
        hours = float(rng.uniform(0.8, 3.0))
        submit = float(rng.uniform(0, 6.0)) * HOUR
        lam = float(rng.uniform(0.5, 1.0))
        jobs.append(
            JobSpec(
                job_id=f"job-{i:02d}",
                model_name=name,
                global_batch_size=batch,
                max_iterations=max(1, int(rate * hours * HOUR)),
                submit_time=submit,
                deadline=submit + lam * hours * HOUR,
            )
        )
    return jobs


def run(jobs, throughput, *, failures=None, reserve=0):
    policy = ElasticFlowPolicy(
        safety_margin=0.03,
        deadline_padding_s=60.0,
        stability_threshold=0.3,
        failure_reserve_gpus=reserve,
    )
    return Simulator(
        CLUSTER, policy, jobs, throughput=throughput,
        slot_seconds=600.0, failures=failures,
    ).run()


def report(label, result):
    admitted = [o for o in result.outcomes if o.admitted]
    burned = [o for o in admitted if not o.met_deadline]
    print(
        f"{label:34s} DSR={result.deadline_satisfactory_ratio:.2f}  "
        f"admitted={len(admitted):2d}  dropped={result.dropped_count:2d}  "
        f"admitted-but-late={len(burned)}"
    )


def main() -> None:
    throughput = ThroughputModel()
    jobs = build_jobs(throughput)
    # A rough outage pattern: each node fails about once per day of
    # simulated time, taking an hour to repair.
    failures = NodeFailureModel(mtbf_hours=8.0, mttr_hours=1.5).sample(
        CLUSTER.n_nodes, horizon_s=12 * HOUR, seed=4
    )
    print(f"{len(jobs)} jobs on {CLUSTER.total_gpus} GPUs; "
          f"{len(failures)} node outages injected\n")

    report("no failures", run(jobs, throughput))
    report("failures, no reserve", run(jobs, throughput, failures=failures))
    report(
        "failures, 8-GPU reserve",
        run(jobs, throughput, failures=failures, reserve=8),
    )
    print()
    print("The reserve is insurance: it admits fewer jobs up front, and in")
    print("exchange fewer admitted jobs get burned when nodes go down (the")
    print("residual lateness comes from eviction/restart stalls, which no")
    print("capacity reserve can refund).")


if __name__ == "__main__":
    main()
