#!/usr/bin/env python3
"""Quickstart: submit deadline-driven training jobs to ElasticFlow.

This walks the serverless workflow end to end on a simulated 2-node,
16-GPU cluster:

1. describe each training job the way a DL developer would — model,
   global batch size, termination condition (max iterations), deadline —
   with *no* GPU count;
2. hand the jobs to the ElasticFlow scheduler;
3. watch admission control accept or drop them, elastic scaling stretch
   them over idle GPUs, and every admitted job finish before its deadline.

Run:  python examples/quickstart.py
"""

from repro.cluster import ClusterSpec
from repro.core import ElasticFlowPolicy, JobSpec
from repro.profiles import ThroughputModel
from repro.sim import Simulator

HOUR = 3600.0


def main() -> None:
    throughput = ThroughputModel()

    # One iteration of ResNet50 at global batch 128 takes ~52 ms on one
    # GPU, so 60k iterations is about 52 minutes of single-GPU work.
    jobs = [
        JobSpec(
            job_id="resnet50-nightly",
            model_name="resnet50",
            global_batch_size=128,
            max_iterations=60_000,
            submit_time=0.0,
            deadline=1.0 * HOUR,  # tight: needs multiple GPUs
        ),
        JobSpec(
            job_id="bert-finetune",
            model_name="bert",
            global_batch_size=64,
            max_iterations=20_000,
            submit_time=0.25 * HOUR,
            deadline=2.0 * HOUR,
        ),
        JobSpec(
            job_id="gpt2-experiment",
            model_name="gpt2",
            global_batch_size=128,
            max_iterations=8_000,
            submit_time=0.5 * HOUR,
            deadline=None,  # best-effort: no deadline, runs on leftovers
        ),
        JobSpec(
            job_id="vgg16-hopeless",
            model_name="vgg16",
            global_batch_size=256,
            max_iterations=5_000_000,  # days of work...
            submit_time=0.5 * HOUR,
            deadline=1.0 * HOUR,  # ...due in half an hour: will be dropped
        ),
    ]

    simulator = Simulator(
        ClusterSpec(n_nodes=2, gpus_per_node=8),
        ElasticFlowPolicy(),
        jobs,
        throughput=throughput,
        slot_seconds=300.0,
    )
    result = simulator.run()

    print(f"cluster: 16 GPUs   policy: {result.policy_name}")
    print(f"{'job':20s} {'status':10s} {'deadline':>9s} {'finished':>9s} {'on time':>8s}")
    for outcome in result.outcomes:
        deadline = "-" if outcome.best_effort else f"{outcome.deadline / HOUR:.2f}h"
        finished = (
            "-" if outcome.completion_time is None
            else f"{outcome.completion_time / HOUR:.2f}h"
        )
        if outcome.best_effort:
            on_time = "n/a"
        else:
            on_time = "yes" if outcome.met_deadline else "no"
        print(f"{outcome.job_id:20s} {outcome.status.value:10s} {deadline:>9s} {finished:>9s} {on_time:>8s}")

    print()
    print(f"deadline satisfactory ratio (SLO jobs): {result.deadline_satisfactory_ratio:.2f}")
    print(f"dropped by admission control: {result.dropped_count}")
    print("ElasticFlow's guarantee: every *admitted* job met its deadline ->",
          all(o.met_deadline for o in result.outcomes if o.admitted and not o.best_effort))


if __name__ == "__main__":
    main()
