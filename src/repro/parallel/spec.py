"""Picklable run specifications for the fan-out engine.

A worker process never receives live objects — no :class:`Simulator`, no
:class:`ThroughputModel`, no planning tables.  It receives a
:class:`RunSpec`: plain frozen dataclasses describing *how to rebuild* the
entire simulation from scratch (trace configuration and seeds, policy name
and knobs, cluster shape, interconnect constants).  Rebuilding from the
description is what makes spawn-based workers deterministic — every worker
derives identical inputs from the spec, with no ambient state shipped
across the process boundary — and it is also what makes runs
*fingerprintable*: the spec's canonical payload names everything the
result depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.registry import make_policy
from repro.cluster.topology import ClusterSpec
from repro.core.job import JobSpec
from repro.errors import ConfigurationError
from repro.profiles.interconnect import DGX_A100_INTERCONNECT, InterconnectSpec
from repro.profiles.throughput import ThroughputModel
from repro.sim.executor import ElasticExecutor
from repro.sim.metrics import SimulationResult
from repro.traces.synthetic import ClusterTraceConfig, generate_trace
from repro.traces.deadlines import DeadlineAssigner
from repro.traces.workload import build_jobs

__all__ = ["WorkloadSpec", "PolicySpec", "RunSpec"]


def _jobspec_payload(spec: JobSpec) -> dict:
    return {
        "job_id": spec.job_id,
        "model_name": spec.model_name,
        "global_batch_size": spec.global_batch_size,
        "max_iterations": spec.max_iterations,
        "submit_time": spec.submit_time,
        "deadline": spec.deadline,
        "requested_gpus": spec.requested_gpus,
        "user": spec.user,
    }


def _trace_config_payload(config: ClusterTraceConfig) -> dict:
    return {
        "name": config.name,
        "cluster_gpus": config.cluster_gpus,
        "n_jobs": config.n_jobs,
        "target_load": config.target_load,
        "duration_median_s": config.duration_median_s,
        "duration_sigma": config.duration_sigma,
        "duration_max_s": config.duration_max_s,
        "gpu_weights": {str(k): config.gpu_weights[k] for k in sorted(config.gpu_weights)},
        "burst_fraction": config.burst_fraction,
        "n_bursts": config.n_bursts,
    }


@dataclass(frozen=True)
class WorkloadSpec:
    """A reproducible description of one workload.

    Two flavours:

    - *generative*: a trace configuration plus the seeds of the two random
      streams (trace realisation, job instantiation).  Compact, and the
      normal case for the figure drivers.
    - *inline*: an explicit tuple of job specs, for callers that built or
      loaded a workload some other way.  Fingerprints then cover every job
      field.
    """

    trace_config: ClusterTraceConfig | None = None
    trace_seed: int = 0
    jobs_seed: int = 0
    deadlines: DeadlineAssigner | None = None
    best_effort_fraction: float = 0.0
    inline_specs: tuple[JobSpec, ...] | None = None

    def __post_init__(self) -> None:
        if (self.trace_config is None) == (self.inline_specs is None):
            raise ConfigurationError(
                "exactly one of trace_config and inline_specs must be given"
            )

    @classmethod
    def generative(
        cls,
        trace_config: ClusterTraceConfig,
        *,
        trace_seed: int,
        jobs_seed: int,
        deadlines: DeadlineAssigner | None = None,
        best_effort_fraction: float = 0.0,
    ) -> "WorkloadSpec":
        return cls(
            trace_config=trace_config,
            trace_seed=trace_seed,
            jobs_seed=jobs_seed,
            deadlines=deadlines,
            best_effort_fraction=best_effort_fraction,
        )

    @classmethod
    def inline(cls, specs: list[JobSpec] | tuple[JobSpec, ...]) -> "WorkloadSpec":
        if not specs:
            raise ConfigurationError("inline workload must contain jobs")
        return cls(inline_specs=tuple(specs))

    def materialize(self, throughput: ThroughputModel) -> list[JobSpec]:
        """Rebuild the job list exactly as the submitting caller would."""
        if self.inline_specs is not None:
            return list(self.inline_specs)
        trace = generate_trace(self.trace_config, seed=self.trace_seed)
        return build_jobs(
            trace,
            throughput,
            seed=self.jobs_seed,
            deadlines=self.deadlines,
            best_effort_fraction=self.best_effort_fraction,
        )

    def payload(self) -> dict:
        """Canonical fingerprint payload (see :mod:`repro.parallel.fingerprint`)."""
        deadlines = None
        if self.deadlines is not None:
            deadlines = {
                "lambda_min": self.deadlines.lambda_min,
                "lambda_max": self.deadlines.lambda_max,
            }
        if self.inline_specs is not None:
            return {
                "kind": "inline",
                "jobs": [_jobspec_payload(spec) for spec in self.inline_specs],
            }
        return {
            "kind": "generative",
            "trace": _trace_config_payload(self.trace_config),
            "trace_seed": self.trace_seed,
            "jobs_seed": self.jobs_seed,
            "deadlines": deadlines,
            "best_effort_fraction": self.best_effort_fraction,
        }


@dataclass(frozen=True)
class PolicySpec:
    """A scheduler policy by registry name plus its knob values."""

    name: str
    knobs: tuple[tuple[str, float], ...] = ()

    @classmethod
    def of(cls, name: str, **knobs: float) -> "PolicySpec":
        return cls(name=name, knobs=tuple(sorted(knobs.items())))

    def build(self):
        return make_policy(self.name, **dict(self.knobs))

    def payload(self) -> dict:
        return {"name": self.name, "knobs": {k: v for k, v in self.knobs}}


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to replay one simulation cell from scratch.

    ``execute`` is the single entrypoint both the serial fallback and the
    process-pool workers call; the only difference between the two paths is
    *where* it runs, which is why their results are bit-identical.
    """

    workload: WorkloadSpec
    policy: PolicySpec
    cluster: ClusterSpec
    slot_seconds: float = 600.0
    overheads_enabled: bool = True
    record_timeline: bool = False
    record_efficiency: bool = True
    interconnect: InterconnectSpec = field(default_factory=lambda: DGX_A100_INTERCONNECT)
    power_of_two: bool = True
    max_events: int = 2_000_000

    def throughput_model(self) -> ThroughputModel:
        return ThroughputModel(self.interconnect, power_of_two=self.power_of_two)

    def executor(self) -> ElasticExecutor:
        if self.overheads_enabled:
            return ElasticExecutor()
        return ElasticExecutor.disabled()

    def execute(self) -> SimulationResult:
        """Rebuild the simulator from this description and run it."""
        from repro.sim.engine import Simulator

        throughput = self.throughput_model()
        specs = self.workload.materialize(throughput)
        simulator = Simulator(
            self.cluster,
            self.policy.build(),
            specs,
            throughput=throughput,
            slot_seconds=self.slot_seconds,
            executor=self.executor(),
            record_timeline=self.record_timeline,
            record_efficiency=self.record_efficiency,
            max_events=self.max_events,
        )
        return simulator.run()

    def payload(self) -> dict:
        """Canonical fingerprint payload covering every input of ``execute``."""
        return {
            "workload": self.workload.payload(),
            "policy": self.policy.payload(),
            "cluster": {
                "n_nodes": self.cluster.n_nodes,
                "gpus_per_node": self.cluster.gpus_per_node,
                "gpus_per_pcie_group": self.cluster.gpus_per_pcie_group,
                "nodes_per_rack": self.cluster.nodes_per_rack,
            },
            "slot_seconds": self.slot_seconds,
            "overheads_enabled": self.overheads_enabled,
            "record_timeline": self.record_timeline,
            "record_efficiency": self.record_efficiency,
            "interconnect": {
                "gpus_per_node": self.interconnect.gpus_per_node,
                "hcas_per_node": self.interconnect.hcas_per_node,
                "intra_node": {
                    "alpha_s": self.interconnect.intra_node.alpha_s,
                    "beta_bytes_per_s": self.interconnect.intra_node.beta_bytes_per_s,
                },
                "inter_node": {
                    "alpha_s": self.interconnect.inter_node.alpha_s,
                    "beta_bytes_per_s": self.interconnect.inter_node.beta_bytes_per_s,
                },
            },
            "power_of_two": self.power_of_two,
            "max_events": self.max_events,
        }
