"""The content-addressed run cache under ``.repro-cache/``.

Layout: one JSON envelope per completed run at
``<root>/<fp[:2]>/<fp>.json``, where ``fp`` is the spec's SHA-256
fingerprint (two-character fan-out keeps directories small on big
sweeps).  The envelope stores the fingerprint, the salt, the full spec
payload (for debuggability — ``repro cache`` can explain what a hit was
keyed on), and the canonical result encoding from
:mod:`repro.sim.serialize`.

Writes are atomic (temp file + ``os.replace``) so a worker crash never
leaves a half-written entry, and every *completed* cell of a sweep that
died survives for the next attempt — resuming is just re-running the
sweep.  A corrupt or salt-mismatched entry reads as a miss and is
discarded.

Wipe the cache with ``repro cache --wipe`` or simply ``rm -rf
.repro-cache`` — entries carry no state beyond the files themselves.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.parallel.fingerprint import CODE_VERSION, fingerprint_run
from repro.sim.metrics import SimulationResult
from repro.sim.serialize import result_from_dict, result_to_dict

__all__ = ["RunCache", "default_cache_dir"]

_ENV_VAR = "REPRO_CACHE_DIR"
_DEFAULT_DIR = ".repro-cache"
_ENVELOPE_SCHEMA = 1


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(_ENV_VAR) or _DEFAULT_DIR)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evicted_corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evicted_corrupt": self.evicted_corrupt,
        }


@dataclass
class RunCache:
    """Content-addressed persistence for :class:`SimulationResult`.

    Args:
        root: Cache directory; defaults to :func:`default_cache_dir`.
        salt: Code-version salt folded into every fingerprint.  Changing
            it orphans all existing entries (they simply stop matching).
    """

    root: Path = field(default_factory=default_cache_dir)
    salt: str = CODE_VERSION
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------- addressing
    def fingerprint(self, spec) -> str:
        return fingerprint_run(spec, salt=self.salt)

    def path_for(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------ reads
    def get(self, spec) -> SimulationResult | None:
        """The cached result for a spec, or ``None`` on a miss."""
        fingerprint = self.fingerprint(spec)
        path = self.path_for(fingerprint)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return None
        try:
            envelope = json.loads(text)
            if (
                envelope["schema"] != _ENVELOPE_SCHEMA
                or envelope["fingerprint"] != fingerprint
                or envelope["salt"] != self.salt
            ):
                raise ValueError("envelope does not match its address")
            result = result_from_dict(envelope["result"])
        except Exception:
            # A truncated write, a hand-edited file, or an entry written by
            # an incompatible version: discard it and report a miss.
            self.stats.misses += 1
            self.stats.evicted_corrupt += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    # ----------------------------------------------------------------- writes
    def put(self, spec, result: SimulationResult) -> Path:
        """Persist one completed run atomically; returns the entry path."""
        fingerprint = self.fingerprint(spec)
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "schema": _ENVELOPE_SCHEMA,
            "fingerprint": fingerprint,
            "salt": self.salt,
            "spec": spec.payload(),
            "result": result_to_dict(result),
        }
        text = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        tmp = path.parent / f".tmp-{os.getpid()}-{fingerprint[:16]}"
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------ maintenance
    def entries(self) -> list[Path]:
        """Every entry file currently in the cache."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def wipe(self) -> int:
        """Delete every entry (and empty shard directories); returns count."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for shard in sorted(self.root.iterdir()):
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        return removed
