"""The seed-spawn scheme for deriving independent child seeds.

Sweeps used to derive child seeds by arithmetic on the master seed
(``seed + 1``, ``seed + index``), which collides across adjacent sweep
points: the jobs stream of point ``i`` reused the trace stream of point
``i + 1``, silently correlating supposedly independent runs.

``spawn_seed`` replaces that arithmetic.  A child seed is the leading 63
bits of ``SHA-256("repro-seed-spawn\\0<master>\\0<label>\\0<label>...")``,
where the labels name the stream (``"trace"``, ``"jobs"``, a sweep index,
a trace name).  Distinct ``(master, path)`` tuples map to statistically
independent points of a 2^63 space, so nearby masters and nearby sweep
indices cannot collide by construction; the regression test covers the
exact ``seed + 1`` aliasing the old scheme exhibited.

The scheme is pure stdlib, stable across platforms and Python versions
(SHA-256 of a canonical byte string), and therefore safe to embed in
content fingerprints.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError

__all__ = ["spawn_seed"]

_DOMAIN = b"repro-seed-spawn"


def spawn_seed(master: int, *path: object) -> int:
    """Derive one child seed from a master seed and a stream path.

    Args:
        master: The experiment's master seed.
        path: Labels naming the derived stream, e.g. ``("trace",)`` or
            ``("fig8b", 3, "jobs")``.  Each label is rendered with ``str``;
            at least one is required.

    Returns:
        A seed in ``[0, 2**63)``, suitable for ``numpy.random.default_rng``.

    Raises:
        ConfigurationError: When no path labels are given.
    """
    if not path:
        raise ConfigurationError("spawn_seed needs at least one path label")
    message = b"\0".join(
        [_DOMAIN, str(int(master)).encode()] + [str(label).encode() for label in path]
    )
    digest = hashlib.sha256(message).digest()
    return int.from_bytes(digest[:8], "big") >> 1
