"""Content fingerprints for run specs.

A fingerprint is ``SHA-256(canonical JSON of the RunSpec payload + salt)``.
The payload names every input of the simulation (trace config and seeds,
policy knobs, cluster shape, slot width, overhead toggle, interconnect
constants); the salt is a code-version string bumped whenever a change to
the simulator alters results for the *same* payload.  Together they give
the run cache its contract: equal fingerprint implies equal
:class:`~repro.sim.metrics.SimulationResult`, byte for byte.

Canonical JSON: sorted keys, no whitespace, and non-finite floats encoded
as the strings ``"inf"``/``"-inf"``/``"nan"`` (plain ``json.dumps`` would
emit non-standard ``Infinity`` literals — see
:mod:`repro.sim.serialize`, which uses the same encoding).
"""

from __future__ import annotations

import hashlib
import json
import math

from repro.errors import ConfigurationError

__all__ = ["CODE_VERSION", "canonical_json", "fingerprint_payload", "fingerprint_run"]

#: Simulation-semantics version salt.  Bump when a code change alters the
#: results of an unchanged RunSpec payload (new overhead model, different
#: tie-breaks, ...) so stale cache entries miss instead of lying.
CODE_VERSION = "elasticflow-sim-v3"


def _canonicalize(value):
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"fingerprint payload keys must be strings, got {key!r}"
                )
        return {key: _canonicalize(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(item) for item in value]
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise ConfigurationError(
        f"unsupported fingerprint payload type {type(value).__name__}"
    )


def canonical_json(payload: dict) -> str:
    """Deterministic JSON rendering of a payload dictionary."""
    return json.dumps(
        _canonicalize(payload), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint_payload(payload: dict, *, salt: str = CODE_VERSION) -> str:
    """SHA-256 hex fingerprint of one canonical payload under a salt."""
    body = f"{salt}\0{canonical_json(payload)}".encode()
    return hashlib.sha256(body).hexdigest()


def fingerprint_run(spec, *, salt: str = CODE_VERSION) -> str:
    """Fingerprint of one :class:`~repro.parallel.spec.RunSpec`."""
    return fingerprint_payload(spec.payload(), salt=salt)
