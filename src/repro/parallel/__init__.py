"""Deterministic fan-out engine for the experiment grid.

The paper's evaluation is a grid of *independent* simulations — policy x
trace x seed x sweep point.  This package shards that grid across worker
processes and memoises every completed cell in a content-addressed run
cache, so figure suites parallelise across cores and re-runs after
unrelated edits are pure cache hits.

The moving parts:

- :mod:`repro.parallel.seeds` — the documented seed-spawn scheme every
  sweep derives child seeds from (no more ``seed + 1`` collisions).
- :mod:`repro.parallel.spec` — :class:`RunSpec`, the picklable description
  a worker process reconstructs a complete simulation from (trace config,
  policy knobs, cluster shape; never live objects).
- :mod:`repro.parallel.fingerprint` — canonical content fingerprints over
  run specs, salted with a code-version string.
- :mod:`repro.parallel.cache` — the ``.repro-cache/`` store keyed by those
  fingerprints.
- :mod:`repro.parallel.engine` — the executor: cache lookup, in-batch
  deduplication, process-pool fan-out with a bit-identical serial
  fallback, deterministic merge.
"""

from repro.parallel.cache import RunCache, default_cache_dir
from repro.parallel.engine import ExecutionReport, resolve_workers, run_specs, run_specs_report
from repro.parallel.fingerprint import CODE_VERSION, fingerprint_run
from repro.parallel.seeds import spawn_seed
from repro.parallel.spec import PolicySpec, RunSpec, WorkloadSpec

__all__ = [
    "CODE_VERSION",
    "ExecutionReport",
    "PolicySpec",
    "RunCache",
    "RunSpec",
    "WorkloadSpec",
    "default_cache_dir",
    "fingerprint_run",
    "resolve_workers",
    "run_specs",
    "run_specs_report",
    "spawn_seed",
]
