"""The fan-out executor: cache, dedup, process pool, deterministic merge.

``run_specs`` takes the experiment grid as a flat list of
:class:`~repro.parallel.spec.RunSpec` cells and returns their results *in
input order*, regardless of how they were obtained.  Per cell, in order of
preference:

1. **batch dedup** — identical fingerprints inside one batch execute once
   (Fig 8a replays the Fig 6b workload; the shared cells are free);
2. **cache hit** — a previous run persisted the identical spec;
3. **execution** — serial in-process when ``workers == 1``, otherwise a
   spawn-based :class:`ProcessPoolExecutor`.

Determinism contract: a worker rebuilds the whole simulation from the
picklable spec (fresh interpreter, fresh RNGs derived from the seeds in
the spec, fresh planning caches), so the two execution paths produce
byte-identical results — ``workers=N`` only changes wall-clock time, never
a number.  Completed cells are cached *as they finish*; when one cell of a
sweep crashes, everything that completed is already on disk and the next
attempt resumes from there.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import fingerprint_run
from repro.parallel.spec import RunSpec
from repro.sim.metrics import SimulationResult

__all__ = ["ExecutionReport", "resolve_workers", "run_specs", "run_specs_report"]


def resolve_workers(workers: int | str) -> int:
    """Normalise a ``workers`` knob: a positive int or ``"auto"``."""
    if workers == "auto":
        return max(1, os.cpu_count() or 1)
    if isinstance(workers, float) and not workers.is_integer():
        raise ConfigurationError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        )
    try:
        count = int(workers)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"workers must be a positive integer or 'auto', got {workers!r}"
        ) from None
    if count < 1:
        raise ConfigurationError(f"workers must be >= 1, got {count}")
    return count


@dataclass(frozen=True)
class ExecutionReport:
    """How one batch was satisfied (for benchmarks and tests).

    Attributes:
        results: One result per input spec, in input order.
        fingerprints: The content fingerprint of each input spec.
        cache_hits: Unique cells answered from the run cache.
        deduplicated: Input cells that aliased an earlier cell in the batch.
        executed: Unique cells that actually simulated.
        workers: Resolved worker count used for execution.
    """

    results: tuple[SimulationResult, ...]
    fingerprints: tuple[str, ...]
    cache_hits: int
    deduplicated: int
    executed: int
    workers: int


def _execute_spec(spec: RunSpec) -> SimulationResult:
    """The worker entrypoint (top-level, importable under spawn)."""
    return spec.execute()


def _execute_pool(
    pending: list[tuple[str, RunSpec]],
    workers: int,
    cache: RunCache | None,
) -> tuple[dict[str, SimulationResult], dict[str, Exception]]:
    """Run the pending cells on a spawn pool; cache each as it completes."""
    done: dict[str, SimulationResult] = {}
    failures: dict[str, Exception] = {}
    with ProcessPoolExecutor(
        max_workers=min(workers, len(pending)), mp_context=get_context("spawn")
    ) as pool:
        futures = {
            pool.submit(_execute_spec, spec): (fingerprint, spec)
            for fingerprint, spec in pending
        }
        outstanding = set(futures)
        while outstanding:
            finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in finished:
                fingerprint, spec = futures[future]
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 — reported per cell below
                    failures[fingerprint] = exc
                    continue
                done[fingerprint] = result
                if cache is not None:
                    cache.put(spec, result)
    return done, failures


def run_specs_report(
    specs: Sequence[RunSpec],
    *,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> ExecutionReport:
    """Satisfy a batch of run specs; see the module docstring for the plan.

    Raises:
        ConfigurationError: For an empty batch or an invalid ``workers``.
        SimulationError: When any cell fails; completed cells are already
            persisted to the cache, so re-running the batch resumes.
    """
    if not specs:
        raise ConfigurationError("run_specs needs at least one spec")
    worker_count = resolve_workers(workers)
    fingerprints = [fingerprint_run(spec, salt=cache.salt) if cache else fingerprint_run(spec) for spec in specs]

    # In-batch dedup: the first occurrence of a fingerprint owns the cell.
    owner_of: dict[str, int] = {}
    for index, fingerprint in enumerate(fingerprints):
        owner_of.setdefault(fingerprint, index)
    deduplicated = len(specs) - len(owner_of)

    resolved: dict[str, SimulationResult] = {}
    pending: list[tuple[str, RunSpec]] = []
    cache_hits = 0
    for fingerprint, index in owner_of.items():
        cached = cache.get(specs[index]) if cache is not None else None
        if cached is not None:
            resolved[fingerprint] = cached
            cache_hits += 1
        else:
            pending.append((fingerprint, specs[index]))

    failures: dict[str, Exception] = {}
    if pending and worker_count > 1:
        done, failures = _execute_pool(pending, worker_count, cache)
        resolved.update(done)
    elif pending:
        # Serial fallback: identical entrypoint, identical order, same
        # incremental caching — only the host process differs.
        for fingerprint, spec in pending:
            try:
                result = _execute_spec(spec)
            except Exception as exc:  # noqa: BLE001 — reported per cell below
                failures[fingerprint] = exc
                continue
            resolved[fingerprint] = result
            if cache is not None:
                cache.put(spec, result)

    if failures:
        first_fp, first_exc = next(
            (fp, failures[fp]) for fp in fingerprints if fp in failures
        )
        raise SimulationError(
            f"{len(failures)} of {len(pending)} executed cells failed "
            f"(first: {specs[owner_of[first_fp]].policy.name} -> "
            f"{type(first_exc).__name__}: {first_exc}); completed cells are "
            f"cached — fix the failure and re-run to resume"
        ) from first_exc

    results = tuple(resolved[fingerprint] for fingerprint in fingerprints)
    return ExecutionReport(
        results=results,
        fingerprints=tuple(fingerprints),
        cache_hits=cache_hits,
        deduplicated=deduplicated,
        executed=len(pending),
        workers=worker_count,
    )


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: int | str = 1,
    cache: RunCache | None = None,
) -> list[SimulationResult]:
    """Results for a batch of specs, in input order (see run_specs_report)."""
    return list(
        run_specs_report(specs, workers=workers, cache=cache).results
    )
