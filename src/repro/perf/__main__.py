"""``python -m repro.perf`` — run the scheduling-hot-loop benchmarks."""

import sys

from repro.perf.bench import main

if __name__ == "__main__":
    sys.exit(main())
