"""Memoized planning tables for the scheduling hot loop.

``planning_job`` historically rebuilt two O(capacity) lookup tables — the
effective-throughput table ``T[x]`` and the best-runnable-size table
``S[x]`` — for *every job on every scheduling event*, each entry costing a
Python-level ``curve.throughput(x)`` call.  Those tables depend only on the
scaling curve and the table width, so this module caches them per curve
instance and hands planning a shared read-only view.

Contract (see ``docs/performance.md``):

- Tables are keyed by ``(curve identity, capacity)``.  A curve whose
  throughput can change over time (e.g. the live-corrected curves of
  :class:`repro.profiles.online.OnlineThroughputModel`) **must** call
  :func:`invalidate_planning_tables` whenever an observation lands; the
  online model does this automatically.
- Every table set carries a monotonically increasing ``token``.  Downstream
  memoisation (the admission baseline cache) fingerprints jobs by this
  token, so a rebuilt table automatically invalidates every dependent
  cached plan.
- :func:`planning_cache_disabled` is the correctness escape hatch: inside
  the context every lookup recomputes from the curve, bypassing and not
  populating the store.  Scheduling decisions must be identical either way
  (enforced by ``tests/test_perf_equivalence.py``).

The module is dependency-light on purpose (numpy only): both ``repro.core``
and ``repro.profiles`` import it without creating a cycle.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from repro.perf.coherence import invalidates

__all__ = [
    "PlanningTables",
    "compute_planning_tables",
    "planning_tables_for",
    "invalidate_planning_tables",
    "curve_revision",
    "cache_enabled",
    "set_cache_enabled",
    "planning_cache_disabled",
    "batching_enabled",
    "set_batching_enabled",
    "batched_solver_disabled",
    "frame_enabled",
    "set_frame_enabled",
    "planning_frame_disabled",
    "sim_vector_enabled",
    "set_sim_vector_enabled",
    "sim_vector_disabled",
    "seed_index_enabled",
    "set_seed_index_enabled",
    "seed_index_disabled",
    "fused_commit_enabled",
    "set_fused_commit_enabled",
    "fused_commit_disabled",
    "tables_global_revision",
    "cache_stats",
    "ladder_consts",
    "note_warm_fill",
    "note_batch_fill",
    "note_batched_walk",
    "reset_cache",
]


@dataclass(frozen=True)
class PlanningTables:
    """The per-curve lookup tables the planning algorithms consume.

    Attributes:
        sizes: Candidate GPU-count caps in increasing order.
        throughput_table: ``T[x]`` — effective iterations/sec at ``x`` GPUs
            (monotone non-decreasing, ``T[0] == 0``).  Read-only.
        size_table: ``S[x]`` — GPUs actually used when handed ``x``.
            Read-only.
        token: Monotone build counter; two lookups returning the same token
            are guaranteed to hold identical tables.  Fresh computations
            (cache disabled, or a post-invalidation rebuild) always receive
            a new token, so stale fingerprints can never collide.
    """

    sizes: tuple[int, ...]
    throughput_table: np.ndarray
    size_table: np.ndarray
    token: int


_token_counter = itertools.count()
_store: "WeakKeyDictionary[object, dict[int, PlanningTables]]" = WeakKeyDictionary()
_revisions: "WeakKeyDictionary[object, int]" = WeakKeyDictionary()
_enabled: bool = True
_batching: bool = True
_frame: bool = True
_sim_vector: bool = True
_seed_index: bool = True
_fused_commit: bool = True
_global_revision: int = 0
_stats = {
    "hits": 0,
    "misses": 0,
    "bypasses": 0,
    "invalidations": 0,
    "warm_hits": 0,
    "warm_misses": 0,
    "batch_hits": 0,
    "batch_misses": 0,
}


def compute_planning_tables(curve, capacity: int) -> PlanningTables:
    """Build the tables from scratch (always; never consults the store).

    Matches the historical inline computation bit-for-bit: ``T[x]`` is the
    running maximum of ``curve.throughput`` over allowed sizes ``<= x`` and
    ``S[x]`` is the size achieving it (first size on ties).
    """
    sizes = tuple(curve.allowed_sizes(capacity))
    throughput_table = np.zeros(capacity + 1, dtype=np.float64)
    size_table = np.zeros(capacity + 1, dtype=np.int64)
    allowed = set(sizes)
    best_size, best_thr = 0, 0.0
    for x in range(1, capacity + 1):
        if x in allowed:
            thr = curve.throughput(x)
            if thr > best_thr:
                best_size, best_thr = x, thr
        throughput_table[x] = best_thr
        size_table[x] = best_size
    throughput_table.flags.writeable = False
    size_table.flags.writeable = False
    return PlanningTables(
        sizes=sizes,
        throughput_table=throughput_table,
        size_table=size_table,
        token=next(_token_counter),
    )


def planning_tables_for(curve, capacity: int) -> PlanningTables:
    """Memoized planning tables for one ``(curve, capacity)`` pair."""
    if not _enabled:
        _stats["bypasses"] += 1
        return compute_planning_tables(curve, capacity)
    per_curve = _store.get(curve)
    if per_curve is None:
        per_curve = {}
        _store[curve] = per_curve
    tables = per_curve.get(capacity)
    if tables is None:
        _stats["misses"] += 1
        tables = compute_planning_tables(curve, capacity)
        per_curve[capacity] = tables
    else:
        _stats["hits"] += 1
    return tables


@invalidates("planning_tables")
def invalidate_planning_tables(curve) -> None:
    """Drop every cached table of one curve (all capacities).

    Call this whenever the curve's ``throughput`` answers may have changed;
    the next lookup rebuilds with a fresh token, which also invalidates any
    downstream plan fingerprints.  The curve's *revision* is bumped even if
    no table was cached, so revision-keyed memos elsewhere (e.g. the
    simulator's per-placement rate memo) always see the change.  The
    module-wide :func:`tables_global_revision` counter advances too, so
    whole-set validity checks (the simulator's vectorized rate array) can
    detect *any* curve movement with one integer compare instead of
    re-deriving per-curve revisions.
    """
    global _global_revision
    _revisions[curve] = _revisions.get(curve, 0) + 1
    _global_revision += 1
    if _store.pop(curve, None) is not None:
        _stats["invalidations"] += 1


#: Per-(table build, cap) ladder constants for warm-hint verification.
#: Each entry holds ``(sizes, value)`` where ``sizes`` is the build's
#: ladder tuple (kept for identity validation) and ``value`` is
#: ``(S[cap], T[S[cap]], next-lower cap, T[S[below]])`` — or ``None``
#: when the cap is not in that build's ladder.  The values are pure
#: functions of the table build, so entries can never go stale; the
#: bound only exists to keep a pathological run from growing the dict
#: without limit.
_ladder_consts: dict[
    tuple[int, int], tuple[object, tuple[int, float, int, float] | None]
] = {}
_LADDER_CONSTS_LIMIT = 65536


def ladder_consts(
    token: int,
    cap: int,
    sizes: object,
    sizes_arr: np.ndarray,
    size_table: np.ndarray,
    throughput_table: np.ndarray,
) -> tuple[int, float, int, float] | None:
    """Hint-cap constants of one table build, memoized by ``(token, cap)``.

    Returns ``(s_cap, thr_hint, below, thr_below)`` — the GPUs actually
    used at the hinted cap, its constant per-slot throughput, the
    next-lower ladder cap (``0`` when the hint is already the smallest)
    and that cap's throughput — or ``None`` when ``cap`` is not in the
    ladder (a stale hint from a different build).  These are exactly the
    scalars the warm verification derives per call; hoisting them here
    removes a ``searchsorted`` and four table lookups from every
    warm-hinted fill.

    A hit additionally requires the entry's ``sizes`` to be the *same
    object* as the caller's: every view of one memoized table build
    shares the build's ladder tuple, so real tokens always validate,
    while hand-built views that stamp non-unique tokens (test fixtures)
    fail the identity check and recompute instead of reading another
    ladder's constants.  Hand-built views (``token == -1``) and the
    cache-disabled mode always compute fresh.
    """
    memoize = token >= 0 and _enabled
    if memoize:
        key = (token, cap)
        entry = _ladder_consts.get(key)
        if entry is not None and entry[0] is sizes:
            return entry[1]
    idx = int(np.searchsorted(sizes_arr, cap))
    if idx >= sizes_arr.size or int(sizes_arr[idx]) != cap:
        value = None
    else:
        s_cap = int(size_table[cap])
        thr_hint = float(throughput_table[s_cap])
        if idx > 0:
            below = int(sizes_arr[idx - 1])
            thr_below = float(throughput_table[int(size_table[below])])
        else:
            below, thr_below = 0, 0.0
        value = (s_cap, thr_hint, below, thr_below)
    if memoize:
        if len(_ladder_consts) >= _LADDER_CONSTS_LIMIT:
            _ladder_consts.clear()
        _ladder_consts[key] = (sizes, value)
    return value


def tables_global_revision() -> int:
    """Module-wide invalidation counter covering *every* curve.

    Advances whenever :func:`invalidate_planning_tables` or
    :func:`reset_cache` runs.  Memos spanning many curves (one array per
    active set, not per curve) key on this so a single integer compare
    proves no curve moved since the memo was built.
    """
    return _global_revision


def curve_revision(curve) -> int:
    """Monotone per-curve invalidation counter (0 until first invalidation).

    Include this in the key of any memo derived from a curve's throughput:
    the counter changes exactly when :func:`invalidate_planning_tables`
    reports the curve's answers may have moved.
    """
    return _revisions.get(curve, 0)


def cache_enabled() -> bool:
    """Whether memoisation is currently on."""
    return _enabled


def set_cache_enabled(enabled: bool) -> bool:
    """Flip the global cache switch; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def planning_cache_disabled():
    """Context manager: recompute everything from the curves, no memo.

    This is the escape hatch the decision-equivalence tests (and any
    debugging session that suspects a stale cache) run under.
    """
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def batching_enabled() -> bool:
    """Whether the batched multi-job solver layer is currently on.

    The batched solver (see ``repro.core.batch`` and the admission
    controller's ``_fill_batched``/``_delta_fill_indexed``) is a separate
    toggle from the memo switch: turning it off while leaving the caches on
    yields the sequential per-job solver of the previous generation, which
    is the reference the scale-equivalence benchmarks compare against
    (running the fully uncached reference at 16k GPUs is intractable).
    Call sites must still gate on :func:`cache_enabled` first — the
    cache-disabled escape hatch always routes to the reference scan.
    """
    return _batching


def set_batching_enabled(enabled: bool) -> bool:
    """Flip the batched-solver switch; returns the previous setting."""
    global _batching
    previous = _batching
    _batching = bool(enabled)
    return previous


@contextmanager
def batched_solver_disabled():
    """Context manager: solve sequentially per job, caches still on.

    The mid/xl-scale decision-digest checks run under this to compare the
    batched commit walk against the sequential fill it replaced.
    """
    previous = set_batching_enabled(False)
    try:
        yield
    finally:
        set_batching_enabled(previous)


def frame_enabled() -> bool:
    """Whether the persistent planning frame (``scheduler._PlanningFrame``)
    is on.

    The frame keeps the whole active set's planning views as stacked
    arrays updated in place across events; turning it off restores the
    per-event LRU rebuild path of the previous generation.  Call sites
    must still gate on :func:`cache_enabled` first.
    """
    return _frame


def set_frame_enabled(enabled: bool) -> bool:
    """Flip the planning-frame switch; returns the previous setting."""
    global _frame
    previous = _frame
    _frame = bool(enabled)
    return previous


@contextmanager
def planning_frame_disabled():
    """Context manager: rebuild planning views per event (no frame).

    The escape-hatch parity tests run the identical workload under this
    and assert decision-digest equivalence against the frame path.
    """
    previous = set_frame_enabled(False)
    try:
        yield
    finally:
        set_frame_enabled(previous)


def sim_vector_enabled() -> bool:
    """Whether the simulator's vectorized SoA progress advance is on.

    When off (or whenever the SoA preconditions fail — cache disabled, an
    observation hook installed, or a curve revision moved), the simulator
    falls back to the scalar per-job ``Job.advance`` loop.
    """
    return _sim_vector


def set_sim_vector_enabled(enabled: bool) -> bool:
    """Flip the vectorized-sim-progress switch; returns the previous
    setting."""
    global _sim_vector
    previous = _sim_vector
    _sim_vector = bool(enabled)
    return previous


@contextmanager
def sim_vector_disabled():
    """Context manager: advance job progress with the scalar per-job loop."""
    previous = set_sim_vector_enabled(False)
    try:
        yield
    finally:
        set_sim_vector_enabled(previous)


def seed_index_enabled() -> bool:
    """Whether the incremental Algorithm 2 seed index is on.

    The seed index persists each job's first-upgrade candidate across
    events (see ``repro.core.allocation.UpgradeSeedIndex``); turning it
    off re-runs the scalar proposal gates for every job on every event.
    """
    return _seed_index


def set_seed_index_enabled(enabled: bool) -> bool:
    """Flip the Alg 2 seed-index switch; returns the previous setting."""
    global _seed_index
    previous = _seed_index
    _seed_index = bool(enabled)
    return previous


@contextmanager
def seed_index_disabled():
    """Context manager: re-derive every first-upgrade candidate from
    scratch."""
    previous = set_seed_index_enabled(False)
    try:
        yield
    finally:
        set_seed_index_enabled(previous)


def fused_commit_enabled() -> bool:
    """Whether ``_fill_batched`` commits fast-accept runs as fused array
    updates.

    When off, every accepted plan is committed to the shared usage ledger
    with its own O(window) array add, as the previous generation did.
    """
    return _fused_commit


def set_fused_commit_enabled(enabled: bool) -> bool:
    """Flip the fused-commit switch; returns the previous setting."""
    global _fused_commit
    previous = _fused_commit
    _fused_commit = bool(enabled)
    return previous


@contextmanager
def fused_commit_disabled():
    """Context manager: commit each accepted plan individually."""
    previous = set_fused_commit_enabled(False)
    try:
        yield
    finally:
        set_fused_commit_enabled(previous)


def cache_stats() -> dict[str, int]:
    """Hit/miss/bypass/invalidation counters (copies; for tests & bench)."""
    return dict(_stats)


def note_warm_fill(hit: bool) -> None:
    """Count one warm-hint fill attempt (verified reuse vs full-scan fallback).

    Warm-started progressive fills (see ``repro.core.admission``) record
    their outcome here so the benchmark can report how often the O(window)
    verification actually short-circuits the 2-D cap scan.
    """
    if hit:
        _stats["warm_hits"] += 1
    else:
        _stats["warm_misses"] += 1


def note_batch_fill(hit: bool) -> None:
    """Count one batched-row fill attempt (emitted from the batch vs fell
    back to the per-job sequential fill)."""
    if hit:
        _stats["batch_hits"] += 1
    else:
        _stats["batch_misses"] += 1


def note_batched_walk(accepts: int, fallbacks: int) -> None:
    """Bulk-record one batched commit walk's fill outcomes.

    Each fast accept is both a verified warm fill and a batch-emitted
    plan; each fallback is a batch miss (its warm outcome is recorded by
    the sequential fill it runs).  One call per walk replaces two counter
    calls per job in the hottest admission loop.
    """
    _stats["warm_hits"] += accepts
    _stats["batch_hits"] += accepts
    _stats["batch_misses"] += fallbacks


def note_plan_memo_fills(count: int) -> None:
    """Bulk-record warm fills served from the upgrade engine's plan memo.

    Each memo hit is both a warm-hint hit and a batch-emitted fill; the
    engine accumulates them locally and flushes once per Algorithm 2 call
    instead of paying two counter calls per hit in the hot loop.
    """
    _stats["warm_hits"] += count
    _stats["batch_hits"] += count


@invalidates("planning_tables")
def reset_cache() -> None:
    """Forget every cached table and zero the counters."""
    global _global_revision
    _store.clear()
    _ladder_consts.clear()
    _global_revision += 1
    for key in _stats:
        _stats[key] = 0
