"""Performance infrastructure for the scheduling hot loop.

- :mod:`repro.perf.tables` — memoized per-curve planning tables with
  explicit invalidation (consumed by ``repro.core.admission``).
- :mod:`repro.perf.coherence` — the declaration vocabulary
  (``@coherent``/``@keyed``/``@mutates``/``@invalidates``) connecting
  cache-dependent state to its invalidation hooks; checked statically by
  ``python -m repro.analysis`` (rules CC001–CC005).
- :mod:`repro.perf.probe` — dormant-by-default per-event phase timing
  (planning views / Algorithm 1 / Algorithm 2 / engine bookkeeping);
  the bench harness installs a recorder and exports the phase split.
- :mod:`repro.perf.bench` — the benchmark harness behind
  ``python -m repro.perf``; records the perf trajectory in
  ``BENCH_core.json``.

Only the table machinery is re-exported here: the bench harness pulls in
the whole simulator stack and is imported lazily by ``__main__`` so that
``repro.core`` can depend on this package without a cycle.
"""

from repro.perf.coherence import (
    INVALIDATION_REGISTRY,
    coherence_report,
    coherent,
    invalidates,
    keyed,
    mutates,
)
from repro.perf.tables import (
    PlanningTables,
    cache_enabled,
    cache_stats,
    compute_planning_tables,
    invalidate_planning_tables,
    planning_cache_disabled,
    planning_tables_for,
    reset_cache,
    set_cache_enabled,
)

__all__ = [
    "INVALIDATION_REGISTRY",
    "PlanningTables",
    "cache_enabled",
    "coherence_report",
    "coherent",
    "invalidates",
    "keyed",
    "mutates",
    "cache_stats",
    "compute_planning_tables",
    "invalidate_planning_tables",
    "planning_cache_disabled",
    "planning_tables_for",
    "reset_cache",
    "set_cache_enabled",
]
