"""Cache-coherence declarations for the scheduling hot loop.

PR 1 introduced several layers of memoisation (planning tables, fill
fingerprints, revision-keyed memos) whose correctness hangs on one
contract: **every mutation of state that a cached value was derived from
must reach the matching invalidation hook**.  That contract used to live in
docstrings; this module turns it into machine-checkable declarations that
the static analyser (``python -m repro.analysis``, rules CC001-CC005)
verifies on every run.

Vocabulary (all decorators are zero-cost at runtime — they only attach
metadata):

- :func:`coherent` — class decorator declaring *hook-invalidated* fields:
  ``@coherent(_corrections="planning_tables")`` says "caches derived from
  ``self._corrections`` are kept coherent by the ``planning_tables``
  invalidation; whoever mutates the field must trigger it".  The special
  dependencies ``"frozen"`` (never mutated after construction) and
  ``"verified"`` (advisory state re-validated at every use) need no hook.
  A verified field may additionally *name its verifier(s)* —
  ``"verified:window_undisturbed"`` — promising that every read crossing
  a cache boundary is re-proved by a call to that function (checked
  interprocedurally by rule IP005).
- :func:`keyed` — class decorator declaring *key-invalidated* memo fields:
  ``@keyed(_rate_memo="curve_revision")`` says "entries of
  ``self._rate_memo`` stay coherent because their keys embed
  ``curve_revision(...)``; any method that writes the memo must derive its
  key from that function".
- :func:`mutates` — method/function decorator declaring an intentional
  mutation of coherent fields, either the decorated class's own
  (``@mutates("_corrections")``) or another class's, by qualified name
  (``@mutates("Ledger._plans")``).
- :func:`invalidates` — decorator registering a function as a *provider* of
  one or more named invalidations.  The analyser accepts a call to any
  provider of the right name as discharging a mutator's obligation.

The provider names form the **invalidation registry**
(:data:`INVALIDATION_REGISTRY`): the root provider for ``planning_tables``
is :func:`repro.perf.tables.invalidate_planning_tables`, and every
declaration elsewhere in the tree resolves against entries registered here
at import time.  :func:`coherence_report` exposes the collected metadata
for tests and debugging; :func:`export_contracts` renders the whole
registry (plus any classes handed to it) as one machine-readable document
— the static analyser's interprocedural pass cross-checks its own
source-derived view against this export.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

__all__ = [
    "COHERENT_FIELDS_ATTR",
    "KEYED_FIELDS_ATTR",
    "MUTATES_ATTR",
    "INVALIDATES_ATTR",
    "INVALIDATION_REGISTRY",
    "coherent",
    "keyed",
    "mutates",
    "invalidates",
    "coherence_report",
    "parse_dependency",
    "export_contracts",
]

_F = TypeVar("_F", bound=Callable[..., Any])
_C = TypeVar("_C", bound=type)

#: Attribute name under which :func:`coherent` stores field declarations.
COHERENT_FIELDS_ATTR = "__coherent_fields__"
#: Attribute name under which :func:`keyed` stores memo-key declarations.
KEYED_FIELDS_ATTR = "__keyed_fields__"
#: Attribute name under which :func:`mutates` stores mutated field names.
MUTATES_ATTR = "__coherence_mutates__"
#: Attribute name under which :func:`invalidates` stores provided hooks.
INVALIDATES_ATTR = "__coherence_invalidates__"

#: Invalidation name -> sorted provider qualnames, populated at import time
#: by :func:`invalidates`.  The static analyser re-derives the same mapping
#: from source, so the two views can be cross-checked in tests.
INVALIDATION_REGISTRY: dict[str, tuple[str, ...]] = {}


def coherent(**field_hooks: str) -> Callable[[_C], _C]:
    """Declare hook-invalidated coherent fields on a class.

    Args:
        **field_hooks: Mapping of field name to the invalidation name
            (an :data:`INVALIDATION_REGISTRY` key) that keeps caches
            derived from the field coherent.  Two special names exist:
            ``"frozen"`` declares a field that must never be mutated
            after construction (it feeds a fingerprint; there is no hook
            that could repair a mutation), and ``"verified"`` declares an
            *advisory* field whose every entry is re-validated against
            ground truth at the point of use — staleness can cost time
            but never correctness, so mutators need no invalidation hook
            (e.g. the admission controller's warm-start cap hints).  A
            verified field may name the method(s) that perform the
            re-validation — ``"verified:try_warm_plan"`` — which lets
            the analyser prove every boundary-crossing read actually
            reaches a verifier (rule IP005).
    """

    def decorate(cls: _C) -> _C:
        merged = dict(getattr(cls, COHERENT_FIELDS_ATTR, {}))
        merged.update(field_hooks)
        setattr(cls, COHERENT_FIELDS_ATTR, merged)
        return cls

    return decorate


def keyed(**field_keys: str) -> Callable[[_C], _C]:
    """Declare key-invalidated memo fields on a class.

    Args:
        **field_keys: Mapping of memo field name to the name of the
            revision function its keys must embed (for example
            ``"curve_revision"``).
    """

    def decorate(cls: _C) -> _C:
        merged = dict(getattr(cls, KEYED_FIELDS_ATTR, {}))
        merged.update(field_keys)
        setattr(cls, KEYED_FIELDS_ATTR, merged)
        return cls

    return decorate


def mutates(*fields: str) -> Callable[[_F], _F]:
    """Declare that a function intentionally mutates coherent fields.

    Bare names (``"_corrections"``) refer to fields of the enclosing
    class; dotted names (``"Ledger._plans"``) refer to another class's
    fields and declare a cross-object mutation (which must then happen
    through that class's own declared mutator methods).
    """

    def decorate(func: _F) -> _F:
        existing = getattr(func, MUTATES_ATTR, ())
        setattr(func, MUTATES_ATTR, tuple(existing) + fields)
        return func

    return decorate


def invalidates(*names: str) -> Callable[[_F], _F]:
    """Register a function as a provider of named invalidations."""

    def decorate(func: _F) -> _F:
        existing = getattr(func, INVALIDATES_ATTR, ())
        setattr(func, INVALIDATES_ATTR, tuple(existing) + names)
        qualname = getattr(func, "__qualname__", func.__name__)
        for name in names:
            providers = set(INVALIDATION_REGISTRY.get(name, ()))
            providers.add(qualname)
            INVALIDATION_REGISTRY[name] = tuple(sorted(providers))
        return func

    return decorate


def parse_dependency(dependency: str) -> tuple[str, tuple[str, ...]]:
    """Split one ``@coherent`` dependency string into ``(kind, verifiers)``.

    ``kind`` is ``"frozen"``, ``"verified"`` or ``"hook"``; ``verifiers``
    is the (possibly empty) tuple of function names declared after a
    ``verified:`` prefix.  Examples::

        parse_dependency("ledger_version")  == ("hook", ())
        parse_dependency("frozen")          == ("frozen", ())
        parse_dependency("verified")        == ("verified", ())
        parse_dependency("verified:f,g")    == ("verified", ("f", "g"))
    """
    if dependency == "frozen":
        return "frozen", ()
    if dependency == "verified":
        return "verified", ()
    if dependency.startswith("verified:"):
        names = dependency[len("verified:"):]
        verifiers = tuple(
            name.strip() for name in names.split(",") if name.strip()
        )
        return "verified", verifiers
    return "hook", ()


def export_contracts(classes: tuple[type, ...] = ()) -> dict[str, Any]:
    """Machine-readable dump of every runtime coherence contract.

    Returns a JSON-ready document holding the invalidation registry plus,
    for each class handed in, its coherent/keyed fields (with parsed
    dependency kinds and verifiers) and its declared mutators/providers.
    The static analyser derives the same facts from source; tests diff the
    two views so neither can silently drift.
    """
    contracts: dict[str, Any] = {
        "invalidation_registry": {
            name: list(providers)
            for name, providers in sorted(INVALIDATION_REGISTRY.items())
        },
        "classes": {},
    }
    for cls in classes:
        report = coherence_report(cls)
        fields = {}
        for field_name, dependency in sorted(report["coherent_fields"].items()):
            kind, verifiers = parse_dependency(dependency)
            fields[field_name] = {
                "dependency": dependency,
                "kind": kind,
                "verifiers": list(verifiers),
            }
        contracts["classes"][cls.__qualname__] = {
            "coherent_fields": fields,
            "keyed_fields": dict(sorted(report["keyed_fields"].items())),
            "mutators": {
                name: list(fields_)
                for name, fields_ in sorted(report["mutators"].items())
            },
            "providers": {
                name: list(deps)
                for name, deps in sorted(report["providers"].items())
            },
        }
    return contracts


def coherence_report(cls: type) -> dict[str, Any]:
    """Collected coherence metadata of one class (for tests/debugging)."""
    mutators: dict[str, tuple[str, ...]] = {}
    providers: dict[str, tuple[str, ...]] = {}
    for name in dir(cls):
        try:
            member = getattr(cls, name)
        except AttributeError:  # pragma: no cover - dynamic attributes
            continue
        declared = getattr(member, MUTATES_ATTR, None)
        if declared:
            mutators[name] = tuple(declared)
        provided = getattr(member, INVALIDATES_ATTR, None)
        if provided:
            providers[name] = tuple(provided)
    return {
        "coherent_fields": dict(getattr(cls, COHERENT_FIELDS_ATTR, {})),
        "keyed_fields": dict(getattr(cls, KEYED_FIELDS_ATTR, {})),
        "mutators": mutators,
        "providers": providers,
    }
