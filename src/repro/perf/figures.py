"""Figure-suite benchmark for the parallel experiment engine.

Runs a representative slice of the figure grids (Fig 6a, the lambda
sweep, the Fig 9 ablation) three ways and records the numbers in
``BENCH_parallel.json``:

1. **serial cold** — ``workers=1`` against a fresh cache;
2. **parallel cold** — ``workers=N`` against another fresh cache;
3. **warm** — the same batch again over the parallel run's cache (every
   cell should hit).

Besides wall-clock, the report asserts the determinism contract
(``decisions_match``: the serial and parallel results are byte-identical
under the canonical encoding) and includes the host core count — the
parallel speedup is bounded by physical cores, so a 1-core container
honestly reports ~1x while a 4-core CI runner shows the real fan-out.

Usage::

    python -m repro.perf --suite figures              # full suite
    python -m repro.perf --suite figures --quick      # CI smoke
    python -m repro.perf --suite figures --workers 4
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.cluster.topology import ClusterSpec
from repro.experiments.harness import (
    ExperimentConfig,
    policy_run_specs,
    testbed_workload_spec,
)
from repro.parallel.cache import RunCache
from repro.parallel.engine import resolve_workers, run_specs_report
from repro.parallel.spec import RunSpec
from repro.sim.serialize import result_to_json
from repro.traces.deadlines import DeadlineAssigner

__all__ = ["suite_cells", "run_figure_suite", "DEFAULT_OUTPUT"]

DEFAULT_OUTPUT = "BENCH_parallel.json"
#: CI wall-clock budget for the quick suite (all three passes together).
QUICK_BUDGET_SECONDS = 600.0
FULL_BUDGET_SECONDS = 3600.0


def suite_cells(*, quick: bool = False, seed: int = 0) -> list[RunSpec]:
    """The benchmark grid: fig6a + lambda sweep + fig9 ablation cells."""
    config = ExperimentConfig(seed=seed)
    cells: list[RunSpec] = []

    if quick:
        fig6_gpus, fig6_jobs = 16, 12
        fig6_policies = ["elasticflow", "edf", "gandiva", "tiresias"]
        tightness_values = (0.8, 1.5)
        sweep_gpus, sweep_jobs = 16, 12
        sweep_policies = ["elasticflow", "edf", "chronus"]
        ablation_sizes = (16, 32)
        ablation_gpus, ablation_jobs = 16, 16
    else:
        # Sized so one cell is ~a second of simulation: fan-out only pays
        # when the work dwarfs the per-worker interpreter spawn (~1s).
        fig6_gpus, fig6_jobs = 128, 400
        fig6_policies = [
            "elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus",
        ]
        tightness_values = (0.6, 0.8, 1.0, 1.5, 2.5)
        sweep_gpus, sweep_jobs = 128, 400
        sweep_policies = ["elasticflow", "edf", "gandiva", "chronus"]
        ablation_sizes = (64, 128, 256)
        ablation_gpus, ablation_jobs = 128, 300

    cluster, workload = testbed_workload_spec(
        config, cluster_gpus=fig6_gpus, n_jobs=fig6_jobs, target_load=2.0
    )
    cells.extend(policy_run_specs(fig6_policies, cluster, workload, config))

    for tightness in tightness_values:
        cluster, workload = testbed_workload_spec(
            config,
            cluster_gpus=sweep_gpus,
            n_jobs=sweep_jobs,
            target_load=1.3,
            deadlines=DeadlineAssigner(tightness, tightness),
        )
        cells.extend(policy_run_specs(sweep_policies, cluster, workload, config))

    _, workload = testbed_workload_spec(
        config, cluster_gpus=ablation_gpus, n_jobs=ablation_jobs, target_load=1.4
    )
    for size in ablation_sizes:
        cells.extend(
            policy_run_specs(
                ["edf", "edf+ac", "edf+es", "elasticflow"],
                ClusterSpec(n_nodes=size // 8, gpus_per_node=8),
                workload,
                config,
            )
        )
    return cells


def _timed_pass(
    cells: list[RunSpec], *, workers: int, cache: RunCache
) -> tuple[float, Any]:
    start = time.perf_counter()
    report = run_specs_report(cells, workers=workers, cache=cache)
    return time.perf_counter() - start, report


def run_figure_suite(
    *,
    quick: bool = False,
    seed: int = 0,
    workers: int | str = 4,
) -> dict[str, Any]:
    """Benchmark the suite serial-cold / parallel-cold / warm; see module doc."""
    worker_count = resolve_workers(workers)
    cells = suite_cells(quick=quick, seed=seed)
    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        serial_s, serial = _timed_pass(
            cells, workers=1, cache=RunCache(root=scratch / "serial")
        )
        parallel_cache = RunCache(root=scratch / "parallel")
        parallel_s, parallel = _timed_pass(
            cells, workers=worker_count, cache=parallel_cache
        )
        warm_s, warm = _timed_pass(cells, workers=worker_count, cache=parallel_cache)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    decisions_match = all(
        result_to_json(a) == result_to_json(b)
        for a, b in zip(serial.results, parallel.results)
    ) and all(
        result_to_json(a) == result_to_json(b)
        for a, b in zip(parallel.results, warm.results)
    )
    budget = QUICK_BUDGET_SECONDS if quick else FULL_BUDGET_SECONDS
    total_s = serial_s + parallel_s + warm_s
    return {
        "suite": "figures",
        "quick": quick,
        "seed": seed,
        "cells": len(cells),
        "unique_cells": len(cells) - serial.deduplicated,
        "cores": os.cpu_count() or 1,
        "workers": worker_count,
        "serial_cold_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "warm_speedup": round(parallel_s / warm_s, 3) if warm_s else None,
        "warm_cache_hits": warm.cache_hits,
        "warm_executed": warm.executed,
        "decisions_match": decisions_match,
        "budget_seconds": budget,
        "within_budget": total_s <= budget,
        "total_s": round(total_s, 3),
    }
