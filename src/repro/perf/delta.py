"""Per-phase perf-regression gate over benchmark reports.

A raw events/sec floor conflates runner speed with code regressions: a
slow CI machine trips it without any change, and a fast one hides a real
2x alg2 regression behind headroom.  This gate compares the *shape* of
the run instead — each phase's share of the cached wall clock
(``phase_s / wall_s``) against a committed baseline snapshot — so a
uniform slowdown from a cold runner passes while one layer quietly
absorbing the budget fails.

Usage::

    python -m repro.perf.delta --report BENCH_quick.json \
        --baseline BENCH_baseline.json              # gate (exit 1 on fail)
    python -m repro.perf.delta --report BENCH_quick.json \
        --baseline BENCH_baseline.json --write-baseline

A phase fails when its fraction exceeds ``baseline * (1 + tolerance) +
epsilon``.  The multiplicative tolerance (default 20%) is the regression
budget; the small absolute epsilon keeps tiny phases (a 1% ``other``
residual) from failing on noise that is far below measurement
resolution.  Phases present in the report but absent from the baseline
are ignored (a new phase key is a schema change, caught by the bench
smoke test, not a regression); phases present in the baseline but
missing from the report fail loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

__all__ = ["check_phases", "extract_baseline", "main"]

#: Multiplicative headroom on each phase's wall-clock share.
DEFAULT_TOLERANCE = 0.20
#: Absolute slack (in fraction-of-wall units) below noise resolution.
DEFAULT_EPSILON = 0.02

BASELINE_SCHEMA = 1


def _cached_metrics(report: dict[str, Any]) -> dict[str, Any]:
    try:
        metrics = report["end_to_end"]["cached"]
    except KeyError as exc:
        raise ValueError(f"report missing end_to_end.cached: {exc}") from exc
    if "phases" not in metrics or "wall_s" not in metrics:
        raise ValueError("report's cached metrics lack phases/wall_s")
    return metrics


def _fractions(metrics: dict[str, Any]) -> dict[str, float]:
    wall = float(metrics["wall_s"])
    if wall <= 0.0:
        raise ValueError(f"non-positive wall_s: {wall}")
    return {
        name: float(seconds) / wall
        for name, seconds in metrics["phases"].items()
    }


def _report_fractions(report: dict[str, Any]) -> dict[str, float]:
    """All gated fractions: per-phase shares plus micro-bench pseudo-shares.

    The buddy micro-bench rides along as ``buddy_bench`` — its wall time
    over the cached end-to-end wall.  Dividing two same-process timings
    keeps the runner-speed immunity the phase fractions have, so a buddy
    hot-path regression trips the gate without a raw ops/sec floor.  The
    key is optional on both sides: old baselines simply never gate it, and
    scales that skip the micro benches (mid/xl) omit it from reports.
    """
    metrics = _cached_metrics(report)
    fractions = _fractions(metrics)
    buddy = report.get("buddy")
    if buddy is not None:
        fractions["buddy_bench"] = float(buddy["wall_s"]) / float(
            metrics["wall_s"]
        )
    return fractions


def extract_baseline(report: dict[str, Any]) -> dict[str, Any]:
    """Distill a report into the committed baseline snapshot.

    The absolute numbers (wall, events/sec) ride along for human
    context; only ``fractions`` participates in the gate.
    """
    metrics = _cached_metrics(report)
    return {
        "schema": BASELINE_SCHEMA,
        "scale": report.get("scale"),
        "seed": report.get("seed"),
        "wall_s": round(float(metrics["wall_s"]), 4),
        "events_per_sec": round(float(metrics["events_per_sec"]), 2),
        "fractions": {
            name: round(value, 6)
            for name, value in sorted(_report_fractions(report).items())
        },
    }


def check_phases(
    report: dict[str, Any],
    baseline: dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    epsilon: float = DEFAULT_EPSILON,
) -> list[str]:
    """Return human-readable failure lines; empty means the gate passes."""
    if baseline.get("schema") != BASELINE_SCHEMA:
        return [
            f"baseline schema {baseline.get('schema')!r} != "
            f"{BASELINE_SCHEMA}; regenerate with --write-baseline"
        ]
    current = _report_fractions(report)
    failures = []
    for name, base in sorted(baseline["fractions"].items()):
        if name not in current:
            failures.append(f"phase {name!r} missing from report")
            continue
        limit = base * (1.0 + tolerance) + epsilon
        if current[name] > limit:
            failures.append(
                f"phase {name!r} regressed: {current[name]:.3f} of wall "
                f"vs baseline {base:.3f} (limit {limit:.3f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.delta", description=__doc__
    )
    parser.add_argument("--report", required=True, help="bench report JSON")
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON"
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the report instead of gating",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )
    parser.add_argument("--epsilon", type=float, default=DEFAULT_EPSILON)
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)

    if args.write_baseline:
        baseline = extract_baseline(report)
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline {args.baseline}: {baseline['fractions']}")
        return 0

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    failures = check_phases(
        report, baseline, tolerance=args.tolerance, epsilon=args.epsilon
    )
    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    current = _report_fractions(report)
    shares = ", ".join(
        f"{name}={current[name]:.3f}" for name in sorted(current)
    )
    print(f"perf-delta gate passed ({shares})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
