"""Per-event phase timing for the scheduling hot loop.

The benchmark harness has always timed whole events (the ``_dispatch``
seam in ``repro.perf.bench``); this module adds *phase attribution* inside
one event — planning-view construction, Algorithm 1, Algorithm 2, and the
engine's own bookkeeping — so a perf regression (or win) can be pinned to
a layer instead of read off an aggregate.

The probe is dormant by default: ``tick()`` returns ``0.0`` and ``lap()``
does nothing until a :class:`PhaseRecorder` is installed, so the
instrumented code paths (``ElasticFlowPolicy.allocate``,
``Simulator._reallocate``) pay two no-op function calls per phase and
nothing else.  The benchmark installs a recorder around each simulated
event and reads back the per-phase split::

    recorder = PhaseRecorder()
    with probe.recording(recorder):
        ...                      # run the simulation
    recorder.events              # one {phase: seconds} dict per event

Phases are purely additive wall-clock buckets; time not attributed to a
named phase is the residual the harness reports as ``other``.

Alongside the timing probe this module keeps a flat operation-counter
registry (:func:`bump` / :func:`counters` / :func:`reset_counters`).
Unlike the recorder, counters are *always on*: one dict increment per
counted operation is cheap at the granularity being counted (heap pushes
and pops in the upgrade engine, buddy allocate/free calls), and an
always-on count means unit tests and the bench harness read the same
numbers.  Hot inner loops accumulate locally and flush once via
:func:`add_counters`.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = [
    "PhaseRecorder",
    "recording",
    "install",
    "uninstall",
    "tick",
    "lap",
    "bump",
    "add_counters",
    "counters",
    "reset_counters",
]

#: Canonical phase names, in hot-loop order (documentation + report order).
PHASES = ("views", "alg1", "alg2", "engine")

_recorder: "PhaseRecorder | None" = None


class PhaseRecorder:
    """Accumulates per-phase seconds, grouped into events.

    Attributes:
        events: One ``{phase: seconds}`` dict per completed event, in
            dispatch order.  Phases that never ran in an event are simply
            absent from its dict.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, float]] = []
        self._current: dict[str, float] | None = None

    def begin_event(self) -> None:
        """Open a fresh per-event bucket (closing any stragglers)."""
        self._current = {}

    def end_event(self) -> dict[str, float]:
        """Close the current event's bucket and archive it."""
        current = self._current if self._current is not None else {}
        self.events.append(current)
        self._current = None
        return current

    def add(self, phase: str, seconds: float) -> None:
        if self._current is None:
            # Phase work outside an event bracket (e.g. admission during
            # a unit test) still lands somewhere inspectable.
            self._current = {}
        self._current[phase] = self._current.get(phase, 0.0) + seconds


def install(recorder: PhaseRecorder) -> None:
    """Route subsequent ``tick``/``lap`` calls into ``recorder``."""
    global _recorder
    _recorder = recorder


def uninstall() -> None:
    """Return the probe to its dormant (no-op) state."""
    global _recorder
    _recorder = None


@contextmanager
def recording(recorder: PhaseRecorder):
    """Context manager: install ``recorder`` for the duration of the block."""
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()


def active() -> bool:
    """Whether a recorder is currently installed."""
    return _recorder is not None


def begin_event() -> None:
    """Open an event bucket on the installed recorder (no-op when dormant)."""
    if _recorder is not None:
        _recorder.begin_event()


def end_event() -> dict[str, float]:
    """Close the event bucket (no-op returning ``{}`` when dormant)."""
    if _recorder is not None:
        return _recorder.end_event()
    return {}


# --------------------------------------------------------------- counters
_counters: dict[str, int] = {}


def bump(name: str, n: int = 1) -> None:
    """Increment the named operation counter by ``n``."""
    _counters[name] = _counters.get(name, 0) + n


def add_counters(values: dict[str, int]) -> None:
    """Merge a locally accumulated counter dict (one flush per hot call)."""
    for name, n in values.items():
        if n:
            _counters[name] = _counters.get(name, 0) + n


def counters() -> dict[str, int]:
    """Snapshot of all operation counters, sorted by name."""
    return {name: _counters[name] for name in sorted(_counters)}


def reset_counters() -> None:
    """Zero every operation counter (bench harness calls this per run)."""
    _counters.clear()


def tick() -> float:
    """A phase start mark — ``perf_counter()`` while recording, else 0.0."""
    if _recorder is not None:
        return perf_counter()
    return 0.0


def lap(phase: str, start: float) -> float:
    """Attribute the time since ``start`` to ``phase``; returns a new mark.

    Dormant probes return ``0.0`` without reading the clock, so chained
    ``start = lap(...)`` calls cost two predicted branches per phase.
    """
    if _recorder is None:
        return 0.0
    now = perf_counter()
    _recorder.add(phase, now - start)
    return now
