"""The scheduling-hot-loop benchmark harness (``python -m repro.perf``).

Times the three layers the fast-path work targets — admission control,
allocation, and the end-to-end discrete-event simulation — and writes the
numbers to ``BENCH_core.json`` so every PR leaves a recorded perf
trajectory.  The end-to-end benchmark runs the identical workload twice,
once with the planning caches on and once through the
:func:`repro.perf.tables.planning_cache_disabled` escape hatch, reporting
the speedup *and* verifying that both runs made byte-identical scheduling
decisions (same admissions, same per-job outcomes).

Four scales are available (``--scale``): ``quick`` (200 jobs / 1024 GPUs,
the CI smoke), ``full`` (2000 / 1024, the recorded trajectory), ``mid``
(5000 / 4096) and ``xl`` (20000 / 16384).  The two large scales model an
Aryl/VirtualFlow-style large-model cluster (heavier requested-size mix, so
the active set stays in the hundreds) and verify the batched solver against
the *sequential* solver (``batched_solver_disabled``) instead of the
cache-disabled reference, which is intractable at that size; the
``reference_mode`` field records which yardstick produced
``decisions_match``.

Usage::

    python -m repro.perf               # full benchmark (2000-job trace)
    python -m repro.perf --quick       # CI smoke (200-job trace)
    python -m repro.perf --scale xl    # 16k-GPU / 20k-job scale probe
    python -m repro.perf -o out.json
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import pstats
import time
from contextlib import ExitStack
from typing import Any

import numpy as np

from repro.cluster.topology import ClusterSpec
from repro.core.admission import planning_job
from repro.core.scheduler import ElasticFlowPolicy
from repro.perf import probe
from repro.perf.tables import (
    batched_solver_disabled,
    cache_stats,
    fused_commit_disabled,
    planning_cache_disabled,
    planning_frame_disabled,
    reset_cache,
    seed_index_disabled,
    sim_vector_disabled,
)
from repro.profiles.throughput import ThroughputModel
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.metrics import SimulationResult
from repro.traces.synthetic import ClusterTraceConfig, generate_trace
from repro.traces.workload import build_jobs

__all__ = ["run_benchmarks", "main"]

#: The Philly-like end-to-end configuration (ISSUE: 2000-job benchmark trace).
FULL_JOBS = 2000
QUICK_JOBS = 200
BENCH_CLUSTER_GPUS = 1024
BENCH_SLOT_SECONDS = 600.0
DEFAULT_OUTPUT = "BENCH_core.json"

#: Requested-size mix for the large scales: a large-model cluster serves
#: far fewer, far wider jobs per GPU than the Philly mix (mean request
#: ~24 GPUs vs ~4), keeping the simultaneous active set in the hundreds
#: even at 16k GPUs.
HEAVY_GPU_WEIGHTS = {4: 0.20, 8: 0.25, 16: 0.25, 32: 0.15, 64: 0.10, 128: 0.05}

#: Benchmark scales: trace size, cluster size, requested-size mix, and the
#: yardstick the decision digest is checked against.
SCALES: dict[str, dict[str, Any]] = {
    "quick": {
        "n_jobs": QUICK_JOBS,
        "cluster_gpus": BENCH_CLUSTER_GPUS,
        "gpu_weights": None,
        "reference_mode": "cache-disabled",
    },
    "full": {
        "n_jobs": FULL_JOBS,
        "cluster_gpus": BENCH_CLUSTER_GPUS,
        "gpu_weights": None,
        "reference_mode": "cache-disabled",
    },
    "mid": {
        "n_jobs": 5000,
        "cluster_gpus": 4096,
        "gpu_weights": HEAVY_GPU_WEIGHTS,
        "reference_mode": "sequential-solver",
    },
    "xl": {
        "n_jobs": 20000,
        "cluster_gpus": 16384,
        "gpu_weights": HEAVY_GPU_WEIGHTS,
        "reference_mode": "sequential-solver",
    },
}


class _TimedSimulator(Simulator):
    """A simulator that records the wall-clock latency of every event.

    Each dispatch is additionally bracketed as one phase-probe event, so
    the per-phase attribution (views / alg1 / alg2 / engine) aligns
    one-to-one with ``event_latencies`` while a recorder is installed.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.event_latencies: list[float] = []

    def _dispatch(self, event: Event) -> None:
        probe.begin_event()
        start = time.perf_counter()
        super()._dispatch(event)
        self.event_latencies.append(time.perf_counter() - start)
        probe.end_event()


def _phase_summary(
    events: list[dict[str, float]], latencies: list[float]
) -> dict[str, float]:
    """Aggregate per-event phase buckets into total seconds per phase.

    ``other_s`` is the residual — event time not attributed to any named
    phase (event handling outside ``allocate``/``_reallocate``, probe
    overhead, dispatch plumbing) — so the named phases plus the residual
    always reconcile with the summed event latencies.
    """
    totals = dict.fromkeys(probe.PHASES, 0.0)
    for event_phases in events:
        for phase, seconds in event_phases.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    attributed = sum(totals.values())
    total = sum(latencies)
    summary = {f"{phase}_s": round(totals[phase], 4) for phase in probe.PHASES}
    summary["other_s"] = round(max(0.0, total - attributed), 4)
    return summary


def _percentiles_ms(latencies: list[float]) -> dict[str, float]:
    if not latencies:
        return {"p50_ms": 0.0, "p95_ms": 0.0}
    arr = np.asarray(latencies) * 1000.0
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
    }


def _decision_digest(result: SimulationResult) -> list[tuple]:
    """Everything that must match between cached and uncached runs."""
    return sorted(
        (
            o.job_id,
            o.status.value,
            o.admitted,
            o.completion_time,
            o.scale_events,
        )
        for o in result.outcomes
    )


def _digest_sha256(digest: list[tuple]) -> str:
    """Stable hash of a decision digest, comparable across processes.

    The digest is a sorted list of primitive tuples, so its ``repr`` is
    deterministic; hashing it lets separate benchmark invocations (e.g.
    the CI escape-hatch parity run vs the default run) assert decision
    equivalence without carrying the full outcome list around.
    """
    return hashlib.sha256(repr(digest).encode()).hexdigest()


#: Hotspot rows exported under the report's ``profile`` key.
PROFILE_TOP_N = 20


def _top_hotspots(profiler: cProfile.Profile, limit: int = PROFILE_TOP_N) -> list[dict]:
    """The ``limit`` most cumulative-expensive functions of a profile run."""
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: list[dict] = []
    for func in stats.fcn_list[:limit]:
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, line, name = func
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return rows


def _benchmark_workload(
    n_jobs: int,
    seed: int,
    *,
    cluster_gpus: int = BENCH_CLUSTER_GPUS,
    gpu_weights: dict[int, float] | None = None,
):
    kwargs: dict[str, Any] = {}
    if gpu_weights is not None:
        kwargs["gpu_weights"] = gpu_weights
    config = ClusterTraceConfig(
        "bench-philly",
        cluster_gpus,
        n_jobs,
        target_load=1.1,
        duration_median_s=3000.0,
        duration_sigma=1.2,
        **kwargs,
    )
    trace = generate_trace(config, seed=seed)
    throughput = ThroughputModel()
    specs = build_jobs(trace, throughput, seed=seed)
    cluster = ClusterSpec(n_nodes=cluster_gpus // 8, gpus_per_node=8)
    return cluster, specs, throughput


def _policy() -> ElasticFlowPolicy:
    # The ExperimentConfig defaults: the protection knobs every figure uses.
    return ElasticFlowPolicy(
        safety_margin=0.03, deadline_padding_s=60.0, stability_threshold=0.3
    )


def _run_sim(
    n_jobs: int,
    seed: int,
    *,
    cluster_gpus: int = BENCH_CLUSTER_GPUS,
    gpu_weights: dict[int, float] | None = None,
) -> tuple[dict[str, Any], SimulationResult]:
    cluster, specs, throughput = _benchmark_workload(
        n_jobs, seed, cluster_gpus=cluster_gpus, gpu_weights=gpu_weights
    )
    policy = _policy()
    sim = _TimedSimulator(
        cluster,
        policy,
        specs,
        throughput=throughput,
        slot_seconds=BENCH_SLOT_SECONDS,
        record_timeline=False,
    )
    recorder = probe.PhaseRecorder()
    probe.reset_counters()
    start = time.perf_counter()
    with probe.recording(recorder):
        result = sim.run()
    wall = time.perf_counter() - start
    incremental = {
        "fill_cache_hits": 0,
        "fill_cache_misses": 0,
        "delta_hits": 0,
        "delta_reuses": 0,
        "delta_slack_reuses": 0,
        "delta_refills": 0,
    }
    for controller in policy._controllers.values():
        incremental["fill_cache_hits"] += controller.fill_cache_hits
        incremental["fill_cache_misses"] += controller.fill_cache_misses
        incremental["delta_hits"] += controller.delta_hits
        incremental["delta_reuses"] += controller.delta_reuses
        incremental["delta_slack_reuses"] += controller.delta_slack_reuses
        incremental["delta_refills"] += controller.delta_refills
    metrics: dict[str, Any] = {
        "wall_s": wall,
        "events": result.events_processed,
        "events_per_sec": result.events_processed / wall if wall > 0 else 0.0,
        **_percentiles_ms(sim.event_latencies),
        "phases": _phase_summary(recorder.events, sim.event_latencies),
        "incremental": incremental,
        "counters": probe.counters(),
    }
    return metrics, result


def bench_end_to_end(
    n_jobs: int,
    seed: int,
    *,
    cluster_gpus: int = BENCH_CLUSTER_GPUS,
    gpu_weights: dict[int, float] | None = None,
    reference_mode: str = "cache-disabled",
    profile: bool = False,
) -> dict[str, Any]:
    """Run the benchmark trace twice and verify decision equivalence.

    ``reference_mode`` picks the comparison run: ``"cache-disabled"`` is
    the from-scratch reference solver (the strongest yardstick), while
    ``"sequential-solver"`` keeps the caches but disables the batched
    multi-job solver — the tractable yardstick for the large scales.  The
    comparison run's metrics keep the historical ``"uncached"`` key either
    way so downstream readers need no schema branch.  With ``profile`` the
    *cached* run executes under :mod:`cProfile` and the report gains a
    ``profile`` key with the top cumulative hotspots; the default path
    never touches the profiler, so it stays zero-overhead when off.
    """
    reset_cache()
    profiler: cProfile.Profile | None = None
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
    cached_metrics, cached_result = _run_sim(
        n_jobs, seed, cluster_gpus=cluster_gpus, gpu_weights=gpu_weights
    )
    if profiler is not None:
        profiler.disable()
    cached_metrics["cache"] = cache_stats()
    if reference_mode == "sequential-solver":
        with batched_solver_disabled():
            uncached_metrics, uncached_result = _run_sim(
                n_jobs, seed, cluster_gpus=cluster_gpus, gpu_weights=gpu_weights
            )
    else:
        with planning_cache_disabled():
            uncached_metrics, uncached_result = _run_sim(
                n_jobs, seed, cluster_gpus=cluster_gpus, gpu_weights=gpu_weights
            )
    speedup = (
        uncached_metrics["wall_s"] / cached_metrics["wall_s"]
        if cached_metrics["wall_s"] > 0
        else float("inf")
    )
    cached_digest = _decision_digest(cached_result)
    report = {
        "n_jobs": n_jobs,
        "cluster_gpus": cluster_gpus,
        "reference_mode": reference_mode,
        "cached": cached_metrics,
        "uncached": uncached_metrics,
        "speedup": speedup,
        "decisions_match": cached_digest == _decision_digest(uncached_result),
        "digest_sha256": _digest_sha256(cached_digest),
    }
    if profiler is not None:
        report["profile"] = _top_hotspots(profiler)
    return report


def bench_admission(n_candidates: int, seed: int) -> dict[str, Any]:
    """Time the policy's arrival-time admission path over a job stream."""
    from repro.core.job import Job
    from repro.sim.interface import PolicyContext

    cluster, specs, throughput = _benchmark_workload(n_candidates, seed)
    policy = _policy()
    policy.bind(
        PolicyContext(
            cluster=cluster, throughput=throughput, slot_seconds=BENCH_SLOT_SECONDS
        )
    )
    reset_cache()
    active: list[Job] = []
    latencies: list[float] = []
    for spec in specs:
        job = Job(spec=spec)
        start = time.perf_counter()
        kept = policy.admit(job, active, spec.submit_time)
        latencies.append(time.perf_counter() - start)
        if kept and len(active) < 64:
            job.mark_admitted(spec.submit_time)
            active.append(job)
    total = sum(latencies)
    return {
        "candidates": len(latencies),
        "ops_per_sec": len(latencies) / total if total > 0 else 0.0,
        **_percentiles_ms(latencies),
    }


def bench_allocation(n_jobs: int, rounds: int, seed: int) -> dict[str, Any]:
    """Time full allocate() passes over a fixed active set."""
    from repro.core.job import Job
    from repro.sim.interface import PolicyContext

    cluster, specs, throughput = _benchmark_workload(n_jobs, seed)
    policy = _policy()
    policy.bind(
        PolicyContext(
            cluster=cluster, throughput=throughput, slot_seconds=BENCH_SLOT_SECONDS
        )
    )
    reset_cache()
    base = max(spec.submit_time for spec in specs[:48])
    active = []
    for spec in specs[:48]:
        job = Job(spec=spec)
        job.mark_admitted(spec.submit_time)
        active.append(job)
    latencies: list[float] = []
    for round_index in range(rounds):
        # Advance "now" each round so every pass replans from scratch, as a
        # periodic replan event would.
        now = base + round_index * 1.0
        start = time.perf_counter()
        policy.allocate(active, now)
        latencies.append(time.perf_counter() - start)
    total = sum(latencies)
    return {
        "active_jobs": len(active),
        "rounds": rounds,
        "allocs_per_sec": rounds / total if total > 0 else 0.0,
        **_percentiles_ms(latencies),
    }


#: Buddy micro-bench shape: a 16k-scale half-cluster worth of GPUs and
#: enough operations that per-op dispatch dominates the rng setup.
BUDDY_BENCH_GPUS = 4096
BUDDY_BENCH_OPS = 20_000


def bench_buddy(
    seed: int, *, capacity: int = BUDDY_BENCH_GPUS, ops: int = BUDDY_BENCH_OPS
) -> dict[str, Any]:
    """Time the buddy-allocator hot paths under a mixed op sequence.

    A seeded stream of allocate-biased operations (allocate / free /
    shrink, with an occasional full repack) keeps the allocator loaded so
    ``allocate``'s fit scan and ``free``'s coalescing both run against a
    realistically fragmented free list.  Reported throughput feeds the
    ``buddy_bench`` pseudo-fraction in the :mod:`repro.perf.delta` gate.
    """
    from repro.cluster.buddy import BuddyAllocator

    rng = np.random.default_rng(seed)
    sizes = (1, 2, 4, 8, 16, 32, 64)
    op_draws = rng.integers(0, 100, size=ops)
    size_draws = rng.integers(0, len(sizes), size=ops)
    victim_draws = rng.integers(0, 1 << 30, size=ops)
    allocator = BuddyAllocator(capacity)
    live: list = []
    performed = 0
    start = time.perf_counter()
    for i in range(ops):
        draw = op_draws[i]
        if draw < 55:
            size = sizes[size_draws[i]]
            if allocator.can_allocate(size):
                live.append(allocator.allocate(size))
                performed += 1
        elif draw < 85:
            if live:
                allocator.free(live.pop(victim_draws[i] % len(live)))
                performed += 1
        elif draw < 99:
            if live:
                index = victim_draws[i] % len(live)
                block = live[index]
                if block.size > 1:
                    live[index] = allocator.shrink(block, block.size // 2)
                    performed += 1
        else:
            plan = allocator.repack_plan()
            allocator.apply_repack(plan)
            live = [plan.get(block, block) for block in live]
            performed += 1
    wall = time.perf_counter() - start
    return {
        "capacity": capacity,
        "ops": performed,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(performed / wall, 1) if wall > 0 else 0.0,
    }


def run_benchmarks(
    *,
    quick: bool = False,
    seed: int = 0,
    scale: str | None = None,
    profile: bool = False,
    disable_new_layers: bool = False,
) -> dict[str, Any]:
    """Run the harness at one scale and return the report dictionary.

    ``--quick`` remains an alias for ``scale="quick"``.  The two large
    scales run only the end-to-end benchmark (the micro benches measure
    per-call dispatch, which does not change with cluster size).
    ``profile`` runs the cached end-to-end pass under :mod:`cProfile` and
    exports the hotspots under the report's ``profile`` key.
    ``disable_new_layers`` engages all four escape hatches of the
    persistent-state layers (planning frame, vectorized sim advance, seed
    index, fused commits) for the whole run — the CI parity gate compares
    its decision digest against the default run's.
    """
    if scale is None:
        scale = "quick" if quick else "full"
    params = SCALES[scale]
    report: dict[str, Any] = {
        "schema": 2,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "quick": scale == "quick",
        "scale": scale,
        "seed": seed,
        "new_layers_disabled": disable_new_layers,
    }
    with ExitStack() as stack:
        if disable_new_layers:
            stack.enter_context(planning_frame_disabled())
            stack.enter_context(sim_vector_disabled())
            stack.enter_context(seed_index_disabled())
            stack.enter_context(fused_commit_disabled())
        if scale in ("quick", "full"):
            report["admission"] = bench_admission(
                100 if scale == "quick" else 400, seed
            )
            report["allocation"] = bench_allocation(
                params["n_jobs"], 20 if scale == "quick" else 60, seed
            )
            report["buddy"] = bench_buddy(seed)
        end_to_end = bench_end_to_end(
            params["n_jobs"],
            seed,
            cluster_gpus=params["cluster_gpus"],
            gpu_weights=params["gpu_weights"],
            reference_mode=params["reference_mode"],
            profile=profile,
        )
    if "profile" in end_to_end:
        report["profile"] = end_to_end.pop("profile")
    report["end_to_end"] = end_to_end
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Benchmark the scheduling hot loop and record the results.",
    )
    parser.add_argument(
        "--suite",
        choices=("core", "figures"),
        default="core",
        help="'core' times the hot loop; 'figures' times the parallel "
        "experiment engine over the figure grids",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small trace for CI smoke runs (alias for --scale quick)",
    )
    parser.add_argument(
        "--scale",
        choices=tuple(SCALES),
        default=None,
        help="benchmark scale (mid/xl run only the end-to-end trace and "
        "verify against the sequential solver)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the cached end-to-end run and export the top "
        f"{PROFILE_TOP_N} cumulative hotspots under the report's "
        "'profile' key (zero overhead when off)",
    )
    parser.add_argument(
        "--disable-new-layers",
        action="store_true",
        help="engage all four persistent-state escape hatches (planning "
        "frame, vectorized sim advance, Alg 2 seed index, fused commits) "
        "— the CI parity gate compares this run's decision digest "
        "against the default run's",
    )
    parser.add_argument(
        "--workers",
        default="4",
        help="fan-out width for --suite figures (int or 'auto')",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help=f"report path (default: {DEFAULT_OUTPUT} or BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)
    if args.suite == "figures":
        from repro.perf.figures import DEFAULT_OUTPUT as FIGURES_OUTPUT
        from repro.perf.figures import run_figure_suite

        report = run_figure_suite(
            quick=args.quick, seed=args.seed, workers=args.workers
        )
        output = args.output or FIGURES_OUTPUT
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(
            f"figure suite ({report['cells']} cells, {report['cores']} cores): "
            f"{report['serial_cold_s']:.2f}s serial vs "
            f"{report['parallel_cold_s']:.2f}s at workers={report['workers']} "
            f"({report['speedup']}x), warm re-run {report['warm_s']:.2f}s "
            f"({report['warm_speedup']}x over cold), "
            f"decisions_match={report['decisions_match']}"
        )
        print(f"report written to {output}")
        return 0
    report = run_benchmarks(
        quick=args.quick,
        seed=args.seed,
        scale=args.scale,
        profile=args.profile,
        disable_new_layers=args.disable_new_layers,
    )
    output = args.output or DEFAULT_OUTPUT
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    e2e = report["end_to_end"]
    print(
        f"end-to-end ({e2e['n_jobs']} jobs, {e2e['cluster_gpus']} GPUs): "
        f"{e2e['cached']['wall_s']:.2f}s cached vs "
        f"{e2e['uncached']['wall_s']:.2f}s {e2e['reference_mode']} "
        f"({e2e['speedup']:.2f}x, decisions_match={e2e['decisions_match']})"
    )
    micro = ""
    if "admission" in report:
        micro = (
            f"admission: {report['admission']['ops_per_sec']:.1f} ops/s | "
            f"allocation: {report['allocation']['allocs_per_sec']:.1f} allocs/s | "
            f"buddy: {report['buddy']['ops_per_sec']:.0f} ops/s | "
        )
    print(
        micro
        + f"events: {e2e['cached']['events_per_sec']:.1f}/s "
        f"(p50 {e2e['cached']['p50_ms']:.2f} ms, p95 {e2e['cached']['p95_ms']:.2f} ms)"
    )
    phases = e2e["cached"]["phases"]
    print(
        "phases (cached): "
        + " | ".join(f"{name} {phases[f'{name}_s']:.1f}s" for name in probe.PHASES)
        + f" | other {phases['other_s']:.1f}s"
    )
    inc = e2e["cached"]["incremental"]
    print(
        f"incremental: delta {inc['delta_hits']} fills ({inc['delta_reuses']} "
        f"reused, {inc['delta_slack_reuses']} via slack / "
        f"{inc['delta_refills']} refilled), fill-memo {inc['fill_cache_hits']} hits"
    )
    print(f"report written to {output}")
    return 0
