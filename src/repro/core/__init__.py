"""ElasticFlow's core contribution: deadline-driven elastic scheduling.

The modules here implement Sections 3 and 4 of the paper:

- :mod:`repro.core.job` — the serverless job interface (model,
  hyper-parameters, termination condition, deadline) and runtime job state.
- :mod:`repro.core.slots` — the discretised planning horizon.
- :mod:`repro.core.plan` — per-slot GPU allocation plans and the shared
  occupancy ledger.
- :mod:`repro.core.admission` — Algorithm 1: Minimum Satisfactory Share via
  progressive filling, and the admission-control decision.
- :mod:`repro.core.allocation` — Algorithm 2: greedy marginal-return
  allocation of leftover GPUs.
- :mod:`repro.core.scheduler` — the ElasticFlow policy tying it together.
"""

from repro.core.job import Job, JobSpec, JobStatus
from repro.core.slots import SlotGrid
from repro.core.plan import Ledger
from repro.core.admission import (
    AdmissionController,
    AdmissionResult,
    progressive_filling,
)
from repro.core.allocation import allocate_leftover
from repro.core.operator import (
    AdmitAllPolicy,
    CompositePolicy,
    OperatorPolicy,
    PricingPolicy,
    UserQuotaPolicy,
)
from repro.core.scheduler import ElasticFlowPolicy

__all__ = [
    "Job",
    "JobSpec",
    "JobStatus",
    "SlotGrid",
    "Ledger",
    "AdmissionController",
    "AdmissionResult",
    "progressive_filling",
    "allocate_leftover",
    "OperatorPolicy",
    "AdmitAllPolicy",
    "UserQuotaPolicy",
    "PricingPolicy",
    "CompositePolicy",
    "ElasticFlowPolicy",
]
