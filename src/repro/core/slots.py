"""Discretised planning horizon for admission control and allocation.

The planning algorithms reason about the future in fixed-width time slots
anchored at "now".  A deadline rarely falls exactly on a slot boundary, so
each job sees a *weight* per slot: how many seconds of that slot are usable
before its deadline.  This keeps the feasibility arithmetic exact instead of
conservatively rounding deadlines down to whole slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import ConfigurationError
from repro.numeric import EPS

__all__ = ["SlotGrid"]


@dataclass(frozen=True)
class SlotGrid:
    """A horizon of ``horizon`` slots of ``slot_seconds`` starting at ``origin``.

    Attributes:
        origin: Absolute time of the start of slot 0 (simulation seconds).
        slot_seconds: Width of each slot.
        horizon: Number of slots in the planning window.
    """

    origin: float
    slot_seconds: float
    horizon: int

    def __post_init__(self) -> None:
        if self.slot_seconds <= 0:
            raise ConfigurationError(
                f"slot_seconds must be > 0, got {self.slot_seconds}"
            )
        if self.horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {self.horizon}")

    @property
    def end(self) -> float:
        """Absolute time of the end of the last slot."""
        return self.origin + self.horizon * self.slot_seconds

    def slot_start(self, index: int) -> float:
        """Absolute start time of slot ``index``."""
        return self.origin + index * self.slot_seconds

    def slot_of(self, time: float) -> int:
        """Index of the slot containing ``time`` (clamped to the horizon).

        Tolerates ``time`` landing within the shared epsilon *before* the
        origin: grids are anchored at "now" and event times reach here
        through float arithmetic, so an exact ``<`` check would reject the
        very instant the grid was built for.
        """
        if time < self.origin - EPS:
            raise ConfigurationError(
                f"time {time} precedes the grid origin {self.origin}"
            )
        index = int(max(0.0, time - self.origin) // self.slot_seconds)
        return min(index, self.horizon - 1)

    @cached_property
    def _starts(self) -> np.ndarray:
        """Absolute start time of every slot (cached: one grid serves every
        job planned during a scheduling event)."""
        starts = self.origin + np.arange(self.horizon) * self.slot_seconds
        starts.flags.writeable = False
        return starts

    def weights_until(self, deadline: float) -> np.ndarray:
        """Usable seconds per slot for a job due at ``deadline``.

        Slots wholly before the deadline weigh ``slot_seconds``; the slot
        containing the deadline weighs the fraction before it; later slots
        weigh zero.  An infinite deadline yields full weights everywhere.
        """
        if math.isinf(deadline):
            return np.full(self.horizon, self.slot_seconds, dtype=np.float64)
        return np.clip(deadline - self._starts, 0.0, self.slot_seconds)

    def weights_matrix(self, deadlines: np.ndarray) -> np.ndarray:
        """:meth:`weights_until` for a batch of deadlines, one row each.

        Row ``i`` is bit-identical to ``weights_until(deadlines[i])``: the
        clip expression is evaluated elementwise either way, and an
        infinite deadline clips ``inf - start`` to exactly
        ``slot_seconds``, matching the full-weights special case.  The
        matrix is frozen so its rows can be handed out as shared read-only
        views.
        """
        rows = np.clip(
            np.asarray(deadlines, dtype=np.float64)[:, None] - self._starts,
            0.0,
            self.slot_seconds,
        )
        rows.flags.writeable = False
        return rows

    def window_ends(self, deadlines: np.ndarray) -> np.ndarray:
        """Index one past the last nonzero weight, per deadline.

        ``weights_until(d)[t] > 0`` exactly when ``starts[t] < d``, so the
        usable-window length is the number of slot starts strictly before
        the deadline — a ``searchsorted`` over the cached start times
        (infinite deadlines yield the full horizon).  This is the batched
        form of ``PlanningJob.window(0)``.
        """
        return np.searchsorted(
            self._starts, np.asarray(deadlines, dtype=np.float64), side="left"
        )

    @staticmethod
    def for_jobs(
        now: float,
        deadlines: list[float],
        slot_seconds: float,
        *,
        min_horizon: int = 1,
        max_horizon: int = 4096,
    ) -> "SlotGrid":
        """Build a grid anchored at ``now`` covering every finite deadline.

        Best-effort (infinite) deadlines do not extend the horizon; the
        allocator only ever plans their next slot anyway.
        """
        finite = [d for d in deadlines if not math.isinf(d)]
        horizon = min_horizon
        if finite:
            span = max(finite) - now
            needed = max(1, math.ceil(span / slot_seconds))
            horizon = max(min_horizon, needed)
        if horizon > max_horizon:
            raise ConfigurationError(
                f"planning horizon {horizon} exceeds the cap of {max_horizon} "
                f"slots; increase slot_seconds"
            )
        return SlotGrid(origin=now, slot_seconds=slot_seconds, horizon=horizon)
