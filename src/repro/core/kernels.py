"""Optional compiled kernel for the fused ladder-cumsum solve.

:class:`repro.core.batch.WarmRowBatch` spends its bucketed solve in two
``np.cumsum(axis=1)`` passes over a padded weight matrix.  When `numba
<https://numba.pydata.org/>`_ happens to be importable, the two passes (plus
the broadcast multiplies and the end-of-window gather) fuse into one
compiled row loop with no intermediate matrices.  The dependency is strictly
optional:

- ``import numba`` is attempted once at import time; on ``ImportError`` the
  module degrades to ``kernels_available() == False`` and the batch layer
  keeps its pure-numpy path.  Nothing else in the tree imports numba.
- The toggle mirrors the batched-solver escape hatch
  (:func:`repro.perf.tables.batched_solver_disabled`): even with numba
  installed, ``compiled_kernels_disabled()`` forces the numpy path so the
  equivalence suite can compare all three configurations.
- Compilation is lazy — the first enabled :func:`ladder_rows` call pays the
  JIT cost; dormant installs pay nothing.

Bit-identity contract: :func:`_ladder_rows_py` (the kernel source, also the
pure-python reference the tests run without numba) performs, per row, the
literal sequence ``acc = acc + thr * w[j]`` — a float64 multiply then a
float64 add, the same IEEE-754 operations in the same order as numpy's
elementwise product followed by a sequential ``cumsum``.  Numba's default
strict-IEEE mode (``fastmath=False``) forbids the reassociation and FMA
contraction that could change a ulp, so compiled and numpy rows are
identical bit for bit — the same argument the batch layer's docstring makes
for padded-matrix vs per-job solves.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # the supported configuration in this repo's CI image
    numba = None

__all__ = [
    "kernels_available",
    "kernels_enabled",
    "set_kernels_enabled",
    "compiled_kernels_disabled",
    "ladder_rows",
]

_enabled = True
_compiled: Callable[..., Any] | None = None


def kernels_available() -> bool:
    """Whether numba was importable (never a hard requirement)."""
    return numba is not None


def kernels_enabled() -> bool:
    """Whether :func:`ladder_rows` would use the compiled kernel."""
    return _enabled and numba is not None


def set_kernels_enabled(enabled: bool) -> bool:
    """Flip the compiled-kernel switch; returns the previous setting.

    The switch is advisory when numba is missing: ``kernels_enabled()``
    stays ``False`` regardless.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def compiled_kernels_disabled():
    """Context manager: force the pure-numpy batch solve.

    The equivalence benchmarks run under this to prove the compiled and
    numpy paths produce byte-identical decisions.
    """
    previous = set_kernels_enabled(False)
    try:
        yield
    finally:
        set_kernels_enabled(previous)


def _ladder_rows_py(
    padded: np.ndarray,
    thr_hint: np.ndarray,
    thr_below: np.ndarray,
    lengths: np.ndarray,
    hint_rows: np.ndarray,
    below_totals: np.ndarray,
) -> None:
    """Fused ladder solve, one row at a time (kernel source + reference).

    Args:
        padded: ``(n, width)`` C-contiguous float64 padded weight matrix.
        thr_hint: Per-row constant throughput of the hinted cap.
        thr_below: Per-row constant throughput of the next-lower cap.
        lengths: Per-row unpadded window length (``1 <= length <= width``).
        hint_rows: ``(n, width)`` output — the hinted cap's cumulative row.
        below_totals: ``(n,)`` output — final entry of the lower cap's row.
    """
    n, width = padded.shape
    for i in range(n):
        th = thr_hint[i]
        acc = 0.0
        for j in range(width):
            acc = acc + th * padded[i, j]
            hint_rows[i, j] = acc
        tb = thr_below[i]
        total = 0.0
        for j in range(lengths[i]):
            total = total + tb * padded[i, j]
        below_totals[i] = total


def _get_compiled() -> Callable[..., Any] | None:
    """JIT-compile the row loop on first use (None when numba is absent)."""
    global _compiled
    if _compiled is None and numba is not None:  # pragma: no cover - optional
        _compiled = numba.njit(cache=False)(_ladder_rows_py)
    return _compiled


def ladder_rows(
    padded: np.ndarray,
    thr_hint: np.ndarray,
    thr_below: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve one bucket's ladder rows, compiled when possible.

    Returns ``(hint_rows, below_totals)`` exactly as the numpy two-pass
    cumsum path computes them.  Callers gate on :func:`kernels_enabled`;
    when the kernel is disabled mid-flight this still answers correctly via
    the python reference (slow, but never wrong).
    """
    hint_rows = np.empty_like(padded)
    below_totals = np.empty(padded.shape[0], dtype=np.float64)
    impl = _get_compiled() if kernels_enabled() else None
    if impl is None:
        impl = _ladder_rows_py
    impl(padded, thr_hint, thr_below, lengths, hint_rows, below_totals)
    return hint_rows, below_totals
