"""The serverless job interface and runtime job state (paper Section 3.1).

A :class:`JobSpec` is what a DL developer submits: the model, the training
hyper-parameters, a termination condition expressed as a maximum number of
iterations, and a deadline.  Crucially it does *not* name a GPU count — that
is the platform's problem.  (``requested_gpus`` exists only so the
server-centric baseline schedulers have the number they would have been
given; ElasticFlow itself never reads it.)
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ConfigurationError, SchedulingError
from repro.numeric import is_power_of_two

__all__ = ["JobStatus", "JobSpec", "Job"]


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"  # submitted, not yet considered
    ADMITTED = "admitted"  # passed admission control, possibly queued
    RUNNING = "running"  # currently holds GPUs
    COMPLETED = "completed"  # reached its termination condition
    DROPPED = "dropped"  # rejected by admission control


@dataclass(frozen=True)
class JobSpec:
    """A training job as submitted through the serverless interface.

    Attributes:
        job_id: Unique identifier.
        model_name: Model zoo key of the DNN to train.
        global_batch_size: The *global* batch size; the platform derives the
            local batch size from the worker count.
        max_iterations: Termination condition — the job completes after this
            many iterations.
        submit_time: Simulation time of submission, in seconds.
        deadline: Absolute point in time by which the job must finish, or
            ``None``/``inf`` for a best-effort job (Section 4.4).
        requested_gpus: The GPU count a server-centric platform would have
            been told; consumed only by the non-elastic baselines.
        user: Submitting tenant — consumed by operator admission policies
            such as per-user quotas (Section 4.4).
    """

    job_id: str
    model_name: str
    global_batch_size: int
    max_iterations: int
    submit_time: float = 0.0
    deadline: float | None = None
    requested_gpus: int = 1
    user: str = "default"

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ConfigurationError("job_id must be non-empty")
        if self.global_batch_size < 1:
            raise ConfigurationError(
                f"global_batch_size must be >= 1, got {self.global_batch_size}"
            )
        if self.max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.submit_time < 0:
            raise ConfigurationError(
                f"submit_time must be >= 0, got {self.submit_time}"
            )
        if self.deadline is not None and self.deadline <= self.submit_time:
            raise ConfigurationError(
                f"deadline {self.deadline} must be after submit_time "
                f"{self.submit_time}"
            )
        if not is_power_of_two(self.requested_gpus):
            raise ConfigurationError(
                f"requested_gpus must be a positive power of two, "
                f"got {self.requested_gpus}"
            )
        if not self.user:
            raise ConfigurationError("user must be non-empty")

    @cached_property
    def best_effort(self) -> bool:
        """Whether the job has no deadline (Section 4.4)."""
        return self.deadline is None or math.isinf(self.deadline)

    @cached_property
    def effective_deadline(self) -> float:
        """The deadline as a float, with best-effort mapped to ``inf``."""
        return math.inf if self.best_effort else float(self.deadline)

    @property
    def relative_deadline(self) -> float:
        """Seconds between submission and deadline."""
        return self.effective_deadline - self.submit_time


@dataclass
class Job:
    """Mutable runtime state of one submitted job.

    Attributes:
        spec: The immutable submission.
        status: Current lifecycle state.
        iterations_done: Training progress, in (fractional) iterations.
        n_gpus: GPUs currently allocated (0 when suspended or queued).
        stall_until: Time before which the job makes no progress because a
            scaling/migration/checkpoint operation is in flight.
        completion_time: Set when the job completes.
        admission_time: Set when the job passes admission control.
        drop_time: Set when the job is dropped.
        scale_events: How many times the allocation changed while running.
        gpu_seconds: Attained service — GPU-time consumed so far (drives
            Tiresias' least-attained-service priority).
        checkpointed_iterations: Progress captured by the job's most recent
            checkpoint (every scaling event checkpoints, Section 5).  An
            unplanned node failure rolls the job back to this point.
    """

    spec: JobSpec
    status: JobStatus = JobStatus.PENDING
    iterations_done: float = 0.0
    n_gpus: int = 0
    stall_until: float = 0.0
    completion_time: float | None = None
    admission_time: float | None = None
    drop_time: float | None = None
    scale_events: int = field(default=0)
    gpu_seconds: float = 0.0
    checkpointed_iterations: float = 0.0

    # ----------------------------------------------------------- identity
    @property
    def job_id(self) -> str:
        return self.spec.job_id

    # ----------------------------------------------------------- progress
    @property
    def remaining_iterations(self) -> float:
        return max(0.0, self.spec.max_iterations - self.iterations_done)

    @property
    def is_finished(self) -> bool:
        return self.remaining_iterations <= 0.0

    @property
    def is_active(self) -> bool:
        """Whether the job still needs scheduling attention."""
        return self.status in (JobStatus.ADMITTED, JobStatus.RUNNING)

    def advance(self, seconds: float, iterations_per_second: float, now: float) -> None:
        """Accrue training progress over a window ending at ``now``.

        Stalled intervals (scaling overhead) are excluded from the window.

        Args:
            seconds: Wall-clock length of the window.
            iterations_per_second: Throughput held during the window.
            now: Simulation time at the *end* of the window.
        """
        if seconds < 0:
            raise SchedulingError(f"cannot advance by {seconds} seconds")
        start = now - seconds
        productive = seconds - max(0.0, min(self.stall_until, now) - start)
        if productive < 0:
            raise SchedulingError(
                f"job {self.job_id}: stall accounting produced negative time"
            )
        self.iterations_done = min(
            float(self.spec.max_iterations),
            self.iterations_done + productive * iterations_per_second,
        )
        self.gpu_seconds += productive * self.n_gpus

    def met_deadline(self) -> bool:
        """Whether the job finished on time (False while unfinished)."""
        if self.completion_time is None:
            return False
        return self.completion_time <= self.spec.effective_deadline

    def mark_admitted(self, now: float) -> None:
        if self.status is not JobStatus.PENDING:
            raise SchedulingError(
                f"job {self.job_id} cannot be admitted from {self.status}"
            )
        self.status = JobStatus.ADMITTED
        self.admission_time = now

    def mark_dropped(self, now: float) -> None:
        if self.status is not JobStatus.PENDING:
            raise SchedulingError(
                f"job {self.job_id} cannot be dropped from {self.status}"
            )
        self.status = JobStatus.DROPPED
        self.drop_time = now

    def mark_completed(self, now: float) -> None:
        if not self.is_active:
            raise SchedulingError(
                f"job {self.job_id} cannot complete from {self.status}"
            )
        self.status = JobStatus.COMPLETED
        self.completion_time = now
        self.n_gpus = 0
