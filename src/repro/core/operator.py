"""Operator admission policies: quotas and pricing (paper Section 4.4).

Admission control guarantees feasibility, but a malicious or careless user
could still flood the cluster with tight-deadline jobs and crowd everyone
else out.  The paper suggests the cloud operator "can apply an extra policy
or charge the user before line 9 of Algorithm 1"; this module is that hook.
An :class:`OperatorPolicy` is consulted *after* a job proves feasible and
*before* it is finally admitted; quota and pricing policies are provided,
and policies compose with :class:`CompositePolicy`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from repro.core.job import Job
from repro.errors import ConfigurationError
from repro.profiles.throughput import ScalingCurve

__all__ = [
    "OperatorPolicy",
    "AdmitAllPolicy",
    "UserQuotaPolicy",
    "PricingPolicy",
    "CompositePolicy",
]


class OperatorPolicy(abc.ABC):
    """Extra operator-side admission gate, applied after feasibility."""

    @abc.abstractmethod
    def approve(self, job: Job, now: float) -> bool:
        """Whether the operator lets this (feasible) job in."""

    def on_admitted(self, job: Job, now: float) -> None:
        """Bookkeeping hook invoked when the job is finally admitted."""


class AdmitAllPolicy(OperatorPolicy):
    """The paper's default: trust users, admit every feasible job."""

    def approve(self, job: Job, now: float) -> bool:
        return True


class UserQuotaPolicy(OperatorPolicy):
    """Cap the number of jobs each user may have admitted per window.

    Args:
        max_jobs: Admissions allowed per user per window.
        window_s: Sliding-window length (default one day, the paper's
            example: "set a maximum number of jobs that can be submitted by
            each user per day").
    """

    def __init__(self, max_jobs: int, *, window_s: float = 86400.0) -> None:
        if max_jobs < 1:
            raise ConfigurationError(f"max_jobs must be >= 1, got {max_jobs}")
        if window_s <= 0:
            raise ConfigurationError(f"window_s must be > 0, got {window_s}")
        self.max_jobs = max_jobs
        self.window_s = window_s
        self._admissions: dict[str, list[float]] = {}

    def admitted_in_window(self, user: str, now: float) -> int:
        times = self._admissions.get(user, [])
        cutoff = now - self.window_s
        live = [t for t in times if t > cutoff]
        self._admissions[user] = live
        return len(live)

    def approve(self, job: Job, now: float) -> bool:
        """Whether the user still has quota left in the window."""
        return self.admitted_in_window(job.spec.user, now) < self.max_jobs

    def on_admitted(self, job: Job, now: float) -> None:
        """Record the admission against the user's quota."""
        self._admissions.setdefault(job.spec.user, []).append(now)


@dataclass
class PricingPolicy(OperatorPolicy):
    """Charge users for admitted jobs; reject when the budget runs dry.

    The price follows the paper's sketch — "the cost depends on the job
    size and the deadline": the job's single-GPU work in GPU-hours times a
    base rate, multiplied by an urgency factor that grows as the deadline
    tightens relative to that work.

    Attributes:
        budgets: Remaining credit per user.
        rate_per_gpu_hour: Base price of one GPU-hour of work.
        urgency_exponent: How steeply tight deadlines cost extra.
        curves: Scaling-curve lookup used to size jobs (model, batch) ->
            curve; populate via :meth:`register_curve`.
    """

    budgets: dict[str, float]
    rate_per_gpu_hour: float = 1.0
    urgency_exponent: float = 0.5
    curves: dict[tuple[str, int], ScalingCurve] = field(default_factory=dict)
    spent: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rate_per_gpu_hour <= 0:
            raise ConfigurationError("rate_per_gpu_hour must be > 0")
        if self.urgency_exponent < 0:
            raise ConfigurationError("urgency_exponent must be >= 0")
        for user, budget in self.budgets.items():
            if budget < 0:
                raise ConfigurationError(f"budget for {user!r} is negative")

    def _single_gpu_hours(self, job: Job) -> float:
        key = (job.spec.model_name, job.spec.global_batch_size)
        curve = self.curves.get(key)
        if curve is None:
            raise ConfigurationError(
                f"no scaling curve registered for {key}; call register_curve"
            )
        return job.spec.max_iterations / curve.throughput(1) / 3600.0

    def register_curve(self, curve: ScalingCurve) -> None:
        """Make a (model, batch) configuration priceable."""
        self.curves[(curve.model.name, curve.global_batch)] = curve

    def price_of(self, job: Job) -> float:
        """Quote for one job: work x rate x urgency."""
        work_hours = self._single_gpu_hours(job)
        if job.spec.best_effort:
            urgency = 1.0
        else:
            slack = job.spec.relative_deadline / 3600.0
            # Tighter deadline than the single-GPU runtime costs extra.
            urgency = max(1.0, work_hours / max(slack, 1e-9)) ** self.urgency_exponent
        return work_hours * self.rate_per_gpu_hour * urgency

    def balance(self, user: str) -> float:
        """Remaining credit of one user."""
        return self.budgets.get(user, 0.0) - self.spent.get(user, 0.0)

    def approve(self, job: Job, now: float) -> bool:
        """Whether the quoted price fits the user's remaining budget."""
        price = self.price_of(job)
        return math.isfinite(price) and price <= self.balance(job.spec.user)

    def on_admitted(self, job: Job, now: float) -> None:
        """Charge the user for the admitted job."""
        user = job.spec.user
        self.spent[user] = self.spent.get(user, 0.0) + self.price_of(job)


class CompositePolicy(OperatorPolicy):
    """All sub-policies must approve; admission notifies every one."""

    def __init__(self, policies: list[OperatorPolicy]) -> None:
        if not policies:
            raise ConfigurationError("CompositePolicy needs at least one policy")
        self.policies = list(policies)

    def approve(self, job: Job, now: float) -> bool:
        """Approve only when every sub-policy approves."""
        return all(policy.approve(job, now) for policy in self.policies)

    def on_admitted(self, job: Job, now: float) -> None:
        """Notify every sub-policy of the admission."""
        for policy in self.policies:
            policy.on_admitted(job, now)
