"""Bucketed batch evaluation of warm-hinted fill rows (Algorithms 1 + 2).

The sequential solver touches every candidate job with three small numpy
calls (build the per-slot product, cumulative-sum it, compare) — at 16k
GPUs and hundreds of live jobs the Python dispatch overhead of those calls
dominates the arithmetic.  This module packs the candidates' usable-window
weight rows into padded matrices, bucketed by power-of-two window span, and
evaluates every ``(job, cap, slot)`` contribution in a handful of
vectorized passes: one weight matrix, one broadcast multiply, one
``cumsum(axis=1)`` per bucket instead of three calls per job.

Bit-identity contract (the reason this is safe to use on the decision
path):

- A row only enters the batch when its fill is *unclamped* — the minimum
  available capacity across the job's usable window is at least the
  hinted cap, so every per-slot take is ``min(cap, available) == cap`` and
  the per-slot contribution is the constant ``T[S[cap]]`` times the slot
  weight.  The batch multiplies the identical scalar into the identical
  weights, elementwise, exactly as the sequential verification does.
- ``np.cumsum`` along ``axis=1`` of a C-contiguous matrix performs the
  same strictly sequential additions per row as a 1-D ``cumsum`` of that
  row, and the zero padding beyond each window adds exact ``+0.0`` terms,
  so the first ``w`` entries of a padded row equal the unpadded cumulative
  sum bit for bit.  (``np.sum``'s pairwise reduction would *not* have this
  property; nothing here uses it.)

Whether a batched row may actually be *used* for a given job is decided by
the caller at commit time (deadline order), because availability depends
on the plans committed ahead of it; the rows themselves are pure functions
of the planning views and can be built once up front.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernels import kernels_enabled, ladder_rows
from repro.numeric import next_power_of_two

__all__ = ["WarmRowBatch", "bucket_width"]


def bucket_width(length: int) -> int:
    """Smallest power of two >= ``length`` (the padding bucket a window
    length lands in — the interval index over usable-window spans)."""
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    return next_power_of_two(length)


class WarmRowBatch:
    """Cumulative-progress rows for warm-hinted caps, solved in buckets.

    Usage: ``add`` every candidate (its usable-window weights, the constant
    per-slot throughputs of the hinted cap and of the next-lower cap), then
    ``solve`` once, then read back per-candidate results by the handle
    ``add`` returned.  ``hint_row`` is the full sequential cumulative sum
    of the hinted cap's contributions (what the sequential verification
    calls ``progress``); ``below_total`` is the final entry of the
    next-lower cap's row (its feasibility total).
    """

    def __init__(self) -> None:
        self._weights: list[np.ndarray] = []
        self._thr_hint: list[float] = []
        self._thr_below: list[float] = []
        self._rows: list[np.ndarray] = []
        self._below_totals: list[float] = []

    def __len__(self) -> int:
        return len(self._weights)

    def add(self, weights: np.ndarray, thr_hint: float, thr_below: float) -> int:
        """Queue one candidate; returns its handle.

        Args:
            weights: The job's usable-window weight slice (length >= 1).
            thr_hint: ``T[S[cap]]`` of the hinted cap — the constant
                per-slot throughput of an unclamped fill at that cap.
            thr_below: Same for the next-lower cap, or ``0.0`` when the
                hint is already the smallest cap (a zero row's total is
                ``0.0``, which never reaches a positive threshold, so the
                "no smaller cap suffices" check degenerates correctly).
        """
        handle = len(self._weights)
        self._weights.append(weights)
        self._thr_hint.append(thr_hint)
        self._thr_below.append(thr_below)
        return handle

    #: Below this many rows the padded-matrix assembly costs more than the
    #: numpy dispatch it saves; rows are evaluated directly instead (the
    #: same scalar-broadcast multiply and sequential cumsum, so the results
    #: are bit-identical either way — see the module docstring).
    SMALL_BATCH = 8

    def solve(self) -> None:
        """Evaluate every queued candidate, bucket by window span."""
        self.solve_pending()

    def solve_pending(self) -> None:
        """Evaluate only candidates queued since the last solve.

        The batch is append-only: already-solved rows keep their results,
        and each call buckets just the pending tail.  Because the direct
        and bucketed paths are bit-identical (module docstring), splitting
        the same candidates across several solves yields exactly the rows
        a single all-at-once :meth:`solve` would have — which is what lets
        Algorithm 2's upgrade engine re-propose follow-up rows through the
        same batch that solved the seed proposals.
        """
        n = len(self._weights)
        solved = len(self._rows)
        if solved == n:
            return
        pending = range(solved, n)
        self._rows.extend([np.empty(0)] * (n - solved))
        self._below_totals.extend([0.0] * (n - solved))
        if len(pending) < self.SMALL_BATCH:
            for i in pending:
                weights = self._weights[i]
                self._rows[i] = np.cumsum(self._thr_hint[i] * weights)
                self._below_totals[i] = float(
                    np.cumsum(self._thr_below[i] * weights)[-1]
                )
            return
        buckets: dict[int, list[int]] = {}
        for i in pending:
            buckets.setdefault(bucket_width(len(self._weights[i])), []).append(i)
        for width, members in buckets.items():
            lengths = np.array(
                [len(self._weights[i]) for i in members], dtype=np.int64
            )
            padded = np.zeros((len(members), width), dtype=np.float64)
            for row, i in enumerate(members):
                padded[row, : lengths[row]] = self._weights[i]
            thr_hint = np.array(
                [self._thr_hint[i] for i in members], dtype=np.float64
            )
            thr_below = np.array(
                [self._thr_below[i] for i in members], dtype=np.float64
            )
            if kernels_enabled():
                # Compiled fused row loop: same IEEE ops, same order (see
                # repro.core.kernels for the bit-identity argument).
                hint_rows, ends = ladder_rows(padded, thr_hint, thr_below, lengths)
            else:
                hint_rows = np.cumsum(thr_hint[:, None] * padded, axis=1)
                below_rows = np.cumsum(thr_below[:, None] * padded, axis=1)
                ends = below_rows[np.arange(len(members)), lengths - 1]
            for row, i in enumerate(members):
                self._rows[i] = hint_rows[row, : lengths[row]]
                self._below_totals[i] = float(ends[row])

    def hint_row(self, handle: int) -> np.ndarray:
        """The hinted cap's sequential cumulative-progress row (length w)."""
        assert handle < len(self._rows), "solve() not called for this handle"
        return self._rows[handle]

    def below_total(self, handle: int) -> float:
        """Feasibility total of the next-lower cap's row."""
        assert handle < len(self._below_totals), "solve() not called for this handle"
        return self._below_totals[handle]
