"""Admission control via Minimum Satisfactory Share (paper Section 4.1).

The *Minimum Satisfactory Share* of a job is the least resource plan that
still meets its deadline, given the shares already promised to jobs with
earlier deadlines.  Algorithm 1 of the paper computes it by progressive
filling: sort jobs by deadline, then for each job raise a GPU-count cap
``j`` until the iterations achievable before the deadline — using at most
``j`` GPUs per slot and never more than the slot's leftover capacity —
reach the job's remaining work.  A new job is admitted only if every
admitted job (including the newcomer) can still be satisfied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.job import Job
from repro.core.plan import Ledger
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.profiles.throughput import ScalingCurve

__all__ = [
    "PlanningJob",
    "planning_job",
    "progressive_filling",
    "AdmissionResult",
    "AdmissionController",
]

_EPS = 1e-9


@dataclass
class PlanningJob:
    """Everything the planning algorithms need to know about one job.

    Attributes:
        job_id: The job's identifier.
        remaining_iterations: Work left, possibly inflated by a safety margin.
        deadline: Absolute deadline (``inf`` for best-effort jobs).
        weights: Usable seconds per slot before the deadline.
        throughput_table: ``T[x]`` — iterations/sec when handed ``x`` GPUs.
        size_table: ``S[x]`` — GPUs actually used when handed ``x``.
        sizes: Candidate GPU-count caps in increasing order.
        best_effort: Whether the job is exempt from admission control.
        degraded: Set by the planner when the job's deadline can no longer
            be met (e.g. it was admitted earlier and fell behind).  Degraded
            jobs lose their reservation and are served from leftovers like
            best-effort jobs — the paper's soft-deadline behaviour
            (Section 4.4): admitted feasible jobs keep their guarantee,
            everything else finishes as early as possible.
    """

    job_id: str
    remaining_iterations: float
    deadline: float
    weights: np.ndarray
    throughput_table: np.ndarray
    size_table: np.ndarray
    sizes: list[int]
    best_effort: bool = False
    degraded: bool = False
    min_share_plan: np.ndarray | None = field(default=None, repr=False)

    def progress_of(self, plan: np.ndarray) -> float:
        """Iterations achieved by a plan before this job's deadline."""
        return float(np.sum(self.throughput_table[plan] * self.weights))

    def gpu_seconds_of(self, plan: np.ndarray) -> float:
        """GPU-time a plan consumes within this job's usable window."""
        return float(np.sum(plan * self.weights))

    def next_size_after(self, current: int) -> int | None:
        """Smallest allowed size strictly above ``current`` (None at the top)."""
        for size in self.sizes:
            if size > current:
                return size
        return None


def planning_job(
    job: Job,
    curve: ScalingCurve,
    grid: SlotGrid,
    capacity: int,
    *,
    safety_margin: float = 0.0,
    deadline_padding_s: float = 0.0,
) -> PlanningJob:
    """Build the planning view of a runtime job.

    Args:
        job: Runtime job state (its remaining iterations are what is planned).
        curve: The job's scaling curve under compact placement.
        grid: Current planning grid.
        capacity: Cluster GPU count (table width).
        safety_margin: Fraction by which to inflate remaining work so that
            scaling overheads cannot silently break the deadline guarantee.
        deadline_padding_s: Seconds subtracted from the deadline during
            planning — a time-shaped allowance for the per-event
            checkpoint/restore stalls the executor charges.  The true
            deadline still decides whether the job ultimately met it.
    """
    if safety_margin < 0:
        raise ConfigurationError(f"safety_margin must be >= 0, got {safety_margin}")
    if deadline_padding_s < 0:
        raise ConfigurationError(
            f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
        )
    sizes = curve.allowed_sizes(capacity)
    throughput_table = curve.table(capacity)
    size_table = np.zeros(capacity + 1, dtype=np.int64)
    best, best_thr = 0, 0.0
    allowed = set(sizes)
    for x in range(1, capacity + 1):
        if x in allowed and curve.throughput(x) > best_thr:
            best, best_thr = x, curve.throughput(x)
        size_table[x] = best
    deadline = job.spec.effective_deadline
    planning_deadline = deadline
    if not math.isinf(deadline) and deadline_padding_s:
        # Scale-events (and hence stalls) accrue over a job's lifetime, so
        # the allowance is proportional to the time left, capped at the
        # configured maximum — short jobs are not over-penalised.
        padding = min(deadline_padding_s, 0.1 * max(0.0, deadline - grid.origin))
        planning_deadline = deadline - padding
    return PlanningJob(
        job_id=job.job_id,
        remaining_iterations=job.remaining_iterations * (1.0 + safety_margin),
        deadline=planning_deadline,
        weights=grid.weights_until(planning_deadline),
        throughput_table=throughput_table,
        size_table=size_table,
        sizes=sizes,
        best_effort=job.spec.best_effort,
    )


def progressive_filling(
    info: PlanningJob,
    available: np.ndarray,
    *,
    start_slot: int = 0,
    head: np.ndarray | None = None,
) -> np.ndarray | None:
    """Compute the minimum satisfactory share of one job (Algorithm 1 inner loop).

    Raises the per-slot GPU cap through ``info.sizes`` until the achievable
    progress before the deadline covers the remaining work; within a cap the
    job takes ``min(cap, leftover capacity)`` GPUs in every usable slot,
    rounded down to a size it can actually run at.  The returned plan is
    trimmed after the completion slot so later slots stay free for others.

    Args:
        info: Planning view of the job.
        available: Leftover GPUs per slot *excluding* this job's own plan.
        start_slot: First slot the fill may touch (Algorithm 2 re-fills
            tails with ``start_slot=1``).
        head: Fixed allocations for slots before ``start_slot``; their
            progress counts toward the requirement.

    Returns:
        A full-horizon plan, or ``None`` when no cap satisfies the deadline.
    """
    horizon = len(available)
    plan = np.zeros(horizon, dtype=np.int64)
    base_progress = 0.0
    if head is not None:
        plan[:start_slot] = head[:start_slot]
        base_progress = float(
            np.sum(
                info.throughput_table[plan[:start_slot]] * info.weights[:start_slot]
            )
        )
    required = info.remaining_iterations - base_progress
    if required <= _EPS:
        return plan

    tail_available = np.maximum(available[start_slot:], 0)
    tail_weights = info.weights[start_slot:]
    for cap in info.sizes:
        x = info.size_table[np.minimum(cap, tail_available)]
        progress = np.cumsum(info.throughput_table[x] * tail_weights)
        if progress[-1] >= required - _EPS:
            done = int(np.searchsorted(progress, required - _EPS))
            plan[start_slot : start_slot + done + 1] = x[: done + 1]
            # Shave the completion slot to the smallest size that still
            # finishes the residual work: the uniform cap over-provisions
            # the final slot, and the spare GPUs may be exactly what a
            # later-deadline job needs.
            earlier = float(progress[done - 1]) if done > 0 else 0.0
            residual = required - earlier
            final_weight = float(tail_weights[done])
            if final_weight > 0:
                for size in info.sizes:
                    if size > int(x[done]):
                        break
                    if info.throughput_table[size] * final_weight >= residual - _EPS:
                        plan[start_slot + done] = size
                        break
            return plan
    return None


@dataclass
class AdmissionResult:
    """Outcome of running Algorithm 1 over a job set.

    Attributes:
        admitted: Whether the candidate (if any) can be admitted.
        plans: Minimum satisfactory share per job id (only when feasible).
        ledger: Occupancy ledger pre-loaded with those plans.
        infeasible_job: The first job whose deadline could not be met.
        degraded: Jobs whose deadlines are unmeetable; they hold zero
            reservation and run from leftovers (Section 4.4 soft handling).
    """

    admitted: bool
    plans: dict[str, np.ndarray]
    ledger: Ledger
    infeasible_job: str | None = None
    degraded: set[str] = field(default_factory=set)


class AdmissionController:
    """Algorithm 1: deadline-ordered progressive filling over all jobs.

    Args:
        capacity: Number of GPUs in the cluster.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity

    def plan_shares(
        self,
        infos: list[PlanningJob],
        grid: SlotGrid,
        *,
        stop_on_failure: bool = True,
    ) -> AdmissionResult:
        """Fill minimum satisfactory shares for every SLO job, deadline order.

        Best-effort jobs receive an all-zero share (they are served from
        leftovers by Algorithm 2).  With ``stop_on_failure=False`` an
        infeasible job is *degraded* instead of aborting the fill: it loses
        its reservation and joins the best-effort leftover queue, so a job
        that was admitted earlier but fell behind (e.g. accumulated scaling
        overheads) cannot poison the guarantees of everyone else.
        """
        ledger = Ledger(self.capacity, grid.horizon)
        plans: dict[str, np.ndarray] = {}
        infeasible: str | None = None
        degraded: set[str] = set()
        ordered = sorted(infos, key=lambda i: (i.deadline, i.job_id))
        for info in ordered:
            info.degraded = False
            if info.best_effort:
                plan = np.zeros(grid.horizon, dtype=np.int64)
            else:
                plan = progressive_filling(info, ledger.available())
                if plan is None:
                    if stop_on_failure:
                        return AdmissionResult(
                            admitted=False,
                            plans={},
                            ledger=ledger,
                            infeasible_job=info.job_id,
                        )
                    infeasible = infeasible or info.job_id
                    info.degraded = True
                    degraded.add(info.job_id)
                    plan = np.zeros(grid.horizon, dtype=np.int64)
            info.min_share_plan = plan
            plans[info.job_id] = plan
            ledger.set_plan(info.job_id, plan)
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
        )

    def try_admit(
        self,
        candidate: PlanningJob,
        admitted: list[PlanningJob],
        grid: SlotGrid,
    ) -> AdmissionResult:
        """Decide whether adding ``candidate`` keeps every deadline feasible.

        Jobs that are *already* infeasible (degraded — e.g. their deadlines
        lie in the past) do not veto the newcomer: their guarantee is lost
        either way, so only newly-broken deadlines count against admission.
        """
        if candidate.best_effort:
            # Best-effort jobs are always accepted (Section 4.4).
            result = self.plan_shares(
                admitted + [candidate], grid, stop_on_failure=False
            )
            result.admitted = True
            return result
        baseline_degraded = self.plan_shares(
            admitted, grid, stop_on_failure=False
        ).degraded
        result = self.plan_shares(
            admitted + [candidate], grid, stop_on_failure=False
        )
        newly_broken = result.degraded - baseline_degraded - {candidate.job_id}
        result.admitted = (
            candidate.job_id not in result.degraded and not newly_broken
        )
        return result
