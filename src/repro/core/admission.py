"""Admission control via Minimum Satisfactory Share (paper Section 4.1).

The *Minimum Satisfactory Share* of a job is the least resource plan that
still meets its deadline, given the shares already promised to jobs with
earlier deadlines.  Algorithm 1 of the paper computes it by progressive
filling: sort jobs by deadline, then for each job raise a GPU-count cap
``j`` until the iterations achievable before the deadline — using at most
``j`` GPUs per slot and never more than the slot's leftover capacity —
reach the job's remaining work.  A new job is admitted only if every
admitted job (including the newcomer) can still be satisfied.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.job import Job
from repro.core.plan import Ledger
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.numeric import EPS
from repro.perf.coherence import coherent, keyed
from repro.perf.tables import cache_enabled, note_warm_fill, planning_tables_for
from repro.profiles.throughput import ScalingCurve

__all__ = [
    "PlanningJob",
    "planning_job",
    "progressive_filling",
    "AdmissionResult",
    "AdmissionController",
]

_EPS = EPS  # the shared numeric tolerance (repro.numeric)


@coherent(
    remaining_iterations="frozen",
    deadline="frozen",
    weights="frozen",
    throughput_table="frozen",
    size_table="frozen",
    sizes="frozen",
    best_effort="frozen",
    tables_token="frozen",
)
@dataclass
class PlanningJob:
    """Everything the planning algorithms need to know about one job.

    The planning inputs are declared *frozen* coherent state: downstream
    fill fingerprints hash them via ``tables_token``, so mutating any of
    them after construction would silently desynchronise cached plans.
    Build a fresh view instead (``planning_job``).  Only ``degraded`` and
    ``min_share_plan`` are mutable working state.

    Attributes:
        job_id: The job's identifier.
        remaining_iterations: Work left, possibly inflated by a safety margin.
        deadline: Absolute deadline (``inf`` for best-effort jobs).
        weights: Usable seconds per slot before the deadline.
        throughput_table: ``T[x]`` — iterations/sec when handed ``x`` GPUs.
        size_table: ``S[x]`` — GPUs actually used when handed ``x``.
        sizes: Candidate GPU-count caps in increasing order.
        best_effort: Whether the job is exempt from admission control.
        tables_token: Build token of the memoized planning tables this view
            was derived from (see :mod:`repro.perf.tables`); ``-1`` for
            hand-built views.  Fingerprint-based plan caching is skipped
            whenever any participating job carries ``-1``.
        degraded: Set by the planner when the job's deadline can no longer
            be met (e.g. it was admitted earlier and fell behind).  Degraded
            jobs lose their reservation and are served from leftovers like
            best-effort jobs — the paper's soft-deadline behaviour
            (Section 4.4): admitted feasible jobs keep their guarantee,
            everything else finishes as early as possible.
    """

    job_id: str
    remaining_iterations: float
    deadline: float
    weights: np.ndarray
    throughput_table: np.ndarray
    size_table: np.ndarray
    sizes: Sequence[int]
    best_effort: bool = False
    tables_token: int = -1
    degraded: bool = False
    min_share_plan: np.ndarray | None = field(default=None, repr=False)

    def progress_of(self, plan: np.ndarray) -> float:
        """Iterations achieved by a plan before this job's deadline.

        Slots past the usable window carry zero weight, so restricting the
        product to the window adds the exact same terms (every excluded
        term is ``+0.0``) while keeping the arrays short.  The
        cache-disabled path evaluates the plain full-horizon expression,
        matching the reference fill's from-scratch discipline.
        """
        if not cache_enabled():
            return float((self.throughput_table[plan] * self.weights).sum())
        w = self.window(0)
        return float((self.throughput_table[plan[:w]] * self.weights[:w]).sum())

    def gpu_seconds_of(self, plan: np.ndarray) -> float:
        """GPU-time a plan consumes within this job's usable window."""
        if not cache_enabled():
            return float((plan * self.weights).sum())
        w = self.window(0)
        return float((plan[:w] * self.weights[:w]).sum())

    def window(self, start_slot: int) -> int:
        """Length of the usable window from ``start_slot``.

        The window runs up to the job's last nonzero weight — beyond it no
        slot can contribute progress, so every planning decision is a
        function of capacity inside the window only.  Memoized per view
        (the hot loops ask for the same window thousands of times) unless
        the planning cache is disabled, in which case it is recomputed
        fresh like everything else under the escape hatch.
        """
        if not cache_enabled():
            nonzero = np.flatnonzero(self.weights[start_slot:])
            return int(nonzero[-1]) + 1 if nonzero.size else 0
        windows = self.__dict__.get("_windows")
        if windows is None:
            windows = self.__dict__["_windows"] = {}
        w = windows.get(start_slot)
        if w is None:
            nonzero = np.flatnonzero(self.weights[start_slot:])
            w = int(nonzero[-1]) + 1 if nonzero.size else 0
            windows[start_slot] = w
        return w

    def next_size_after(self, current: int) -> int | None:
        """Smallest allowed size strictly above ``current`` (None at the top)."""
        for size in self.sizes:
            if size > current:
                return size
        return None

    def sizes_array(self) -> np.ndarray:
        """``sizes`` as an int64 array, built once per view (hot-loop use)."""
        arr = self.__dict__.get("_sizes_array")
        if arr is None:
            arr = np.asarray(self.sizes, dtype=np.int64)
            self.__dict__["_sizes_array"] = arr
        return arr


def planning_job(
    job: Job,
    curve: ScalingCurve,
    grid: SlotGrid,
    capacity: int,
    *,
    safety_margin: float = 0.0,
    deadline_padding_s: float = 0.0,
) -> PlanningJob:
    """Build the planning view of a runtime job.

    Args:
        job: Runtime job state (its remaining iterations are what is planned).
        curve: The job's scaling curve under compact placement.
        grid: Current planning grid.
        capacity: Cluster GPU count (table width).
        safety_margin: Fraction by which to inflate remaining work so that
            scaling overheads cannot silently break the deadline guarantee.
        deadline_padding_s: Seconds subtracted from the deadline during
            planning — a time-shaped allowance for the per-event
            checkpoint/restore stalls the executor charges.  The true
            deadline still decides whether the job ultimately met it.
    """
    if safety_margin < 0:
        raise ConfigurationError(f"safety_margin must be >= 0, got {safety_margin}")
    if deadline_padding_s < 0:
        raise ConfigurationError(
            f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
        )
    tables = planning_tables_for(curve, capacity)
    deadline = job.spec.effective_deadline
    planning_deadline = deadline
    if not math.isinf(deadline) and deadline_padding_s:
        # Scale-events (and hence stalls) accrue over a job's lifetime, so
        # the allowance is proportional to the time left, capped at the
        # configured maximum — short jobs are not over-penalised.
        padding = min(deadline_padding_s, 0.1 * max(0.0, deadline - grid.origin))
        planning_deadline = deadline - padding
    return PlanningJob(
        job_id=job.job_id,
        remaining_iterations=job.remaining_iterations * (1.0 + safety_margin),
        deadline=planning_deadline,
        weights=grid.weights_until(planning_deadline),
        throughput_table=tables.throughput_table,
        size_table=tables.size_table,
        sizes=tables.sizes,
        best_effort=job.spec.best_effort,
        tables_token=tables.token,
    )


def progressive_filling(
    info: PlanningJob,
    available: np.ndarray,
    *,
    start_slot: int = 0,
    head: np.ndarray | None = None,
    warm_hints: dict[tuple[str, int], int] | None = None,
) -> np.ndarray | None:
    """Compute the minimum satisfactory share of one job (Algorithm 1 inner loop).

    Raises the per-slot GPU cap through ``info.sizes`` until the achievable
    progress before the deadline covers the requirement; within a cap the
    job takes ``min(cap, leftover capacity)`` GPUs in every usable slot,
    rounded down to a size it can actually run at.  The returned plan is
    trimmed after the completion slot so later slots stay free for others.

    Two implementations share this contract: a straightforward reference
    scan that rebuilds the per-slot contribution cap by cap in a Python
    loop, and a fast path that evaluates every ``(cap, slot)`` pair in one
    vectorized pass over the job's usable window.  Both select the first
    cap whose sequential cumulative progress covers the requirement — the
    fast path's row-wise ``cumsum`` performs the identical additions in
    the identical order — so both produce bit-identical plans;
    :func:`repro.perf.tables.planning_cache_disabled` switches to the
    reference scan (this is what the equivalence regression and the
    benchmark's decision digest verify end to end).

    ``warm_hints`` adds a third, still bit-identical route: the dict maps
    ``(job_id, start_slot)`` to the cap the previous fill of this job
    selected.  Consecutive fills overwhelmingly pick the same cap, so the
    fast path first *verifies* the hinted cap with two O(window) row
    evaluations — the hinted row must be feasible and the next-lower cap
    infeasible — and only falls back to the full 2-D scan when the
    verification fails.  Minimality of the verified row follows from
    monotonicity: per-slot takes ``min(cap, available)`` are non-decreasing
    in the cap and the tables are monotone, so row feasibility is monotone
    in the cap and "feasible here, infeasible one below" pins the exact row
    ``argmax`` would have picked.  The verified row's plan is emitted by
    the same code as the scanned row's, from the same sequential cumulative
    sums, so the plan is bit-identical either way.  The dict is updated in
    place with the cap actually chosen (hints are advisory state — see the
    ``verified`` coherence class in :mod:`repro.perf.coherence`).

    Args:
        info: Planning view of the job.
        available: Leftover GPUs per slot *excluding* this job's own plan.
        start_slot: First slot the fill may touch (Algorithm 2 re-fills
            tails with ``start_slot=1``).
        head: Fixed allocations for slots before ``start_slot``; their
            progress counts toward the requirement.
        warm_hints: Previous cap choices keyed by ``(job_id, start_slot)``;
            mutated in place.  Ignored (left untouched) on the
            cache-disabled reference path.

    Returns:
        A full-horizon plan, or ``None`` when no cap satisfies the deadline.
    """
    if not cache_enabled():
        return _progressive_filling_reference(
            info, available, start_slot=start_slot, head=head
        )
    horizon = len(available)
    plan = np.zeros(horizon, dtype=np.int64)
    base_progress = 0.0
    if head is not None:
        plan[:start_slot] = head[:start_slot]
        if start_slot == 1:
            # Algorithm 2's tail refills fix exactly one head slot; the
            # single product is the same multiplication the vector
            # expression below performs, minus the array round trip.
            base_progress = float(info.throughput_table[plan[0]]) * float(
                info.weights[0]
            )
        else:
            base_progress = float(
                (
                    info.throughput_table[plan[:start_slot]]
                    * info.weights[:start_slot]
                ).sum()
            )
    required = info.remaining_iterations - base_progress
    if required <= _EPS:
        return plan

    sizes = info.sizes
    if not sizes:
        return None
    throughput_table = info.throughput_table
    size_table = info.size_table

    # Everything the fill decides depends only on capacity inside the
    # *usable window* — the slots up to the last nonzero weight.  Later
    # slots contribute no progress and are never written (the completion
    # slot always lands inside the window, because the progress crossing
    # happens at a slot with a nonzero contribution), so all vector work
    # below runs on window-length slices: zero-weight tails add exact
    # zeros to every cumulative sum, so the shortened arrays produce
    # bit-identical decisions while the horizon may be an order of
    # magnitude longer than the window.
    usable = info.window(start_slot)
    if usable == 0:
        return None
    tail_weights = info.weights[start_slot : start_slot + usable]
    tail_available = np.maximum(available[start_slot : start_slot + usable], 0)
    threshold = required - _EPS

    hint_key = None
    if warm_hints is not None:
        hint_key = (info.job_id, start_slot)
        warm = _verify_warm_row(
            info, warm_hints.get(hint_key), tail_available, tail_weights, threshold
        )
        note_warm_fill(warm is not None)
        if warm is not None:
            x, progress = warm
            return _emit_plan(
                info, plan, x, progress, required, threshold, tail_weights, start_slot
            )

    # Evaluate every (cap, slot) pair in one vectorized pass: row `i` of
    # `progress` is exactly the cumulative-progress array the reference
    # scan builds for cap `sizes[i]` (cumsum along an axis performs the
    # same additions in the same sequential order), so selecting the first
    # feasible row reproduces the reference's cap choice, completion slot,
    # and plan bit for bit — without a Python-level loop over caps.
    x2d = size_table[np.minimum.outer(info.sizes_array(), tail_available)]
    progress2d = np.cumsum(throughput_table[x2d] * tail_weights, axis=1)
    feasible = progress2d[:, -1] >= threshold
    if not feasible.any():
        if hint_key is not None:
            # A hint for an infeasible fill can never verify; drop it so
            # repeated failures skip the two wasted row evaluations.
            warm_hints.pop(hint_key, None)
        return None
    row = int(np.argmax(feasible))
    if hint_key is not None:
        warm_hints[hint_key] = sizes[row]
    return _emit_plan(
        info,
        plan,
        x2d[row],
        progress2d[row],
        required,
        threshold,
        tail_weights,
        start_slot,
    )


def _verify_warm_row(
    info: PlanningJob,
    cap: int | None,
    tail_available: np.ndarray,
    tail_weights: np.ndarray,
    threshold: float,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Check a hinted cap in O(window); returns its ``(x, progress)`` row.

    The hint verifies when its row is feasible and the next-lower cap's row
    is not — by cap-monotonicity of per-slot progress that makes it exactly
    the first feasible row of the full scan.  Feasibility totals come from
    the *sequential* cumulative sum (never ``np.sum``, whose pairwise
    reduction could round a boundary comparison the other way), so the
    accept/reject decision matches the 2-D scan bit for bit.
    """
    if cap is None:
        return None
    arr = info.sizes_array()
    idx = int(np.searchsorted(arr, cap))
    if idx >= arr.size or int(arr[idx]) != cap:
        return None  # stale hint from a different table build
    x = info.size_table[np.minimum(cap, tail_available)]
    progress = np.cumsum(info.throughput_table[x] * tail_weights)
    if progress[-1] < threshold:
        return None
    if idx > 0:
        below = int(arr[idx - 1])
        x_below = info.size_table[np.minimum(below, tail_available)]
        total_below = np.cumsum(info.throughput_table[x_below] * tail_weights)[-1]
        if total_below >= threshold:
            return None  # a smaller cap suffices: the hint is not minimal
    return x, progress


def _emit_plan(
    info: PlanningJob,
    plan: np.ndarray,
    x: np.ndarray,
    progress: np.ndarray,
    required: float,
    threshold: float,
    tail_weights: np.ndarray,
    start_slot: int,
) -> np.ndarray:
    """Write the selected cap's row into ``plan`` (shared by scan and warm paths)."""
    done = int(np.searchsorted(progress, threshold))
    plan[start_slot : start_slot + done + 1] = x[: done + 1]
    x_done = int(x[done])
    # Shave the completion slot to the smallest size that still finishes
    # the residual work: the selected cap over-provisions the final slot,
    # and the spare GPUs may be exactly what a later-deadline job needs.
    earlier = float(progress[done - 1]) if done > 0 else 0.0
    residual = required - earlier
    final_weight = float(tail_weights[done])
    if final_weight > 0:
        for size in info.sizes:
            if size > x_done:
                break
            if info.throughput_table[size] * final_weight >= residual - _EPS:
                plan[start_slot + done] = size
                break
    return plan


def _progressive_filling_reference(
    info: PlanningJob,
    available: np.ndarray,
    *,
    start_slot: int = 0,
    head: np.ndarray | None = None,
) -> np.ndarray | None:
    """The straightforward Algorithm 1 inner loop: full rebuild per cap.

    This is the pre-fast-path implementation, kept verbatim as the
    behavioural yardstick: the cache-disabled escape hatch routes here, and
    the equivalence tests assert the fast scan reproduces its decisions
    bit for bit.
    """
    horizon = len(available)
    plan = np.zeros(horizon, dtype=np.int64)
    base_progress = 0.0
    if head is not None:
        plan[:start_slot] = head[:start_slot]
        base_progress = float(
            np.sum(
                info.throughput_table[plan[:start_slot]] * info.weights[:start_slot]
            )
        )
    required = info.remaining_iterations - base_progress
    if required <= _EPS:
        return plan

    tail_available = np.maximum(available[start_slot:], 0)
    tail_weights = info.weights[start_slot:]
    for cap in info.sizes:
        x = info.size_table[np.minimum(cap, tail_available)]
        progress = np.cumsum(info.throughput_table[x] * tail_weights)
        if progress[-1] >= required - _EPS:
            done = int(np.searchsorted(progress, required - _EPS))
            plan[start_slot : start_slot + done + 1] = x[: done + 1]
            earlier = float(progress[done - 1]) if done > 0 else 0.0
            residual = required - earlier
            final_weight = float(tail_weights[done])
            if final_weight > 0:
                for size in info.sizes:
                    if size > int(x[done]):
                        break
                    if info.throughput_table[size] * final_weight >= residual - _EPS:
                        plan[start_slot + done] = size
                        break
            return plan
    return None


@dataclass
class AdmissionResult:
    """Outcome of running Algorithm 1 over a job set.

    Attributes:
        admitted: Whether the candidate (if any) can be admitted.
        plans: Minimum satisfactory share per job id (only when feasible).
        ledger: Occupancy ledger pre-loaded with those plans.
        infeasible_job: The first job whose deadline could not be met.
        degraded: Jobs whose deadlines are unmeetable; they hold zero
            reservation and run from leftovers (Section 4.4 soft handling).
    """

    admitted: bool
    plans: dict[str, np.ndarray]
    ledger: Ledger
    infeasible_job: str | None = None
    degraded: set[str] = field(default_factory=set)


@dataclass
class _RetainedFill:
    """The previous soft fill, kept for the event-delta replanning path.

    Attributes:
        grid_key: ``(origin, slot_seconds, horizon)`` of the grid the fill
            ran on — a delta is only attempted on the identical grid.
        order: The SLO jobs in fill order, each as
            ``(deadline, job_id, remaining_iterations, tables_token)``.
        plans: Plan per SLO job id (frozen arrays, shared by reference with
            the ledger the fill produced).
        degraded: SLO jobs whose deadlines were unmeetable in that fill.
    """

    grid_key: tuple[float, float, int]
    order: list[tuple[float, str, float, int]]
    plans: dict[str, np.ndarray]
    degraded: frozenset[str]


@keyed(_fill_cache="_fingerprint", _retained="_fingerprint")
@coherent(_warm_hints="verified")
class AdmissionController:
    """Algorithm 1: deadline-ordered progressive filling over all jobs.

    The controller memoizes complete ``plan_shares`` fills (soft mode only)
    keyed by a fingerprint of the participating jobs and the grid: on every
    scheduling event the policy runs Algorithm 1 two to three times over
    the identical job set (admission baseline, admission trial, then the
    allocation pass), and all but the first are replayed from the cache.
    Fingerprints include each job's planning-table token, so a throughput
    correction (online profiling) automatically invalidates dependent
    fills.  The cache is bypassed entirely while
    :func:`repro.perf.tables.planning_cache_disabled` is active or when any
    job carries a hand-built table (token ``-1``).

    Two incremental layers sit on top of the exact-match memo:

    - ``_retained`` remembers the previous soft fill (same ``_fingerprint``
      key discipline).  When the next fill differs only by departures,
      arrivals, or per-job state changes, :meth:`_delta_fill` walks the old
      and new deadline orders in one two-pointer merge, reuses every plan
      whose usable window sees an unchanged capacity prefix, and re-fills
      only the rest — byte-identical to the cold fill because a job's plan
      is a function of exactly (its view, the available-capacity prefix
      ahead of it).
    - ``_warm_hints`` remembers the cap each ``(job_id, start_slot)`` fill
      chose last time, letting :func:`progressive_filling` verify instead
      of scan (``verified`` coherence: every hint is re-checked at use, so
      staleness costs time, never correctness).

    Args:
        capacity: Number of GPUs in the cluster.
    """

    #: Bound on remembered fills; LRU-evicted beyond this.
    FILL_CACHE_LIMIT = 128

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._fill_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._retained: _RetainedFill | None = None
        self._warm_hints: dict[tuple[str, int], int] = {}
        self.fill_cache_hits = 0
        self.fill_cache_misses = 0
        self.delta_hits = 0
        self.delta_reuses = 0
        self.delta_refills = 0

    @property
    def warm_hints(self) -> dict[tuple[str, int], int]:
        """The advisory cap-hint store, shared with Algorithm 2's refills."""
        return self._warm_hints

    # ------------------------------------------------------------- caching
    def _fingerprint(
        self, infos: list[PlanningJob], grid: SlotGrid
    ) -> tuple | None:
        """Hashable identity of one fill, or ``None`` when uncacheable."""
        jobs = []
        for info in infos:
            if info.tables_token < 0:
                return None
            jobs.append(
                (
                    info.job_id,
                    info.remaining_iterations,
                    info.deadline,
                    info.best_effort,
                    info.tables_token,
                )
            )
        return (
            grid.origin,
            grid.slot_seconds,
            grid.horizon,
            tuple(sorted(jobs)),
        )

    def _replay(
        self, infos: list[PlanningJob], grid: SlotGrid, cached: tuple
    ) -> AdmissionResult:
        """Reconstruct a fill from the cache, including info side effects.

        Cached plans are frozen arrays, so the replay shares them by
        reference — one ``load_plans`` bulk restore instead of a copy and
        a ``set_plan`` per job.
        """
        admitted, plans, infeasible, degraded = cached
        out_plans: dict[str, np.ndarray] = {}
        used = np.zeros(grid.horizon, dtype=np.int64)
        for info in sorted(infos, key=lambda i: (i.deadline, i.job_id)):
            plan = plans[info.job_id]
            info.degraded = info.job_id in degraded
            info.min_share_plan = plan
            out_plans[info.job_id] = plan
            used += plan
        ledger = Ledger(self.capacity, grid.horizon)
        ledger.load_plans(out_plans, used)
        return AdmissionResult(
            admitted=admitted,
            plans=out_plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=set(degraded),
        )

    def plan_shares(
        self,
        infos: list[PlanningJob],
        grid: SlotGrid,
        *,
        stop_on_failure: bool = True,
    ) -> AdmissionResult:
        """Fill minimum satisfactory shares for every SLO job, deadline order.

        Best-effort jobs receive an all-zero share (they are served from
        leftovers by Algorithm 2).  With ``stop_on_failure=False`` an
        infeasible job is *degraded* instead of aborting the fill: it loses
        its reservation and joins the best-effort leftover queue, so a job
        that was admitted earlier but fell behind (e.g. accumulated scaling
        overheads) cannot poison the guarantees of everyone else.

        Only soft (``stop_on_failure=False``) fills are memoized: the hard
        mode aborts mid-fill and its partial ledger is not worth replaying.
        Cache misses first try the event-delta path against the retained
        previous fill (:meth:`_delta_fill`) before falling back to the full
        deadline-ordered fill; either way the produced fill becomes the new
        retained snapshot.
        """
        key = None
        if not stop_on_failure and cache_enabled():
            key = self._fingerprint(infos, grid)
            if key is not None:
                cached = self._fill_cache.get(key)
                if cached is not None:
                    self._fill_cache.move_to_end(key)
                    self.fill_cache_hits += 1
                    result = self._replay(infos, grid, cached)
                    self._retained = self._snapshot(infos, grid, result)
                    return result
                self.fill_cache_misses += 1
        result = None
        if key is not None:
            result = self._delta_fill(infos, grid)
        if result is None:
            result = self._fill(infos, grid, stop_on_failure=stop_on_failure)
        if key is not None:
            # Plans are frozen at registration time, so the cache can store
            # them by reference; only the dict container is copied.
            self._fill_cache[key] = (
                result.admitted,
                dict(result.plans),
                result.infeasible_job,
                frozenset(result.degraded),
            )
            while len(self._fill_cache) > self.FILL_CACHE_LIMIT:
                self._fill_cache.popitem(last=False)
            self._retained = self._snapshot(infos, grid, result)
        return result

    def _snapshot(
        self, infos: list[PlanningJob], grid: SlotGrid, result: AdmissionResult
    ) -> _RetainedFill:
        """Package a finished soft fill for the next event's delta pass."""
        order: list[tuple[float, str, float, int]] = []
        plans: dict[str, np.ndarray] = {}
        for info in sorted(infos, key=lambda i: (i.deadline, i.job_id)):
            if info.best_effort:
                continue
            order.append(
                (info.deadline, info.job_id, info.remaining_iterations,
                 info.tables_token)
            )
            plans[info.job_id] = result.plans[info.job_id]
        return _RetainedFill(
            grid_key=(grid.origin, grid.slot_seconds, grid.horizon),
            order=order,
            plans=plans,
            degraded=frozenset(result.degraded),
        )

    def _delta_fill(
        self, infos: list[PlanningJob], grid: SlotGrid
    ) -> AdmissionResult | None:
        """Rebuild a soft fill from the retained one, re-filling only deltas.

        A job's minimum satisfactory share is a pure function of its
        planning view and of the *available-capacity prefix* left by
        earlier-deadline jobs.  Walking the old and new deadline orders
        with one two-pointer merge maintains ``delta`` = (old used prefix)
        − (new used prefix): a surviving job whose view is unchanged and
        whose usable window sees an all-zero delta faces bit-identical
        inputs, so its retained plan (and degraded flag) is reused by
        reference; everything else — arrivals, changed views, jobs behind
        a perturbed prefix — re-runs :func:`progressive_filling` exactly
        as the cold fill would.  Departed jobs' plans enter ``delta`` as
        freed capacity.  Returns ``None`` (caller falls back to the full
        fill) when there is no retained fill for this grid.
        """
        retained = self._retained
        if retained is None:
            return None
        if retained.grid_key != (grid.origin, grid.slot_seconds, grid.horizon):
            return None
        horizon = grid.horizon
        ordered = sorted(infos, key=lambda i: (i.deadline, i.job_id))
        old = retained.order
        old_plans = retained.plans
        n_old = len(old)
        pos = 0
        used = np.zeros(horizon, dtype=np.int64)
        delta: np.ndarray | None = None  # lazily materialized; None == all-zero
        plans: dict[str, np.ndarray] = {}
        degraded: set[str] = set()
        infeasible: str | None = None
        reuses = refills = 0
        for info in ordered:
            if info.best_effort:
                info.degraded = False
                plan = np.zeros(horizon, dtype=np.int64)
                info.min_share_plan = plan
                plans[info.job_id] = plan
                continue
            okey = (info.deadline, info.job_id)
            while pos < n_old and (old[pos][0], old[pos][1]) < okey:
                # Departed (or re-ordered) job: its old plan is freed capacity.
                if delta is None:
                    delta = np.zeros(horizon, dtype=np.int64)
                delta += old_plans[old[pos][1]]
                pos += 1
            had_old = False
            matched = False
            if pos < n_old and (old[pos][0], old[pos][1]) == okey:
                entry = old[pos]
                pos += 1
                had_old = True
                matched = (
                    entry[2] == info.remaining_iterations
                    and entry[3] == info.tables_token
                )
                # An unmatched same-key entry is a view change: handled as
                # departure + arrival (old plan freed, job re-filled).
            info.degraded = False
            old_plan = old_plans[info.job_id] if had_old else None
            if matched:
                w = info.window(0)
                if delta is None or not delta[:w].any():
                    plan = old_plans[info.job_id]
                    if info.job_id in retained.degraded:
                        info.degraded = True
                        degraded.add(info.job_id)
                        infeasible = infeasible or info.job_id
                    info.min_share_plan = plan
                    plans[info.job_id] = plan
                    used += plan
                    reuses += 1
                    continue
            refills += 1
            available = self.capacity - used
            plan = progressive_filling(
                info, available, warm_hints=self._warm_hints
            )
            if plan is None:
                info.degraded = True
                degraded.add(info.job_id)
                infeasible = infeasible or info.job_id
                plan = np.zeros(horizon, dtype=np.int64)
            info.min_share_plan = plan
            plans[info.job_id] = plan
            used += plan
            if old_plan is not None or plan.any():
                if delta is None:
                    delta = np.zeros(horizon, dtype=np.int64)
                delta -= plan
                if old_plan is not None:
                    delta += old_plan
        ledger = Ledger(self.capacity, horizon)
        ledger.load_plans(plans, used)
        self.delta_hits += 1
        self.delta_reuses += reuses
        self.delta_refills += refills
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
        )

    def _fill(
        self,
        infos: list[PlanningJob],
        grid: SlotGrid,
        *,
        stop_on_failure: bool,
    ) -> AdmissionResult:
        ledger = Ledger(self.capacity, grid.horizon)
        plans: dict[str, np.ndarray] = {}
        infeasible: str | None = None
        degraded: set[str] = set()
        ordered = sorted(infos, key=lambda i: (i.deadline, i.job_id))
        for info in ordered:
            info.degraded = False
            if info.best_effort:
                plan = np.zeros(grid.horizon, dtype=np.int64)
            else:
                plan = progressive_filling(
                    info, ledger.available(), warm_hints=self._warm_hints
                )
                if plan is None:
                    if stop_on_failure:
                        return AdmissionResult(
                            admitted=False,
                            plans={},
                            ledger=ledger,
                            infeasible_job=info.job_id,
                        )
                    infeasible = infeasible or info.job_id
                    info.degraded = True
                    degraded.add(info.job_id)
                    plan = np.zeros(grid.horizon, dtype=np.int64)
            info.min_share_plan = plan
            plans[info.job_id] = plan
            ledger.set_plan(info.job_id, plan, trusted=True)
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
        )

    def try_admit(
        self,
        candidate: PlanningJob,
        admitted: list[PlanningJob],
        grid: SlotGrid,
    ) -> AdmissionResult:
        """Decide whether adding ``candidate`` keeps every deadline feasible.

        Jobs that are *already* infeasible (degraded — e.g. their deadlines
        lie in the past) do not veto the newcomer: their guarantee is lost
        either way, so only newly-broken deadlines count against admission.
        """
        if candidate.best_effort:
            # Best-effort jobs are always accepted (Section 4.4).
            result = self.plan_shares(
                admitted + [candidate], grid, stop_on_failure=False
            )
            result.admitted = True
            return result
        baseline_degraded = self.plan_shares(
            admitted, grid, stop_on_failure=False
        ).degraded
        result = self.plan_shares(
            admitted + [candidate], grid, stop_on_failure=False
        )
        newly_broken = result.degraded - baseline_degraded - {candidate.job_id}
        result.admitted = (
            candidate.job_id not in result.degraded and not newly_broken
        )
        return result
