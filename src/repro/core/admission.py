"""Admission control via Minimum Satisfactory Share (paper Section 4.1).

The *Minimum Satisfactory Share* of a job is the least resource plan that
still meets its deadline, given the shares already promised to jobs with
earlier deadlines.  Algorithm 1 of the paper computes it by progressive
filling: sort jobs by deadline, then for each job raise a GPU-count cap
``j`` until the iterations achievable before the deadline — using at most
``j`` GPUs per slot and never more than the slot's leftover capacity —
reach the job's remaining work.  A new job is admitted only if every
admitted job (including the newcomer) can still be satisfied.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import WarmRowBatch
from repro.core.job import Job
from repro.core.plan import Ledger
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.numeric import EPS
from repro.perf.coherence import coherent, keyed, mutates
from repro.perf import probe
from repro.perf.tables import (
    batching_enabled,
    cache_enabled,
    fused_commit_enabled,
    ladder_consts,
    note_batched_walk,
    note_warm_fill,
    planning_tables_for,
    tables_global_revision,
)
from repro.profiles.throughput import ScalingCurve

__all__ = [
    "PlanningJob",
    "planning_job",
    "progressive_filling",
    "AdmissionResult",
    "AdmissionController",
]

_EPS = EPS  # the shared numeric tolerance (repro.numeric)


@coherent(
    remaining_iterations="planning_frame",
    deadline="planning_frame",
    weights="planning_frame",
    throughput_table="frozen",
    size_table="frozen",
    sizes="frozen",
    best_effort="frozen",
    tables_token="frozen",
)
@dataclass
class PlanningJob:
    """Everything the planning algorithms need to know about one job.

    Table-identity state (tables, sizes, token) is declared *frozen*
    coherent state: downstream fill fingerprints hash it via
    ``tables_token``, so mutating it after construction would silently
    desynchronise cached plans — a view is rebuilt, never patched, when
    its tables change.  The event-dependent planning inputs (remaining
    work, padded deadline, weight row) belong to the ``planning_frame``
    dependency: the persistent planning frame
    (``repro.core.scheduler._PlanningFrame``) rewrites them in place on
    every refresh through its declared mutator, which re-seeds the
    per-view window memo in the same step so no derived state can
    survive the inputs it was derived from.  Everywhere else these
    fields are read-only.  Only ``degraded`` and ``min_share_plan`` are
    free mutable working state.

    Attributes:
        job_id: The job's identifier.
        remaining_iterations: Work left, possibly inflated by a safety margin.
        deadline: Absolute deadline (``inf`` for best-effort jobs).
        weights: Usable seconds per slot before the deadline.
        throughput_table: ``T[x]`` — iterations/sec when handed ``x`` GPUs.
        size_table: ``S[x]`` — GPUs actually used when handed ``x``.
        sizes: Candidate GPU-count caps in increasing order.
        best_effort: Whether the job is exempt from admission control.
        tables_token: Build token of the memoized planning tables this view
            was derived from (see :mod:`repro.perf.tables`); ``-1`` for
            hand-built views.  Fingerprint-based plan caching is skipped
            whenever any participating job carries ``-1``.
        degraded: Set by the planner when the job's deadline can no longer
            be met (e.g. it was admitted earlier and fell behind).  Degraded
            jobs lose their reservation and are served from leftovers like
            best-effort jobs — the paper's soft-deadline behaviour
            (Section 4.4): admitted feasible jobs keep their guarantee,
            everything else finishes as early as possible.
    """

    job_id: str
    remaining_iterations: float
    deadline: float
    weights: np.ndarray
    throughput_table: np.ndarray
    size_table: np.ndarray
    sizes: Sequence[int]
    best_effort: bool = False
    tables_token: int = -1
    degraded: bool = False
    min_share_plan: np.ndarray | None = field(default=None, repr=False)

    def progress_of(self, plan: np.ndarray) -> float:
        """Iterations achieved by a plan before this job's deadline.

        Slots past the usable window carry zero weight, so restricting the
        product to the window adds the exact same terms (every excluded
        term is ``+0.0``) while keeping the arrays short.  The
        cache-disabled path evaluates the plain full-horizon expression,
        matching the reference fill's from-scratch discipline.
        """
        if not cache_enabled():
            return float((self.throughput_table[plan] * self.weights).sum())
        w = self.window(0)
        return float((self.throughput_table[plan[:w]] * self.weights[:w]).sum())

    def gpu_seconds_of(self, plan: np.ndarray) -> float:
        """GPU-time a plan consumes within this job's usable window."""
        if not cache_enabled():
            return float((plan * self.weights).sum())
        w = self.window(0)
        return float((plan[:w] * self.weights[:w]).sum())

    def window(self, start_slot: int) -> int:
        """Length of the usable window from ``start_slot``.

        The window runs up to the job's last nonzero weight — beyond it no
        slot can contribute progress, so every planning decision is a
        function of capacity inside the window only.  Memoized per view
        (the hot loops ask for the same window thousands of times) unless
        the planning cache is disabled, in which case it is recomputed
        fresh like everything else under the escape hatch.
        """
        if not cache_enabled():
            nonzero = np.flatnonzero(self.weights[start_slot:])
            return int(nonzero[-1]) + 1 if nonzero.size else 0
        windows = self.__dict__.get("_windows")
        if windows is None:
            windows = self.__dict__["_windows"] = {}
        w = windows.get(start_slot)
        if w is None:
            nonzero = np.flatnonzero(self.weights[start_slot:])
            w = int(nonzero[-1]) + 1 if nonzero.size else 0
            windows[start_slot] = w
        return w

    def next_size_after(self, current: int) -> int | None:
        """Smallest allowed size strictly above ``current`` (None at the top)."""
        for size in self.sizes:
            if size > current:
                return size
        return None

    def sizes_array(self) -> np.ndarray:
        """``sizes`` as an int64 array, built once per view (hot-loop use)."""
        arr = self.__dict__.get("_sizes_array")
        if arr is None:
            arr = np.asarray(self.sizes, dtype=np.int64)
            self.__dict__["_sizes_array"] = arr
        return arr


def planning_job(
    job: Job,
    curve: ScalingCurve,
    grid: SlotGrid,
    capacity: int,
    *,
    safety_margin: float = 0.0,
    deadline_padding_s: float = 0.0,
) -> PlanningJob:
    """Build the planning view of a runtime job.

    Args:
        job: Runtime job state (its remaining iterations are what is planned).
        curve: The job's scaling curve under compact placement.
        grid: Current planning grid.
        capacity: Cluster GPU count (table width).
        safety_margin: Fraction by which to inflate remaining work so that
            scaling overheads cannot silently break the deadline guarantee.
        deadline_padding_s: Seconds subtracted from the deadline during
            planning — a time-shaped allowance for the per-event
            checkpoint/restore stalls the executor charges.  The true
            deadline still decides whether the job ultimately met it.
    """
    if safety_margin < 0:
        raise ConfigurationError(f"safety_margin must be >= 0, got {safety_margin}")
    if deadline_padding_s < 0:
        raise ConfigurationError(
            f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
        )
    tables = planning_tables_for(curve, capacity)
    deadline = job.spec.effective_deadline
    planning_deadline = deadline
    if not math.isinf(deadline) and deadline_padding_s:
        # Scale-events (and hence stalls) accrue over a job's lifetime, so
        # the allowance is proportional to the time left, capped at the
        # configured maximum — short jobs are not over-penalised.
        padding = min(deadline_padding_s, 0.1 * max(0.0, deadline - grid.origin))
        planning_deadline = deadline - padding
    return PlanningJob(
        job_id=job.job_id,
        remaining_iterations=job.remaining_iterations * (1.0 + safety_margin),
        deadline=planning_deadline,
        weights=grid.weights_until(planning_deadline),
        throughput_table=tables.throughput_table,
        size_table=tables.size_table,
        sizes=tables.sizes,
        best_effort=job.spec.best_effort,
        tables_token=tables.token,
    )


def _deadline_order(info: PlanningJob) -> tuple[float, str]:
    """Sort key of the Algorithm 1 deadline walk (EDF, ties broken by id)."""
    return (info.deadline, info.job_id)


def progressive_filling(
    info: PlanningJob,
    available: np.ndarray,
    *,
    start_slot: int = 0,
    head: np.ndarray | None = None,
    warm_hints: dict[tuple[str, int], int] | None = None,
) -> np.ndarray | None:
    """Compute the minimum satisfactory share of one job (Algorithm 1 inner loop).

    Raises the per-slot GPU cap through ``info.sizes`` until the achievable
    progress before the deadline covers the requirement; within a cap the
    job takes ``min(cap, leftover capacity)`` GPUs in every usable slot,
    rounded down to a size it can actually run at.  The returned plan is
    trimmed after the completion slot so later slots stay free for others.

    Two implementations share this contract: a straightforward reference
    scan that rebuilds the per-slot contribution cap by cap in a Python
    loop, and a fast path that evaluates every ``(cap, slot)`` pair in one
    vectorized pass over the job's usable window.  Both select the first
    cap whose sequential cumulative progress covers the requirement — the
    fast path's row-wise ``cumsum`` performs the identical additions in
    the identical order — so both produce bit-identical plans;
    :func:`repro.perf.tables.planning_cache_disabled` switches to the
    reference scan (this is what the equivalence regression and the
    benchmark's decision digest verify end to end).

    ``warm_hints`` adds a third, still bit-identical route: the dict maps
    ``(job_id, start_slot)`` to the cap the previous fill of this job
    selected.  Consecutive fills overwhelmingly pick the same cap, so the
    fast path first *verifies* the hinted cap with two O(window) row
    evaluations — the hinted row must be feasible and the next-lower cap
    infeasible — and only falls back to the full 2-D scan when the
    verification fails.  Minimality of the verified row follows from
    monotonicity: per-slot takes ``min(cap, available)`` are non-decreasing
    in the cap and the tables are monotone, so row feasibility is monotone
    in the cap and "feasible here, infeasible one below" pins the exact row
    ``argmax`` would have picked.  The verified row's plan is emitted by
    the same code as the scanned row's, from the same sequential cumulative
    sums, so the plan is bit-identical either way.  The dict is updated in
    place with the cap actually chosen (hints are advisory state — see the
    ``verified`` coherence class in :mod:`repro.perf.coherence`).

    Args:
        info: Planning view of the job.
        available: Leftover GPUs per slot *excluding* this job's own plan.
        start_slot: First slot the fill may touch (Algorithm 2 re-fills
            tails with ``start_slot=1``).
        head: Fixed allocations for slots before ``start_slot``; their
            progress counts toward the requirement.
        warm_hints: Previous cap choices keyed by ``(job_id, start_slot)``;
            mutated in place.  Ignored (left untouched) on the
            cache-disabled reference path.

    Returns:
        A full-horizon plan, or ``None`` when no cap satisfies the deadline.
    """
    if not cache_enabled():
        return _progressive_filling_reference(
            info, available, start_slot=start_slot, head=head
        )
    horizon = len(available)
    plan = np.zeros(horizon, dtype=np.int64)
    base_progress = 0.0
    if head is not None:
        plan[:start_slot] = head[:start_slot]
        if start_slot == 1:
            # Algorithm 2's tail refills fix exactly one head slot; the
            # single product is the same multiplication the vector
            # expression below performs, minus the array round trip.
            base_progress = float(info.throughput_table[plan[0]]) * float(
                info.weights[0]
            )
        else:
            base_progress = float(
                (
                    info.throughput_table[plan[:start_slot]]
                    * info.weights[:start_slot]
                ).sum()
            )
    required = info.remaining_iterations - base_progress
    if required <= _EPS:
        return plan

    sizes = info.sizes
    if not sizes:
        return None
    throughput_table = info.throughput_table
    size_table = info.size_table

    # Everything the fill decides depends only on capacity inside the
    # *usable window* — the slots up to the last nonzero weight.  Later
    # slots contribute no progress and are never written (the completion
    # slot always lands inside the window, because the progress crossing
    # happens at a slot with a nonzero contribution), so all vector work
    # below runs on window-length slices: zero-weight tails add exact
    # zeros to every cumulative sum, so the shortened arrays produce
    # bit-identical decisions while the horizon may be an order of
    # magnitude longer than the window.
    usable = info.window(start_slot)
    if usable == 0:
        return None
    tail_weights = info.weights[start_slot : start_slot + usable]
    tail_available = np.maximum(available[start_slot : start_slot + usable], 0)
    threshold = required - _EPS

    hint_key = None
    if warm_hints is not None:
        hint_key = (info.job_id, start_slot)
        warm = _verify_warm_row(
            info, warm_hints.get(hint_key), tail_available, tail_weights, threshold
        )
        note_warm_fill(warm is not None)
        if warm is not None:
            x, progress = warm
            return _emit_plan(
                info, plan, x, progress, required, threshold, tail_weights, start_slot
            )

    # Evaluate every (cap, slot) pair in one vectorized pass: row `i` of
    # `progress` is exactly the cumulative-progress array the reference
    # scan builds for cap `sizes[i]` (cumsum along an axis performs the
    # same additions in the same sequential order), so selecting the first
    # feasible row reproduces the reference's cap choice, completion slot,
    # and plan bit for bit — without a Python-level loop over caps.
    x2d = size_table[np.minimum.outer(info.sizes_array(), tail_available)]
    progress2d = np.cumsum(throughput_table[x2d] * tail_weights, axis=1)
    feasible = progress2d[:, -1] >= threshold
    if not feasible.any():
        if hint_key is not None:
            # A hint for an infeasible fill can never verify; drop it so
            # repeated failures skip the two wasted row evaluations.
            warm_hints.pop(hint_key, None)
        return None
    row = int(np.argmax(feasible))
    if hint_key is not None:
        warm_hints[hint_key] = sizes[row]
    return _emit_plan(
        info,
        plan,
        x2d[row],
        progress2d[row],
        required,
        threshold,
        tail_weights,
        start_slot,
    )


def _verify_warm_row(
    info: PlanningJob,
    cap: int | None,
    tail_available: np.ndarray,
    tail_weights: np.ndarray,
    threshold: float,
) -> tuple[np.ndarray | int, np.ndarray] | None:
    """Check a hinted cap in O(window); returns its ``(x, progress)`` row.

    The hint verifies when its row is feasible and the next-lower cap's row
    is not — by cap-monotonicity of per-slot progress that makes it exactly
    the first feasible row of the full scan.  Feasibility totals come from
    the *sequential* cumulative sum (never ``np.sum``, whose pairwise
    reduction could round a boundary comparison the other way), so the
    accept/reject decision matches the 2-D scan bit for bit.
    """
    if cap is None:
        return None
    consts = ladder_consts(
        info.tables_token,
        cap,
        info.sizes,
        info.sizes_array(),
        info.size_table,
        info.throughput_table,
    )
    if consts is None:
        return None  # stale hint from a different table build
    s_cap, thr_hint, below, thr_below = consts
    if batching_enabled() and int(tail_available.min()) >= cap:
        # Unclamped window: every per-slot take is exactly ``cap``, so both
        # rows are constant-throughput rows — the same scalar multiplied
        # into the same weights, summed by the same sequential cumsum as
        # the general expressions below, minus the clamp and two table
        # gathers per row.
        progress = np.cumsum(thr_hint * tail_weights)
        if progress[-1] < threshold:
            return None
        if below:
            if np.cumsum(thr_below * tail_weights)[-1] >= threshold:
                return None
        return s_cap, progress
    x = info.size_table[np.minimum(cap, tail_available)]
    progress = np.cumsum(info.throughput_table[x] * tail_weights)
    if progress[-1] < threshold:
        return None
    if below:
        x_below = info.size_table[np.minimum(below, tail_available)]
        total_below = np.cumsum(info.throughput_table[x_below] * tail_weights)[-1]
        if total_below >= threshold:
            return None  # a smaller cap suffices: the hint is not minimal
    return x, progress


def _emit_plan(
    info: PlanningJob,
    plan: np.ndarray,
    x: np.ndarray | int,
    progress: np.ndarray,
    required: float,
    threshold: float,
    tail_weights: np.ndarray,
    start_slot: int,
) -> np.ndarray:
    """Write the selected cap's row into ``plan`` (shared by scan and warm paths).

    ``x`` may be a scalar: an unclamped fill takes the same size in every
    slot, so the constant stands in for the per-slot row (the broadcast
    assignment writes the identical values the array would have held).
    """
    done = int(np.searchsorted(progress, threshold))
    if isinstance(x, np.ndarray):
        plan[start_slot : start_slot + done + 1] = x[: done + 1]
        x_done = int(x[done])
    else:
        plan[start_slot : start_slot + done + 1] = x
        x_done = int(x)
    # Shave the completion slot to the smallest size that still finishes
    # the residual work: the selected cap over-provisions the final slot,
    # and the spare GPUs may be exactly what a later-deadline job needs.
    earlier = float(progress[done - 1]) if done > 0 else 0.0
    residual = required - earlier
    final_weight = float(tail_weights[done])
    if final_weight > 0:
        for size in info.sizes:
            if size > x_done:
                break
            if info.throughput_table[size] * final_weight >= residual - _EPS:
                plan[start_slot + done] = size
                break
    return plan


def _progressive_filling_reference(
    info: PlanningJob,
    available: np.ndarray,
    *,
    start_slot: int = 0,
    head: np.ndarray | None = None,
) -> np.ndarray | None:
    """The straightforward Algorithm 1 inner loop: full rebuild per cap.

    This is the pre-fast-path implementation, kept verbatim as the
    behavioural yardstick: the cache-disabled escape hatch routes here, and
    the equivalence tests assert the fast scan reproduces its decisions
    bit for bit.
    """
    horizon = len(available)
    plan = np.zeros(horizon, dtype=np.int64)
    base_progress = 0.0
    if head is not None:
        plan[:start_slot] = head[:start_slot]
        base_progress = float(
            np.sum(
                info.throughput_table[plan[:start_slot]] * info.weights[:start_slot]
            )
        )
    required = info.remaining_iterations - base_progress
    if required <= _EPS:
        return plan

    tail_available = np.maximum(available[start_slot:], 0)
    tail_weights = info.weights[start_slot:]
    for cap in info.sizes:
        x = info.size_table[np.minimum(cap, tail_available)]
        progress = np.cumsum(info.throughput_table[x] * tail_weights)
        if progress[-1] >= required - _EPS:
            done = int(np.searchsorted(progress, required - _EPS))
            plan[start_slot : start_slot + done + 1] = x[: done + 1]
            earlier = float(progress[done - 1]) if done > 0 else 0.0
            residual = required - earlier
            final_weight = float(tail_weights[done])
            if final_weight > 0:
                for size in info.sizes:
                    if size > int(x[done]):
                        break
                    if info.throughput_table[size] * final_weight >= residual - _EPS:
                        plan[start_slot + done] = size
                        break
            return plan
    return None


@dataclass
class AdmissionResult:
    """Outcome of running Algorithm 1 over a job set.

    Attributes:
        admitted: Whether the candidate (if any) can be admitted.
        plans: Minimum satisfactory share per job id (only when feasible).
        ledger: Occupancy ledger pre-loaded with those plans.
        infeasible_job: The first job whose deadline could not be met.
        degraded: Jobs whose deadlines are unmeetable; they hold zero
            reservation and run from leftovers (Section 4.4 soft handling).
        slack: Planner-internal window-slack flags: ``slack[job_id]`` is
            True when the producing fill saw at least the job's largest
            runnable size free across its whole usable window, which makes
            the fill a pure function of the planning view (every per-slot
            take is unclamped).  The next event's delta pass reuses such
            plans without inspecting capacity — see
            ``AdmissionController._delta_fill_indexed``.  Empty on
            sequential-solver and cache-disabled fills.
        perturbed: Job ids whose minimum-share plan was *re-filled* this
            event (not reused by reference from the retained fill) — the
            only jobs whose slot-0 share may differ from the previous
            event on this grid.  ``None`` when the producing path cannot
            bound the set (cold fills, cache replays, the sequential
            delta walk); consumers holding per-job state keyed on the
            share (the Algorithm 2 seed index) then rely on their
            self-validation alone.
    """

    admitted: bool
    plans: dict[str, np.ndarray]
    ledger: Ledger
    infeasible_job: str | None = None
    degraded: set[str] = field(default_factory=set)
    slack: dict[str, bool] = field(default_factory=dict, repr=False)
    perturbed: frozenset[str] | None = field(default=None, repr=False)


@dataclass
class _RetainedFill:
    """The previous soft fill, kept for the event-delta replanning path.

    Attributes:
        grid_key: ``(origin, slot_seconds, horizon)`` of the grid the fill
            ran on — a delta is only attempted on the identical grid.
        order: The SLO jobs in fill order, each as
            ``(deadline, job_id, remaining_iterations, tables_token)``.
        plans: Plan per SLO job id (frozen arrays, shared by reference with
            the ledger the fill produced).
        degraded: SLO jobs whose deadlines were unmeetable in that fill.
        slack: Window-slack flags of that fill (see ``AdmissionResult``);
            a flagged job's plan is availability-independent and can be
            reused under perturbed capacity as long as the slack condition
            holds again.
    """

    grid_key: tuple[float, float, int]
    order: list[tuple[float, str, float, int]]
    plans: dict[str, np.ndarray]
    degraded: frozenset[str]
    slack: dict[str, bool]


@keyed(_fill_cache="_fingerprint", _retained="_fingerprint")
@coherent(_warm_hints="verified")
class AdmissionController:
    """Algorithm 1: deadline-ordered progressive filling over all jobs.

    The controller memoizes complete ``plan_shares`` fills (soft mode only)
    keyed by a fingerprint of the participating jobs and the grid: on every
    scheduling event the policy runs Algorithm 1 two to three times over
    the identical job set (admission baseline, admission trial, then the
    allocation pass), and all but the first are replayed from the cache.
    Fingerprints include each job's planning-table token, so a throughput
    correction (online profiling) automatically invalidates dependent
    fills.  The cache is bypassed entirely while
    :func:`repro.perf.tables.planning_cache_disabled` is active or when any
    job carries a hand-built table (token ``-1``).

    Two incremental layers sit on top of the exact-match memo:

    - ``_retained`` remembers the previous soft fill (same ``_fingerprint``
      key discipline).  When the next fill differs only by departures,
      arrivals, or per-job state changes, :meth:`_delta_fill` walks the old
      and new deadline orders in one two-pointer merge, reuses every plan
      whose usable window sees an unchanged capacity prefix, and re-fills
      only the rest — byte-identical to the cold fill because a job's plan
      is a function of exactly (its view, the available-capacity prefix
      ahead of it).  With the batched solver enabled the walk maintains a
      scalar *perturbation watermark* instead of a delta vector and adds a
      second reuse tier for slack-flagged jobs (see
      :meth:`_delta_fill_indexed`).
    - ``_warm_hints`` remembers the cap each ``(job_id, start_slot)`` fill
      chose last time, letting :func:`progressive_filling` verify instead
      of scan (``verified`` coherence: every hint is re-checked at use, so
      staleness costs time, never correctness).  :meth:`prune_warm_hints`
      bounds the dict on long traces.

    Cold soft fills additionally run through :meth:`_fill_batched` while
    :func:`repro.perf.tables.batching_enabled` holds: all hinted jobs'
    constant-throughput rows are evaluated in a few bucketed matrix passes
    up front (:class:`repro.core.batch.WarmRowBatch`) and the deadline-order
    walk commits each plan with scalar checks, falling back to the
    sequential :func:`progressive_filling` per job only when a row is
    clamped or fails verification.

    Args:
        capacity: Number of GPUs in the cluster.
    """

    #: Bound on remembered fills; LRU-evicted beyond this.
    FILL_CACHE_LIMIT = 128

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._fill_cache: OrderedDict[tuple, tuple] = OrderedDict()
        self._retained: _RetainedFill | None = None
        self._warm_hints: dict[tuple[str, int], int] = {}
        # Event-scoped constant-row store: the batched rows are pure view
        # functions keyed by (job, cap, tables token), stable for as long
        # as the grid and the planning tables stand still — i.e. for every
        # fill of one scheduling event (admission baseline, trial delta,
        # allocation pass).  ``_event_key`` names that validity domain; a
        # mismatched key resets the store, and every lookup re-checks the
        # stored window length, so stale rows cost a rebuild, never a
        # wrong decision.
        self._event_batch: WarmRowBatch | None = None
        self._event_rows: dict[tuple[str, int, int], tuple[int, int, int]] = {}
        self._event_key: tuple[float, float, int, int] | None = None
        self.fill_cache_hits = 0
        self.fill_cache_misses = 0
        self.delta_hits = 0
        self.delta_reuses = 0
        self.delta_slack_reuses = 0
        self.delta_refills = 0
        self.delta_fast_accepts = 0

    @property
    def warm_hints(self) -> dict[tuple[str, int], int]:
        """The advisory cap-hint store, shared with Algorithm 2's refills."""
        return self._warm_hints

    def _event_batch_for(self, grid: SlotGrid) -> WarmRowBatch:
        """The event-scoped row batch, reset when the grid or tables move.

        Within one scheduling event the grid origin and the planning-table
        revision are fixed, so a job's constant-throughput rows — functions
        of (usable-window weights, hinted cap's ladder constants) only —
        are identical across the admission baseline, the trial delta and
        the allocation fill.  Sharing one append-only
        :class:`~repro.core.batch.WarmRowBatch` across those fills solves
        each row once per event instead of once per fill.
        """
        key = (
            grid.origin,
            grid.slot_seconds,
            grid.horizon,
            tables_global_revision(),
        )
        batch = self._event_batch
        if self._event_key != key or batch is None:
            batch = WarmRowBatch()
            self._event_key = key
            self._event_batch = batch
            self._event_rows = {}
        return batch

    @mutates("_warm_hints")
    def prune_warm_hints(self, live_ids: set[str]) -> int:
        """Evict cap hints of jobs no longer in the queue; returns the count.

        Hints are advisory (``verified`` coherence: every entry is
        re-checked against ground truth at use), so eviction can never
        change a decision — this only bounds the dict on long traces,
        where completed and rejected jobs would otherwise leave their
        ``(job_id, start_slot)`` entries behind forever.
        """
        stale = [key for key in self._warm_hints if key[0] not in live_ids]
        for key in stale:
            del self._warm_hints[key]
        return len(stale)

    # ------------------------------------------------------------- caching
    def _fingerprint(
        self, infos: list[PlanningJob], grid: SlotGrid
    ) -> tuple | None:
        """Hashable identity of one fill, or ``None`` when uncacheable."""
        jobs = []
        for info in infos:
            if info.tables_token < 0:
                return None
            jobs.append(
                (
                    info.job_id,
                    info.remaining_iterations,
                    info.deadline,
                    info.best_effort,
                    info.tables_token,
                )
            )
        return (
            grid.origin,
            grid.slot_seconds,
            grid.horizon,
            tuple(sorted(jobs)),
        )

    @mutates("Ledger._plans", "Ledger._used")
    def _replay(
        self, infos: list[PlanningJob], grid: SlotGrid, cached: tuple
    ) -> AdmissionResult:
        """Reconstruct a fill from the cache, including info side effects.

        Cached plans *and* the cached occupancy vector are frozen arrays,
        so the replay shares them by reference — one ``load_plans`` bulk
        restore, no per-job column summation (the ledger's mutators rebind
        ``_used`` instead of writing in place, so adopting the shared
        read-only vector is safe even though Algorithm 2 edits the ledger
        afterwards).
        """
        admitted, plans, infeasible, degraded, used, slack = cached
        out_plans: dict[str, np.ndarray] = {}
        for info in infos:
            plan = plans[info.job_id]
            info.degraded = info.job_id in degraded
            info.min_share_plan = plan
            out_plans[info.job_id] = plan
        ledger = Ledger(self.capacity, grid.horizon)
        ledger.load_plans(out_plans, used)
        return AdmissionResult(
            admitted=admitted,
            plans=out_plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=set(degraded),
            slack=dict(slack),
        )

    def plan_shares(
        self,
        infos: list[PlanningJob],
        grid: SlotGrid,
        *,
        stop_on_failure: bool = True,
    ) -> AdmissionResult:
        """Fill minimum satisfactory shares for every SLO job, deadline order.

        Best-effort jobs receive an all-zero share (they are served from
        leftovers by Algorithm 2).  With ``stop_on_failure=False`` an
        infeasible job is *degraded* instead of aborting the fill: it loses
        its reservation and joins the best-effort leftover queue, so a job
        that was admitted earlier but fell behind (e.g. accumulated scaling
        overheads) cannot poison the guarantees of everyone else.

        Only soft (``stop_on_failure=False``) fills are memoized: the hard
        mode aborts mid-fill and its partial ledger is not worth replaying.
        Cache misses first try the event-delta path against the retained
        previous fill (:meth:`_delta_fill`) before falling back to the full
        deadline-ordered fill; either way the produced fill becomes the new
        retained snapshot.  The deadline order is computed once here and
        shared by the walk, the delta pass and the snapshot (they used to
        sort independently).
        """
        ordered = sorted(infos, key=_deadline_order)
        key = None
        if not stop_on_failure and cache_enabled():
            key = self._fingerprint(infos, grid)
            if key is not None:
                cached = self._fill_cache.get(key)
                if cached is not None:
                    self._fill_cache.move_to_end(key)
                    self.fill_cache_hits += 1
                    result = self._replay(infos, grid, cached)
                    self._retained = self._snapshot(ordered, grid, result)
                    return result
                self.fill_cache_misses += 1
        result = None
        if key is not None:
            result = self._delta_fill(ordered, grid)
        if result is None:
            result = self._fill(ordered, grid, stop_on_failure=stop_on_failure)
        if key is not None:
            # Plans are frozen at registration time and the occupancy
            # vector is never edited in place, so the cache stores both by
            # reference; only the dict containers are copied.
            self._fill_cache[key] = (
                result.admitted,
                dict(result.plans),
                result.infeasible_job,
                frozenset(result.degraded),
                result.ledger.used,
                dict(result.slack),
            )
            while len(self._fill_cache) > self.FILL_CACHE_LIMIT:
                self._fill_cache.popitem(last=False)
            self._retained = self._snapshot(ordered, grid, result)
        return result

    def _snapshot(
        self, ordered: list[PlanningJob], grid: SlotGrid, result: AdmissionResult
    ) -> _RetainedFill:
        """Package a finished soft fill for the next event's delta pass.

        ``ordered`` must already be in deadline order (the caller sorts
        once for the fill, the delta walk and this snapshot together).
        """
        order: list[tuple[float, str, float, int]] = []
        plans: dict[str, np.ndarray] = {}
        for info in ordered:
            if info.best_effort:
                continue
            order.append(
                (info.deadline, info.job_id, info.remaining_iterations,
                 info.tables_token)
            )
            plans[info.job_id] = result.plans[info.job_id]
        return _RetainedFill(
            grid_key=(grid.origin, grid.slot_seconds, grid.horizon),
            order=order,
            plans=plans,
            degraded=frozenset(result.degraded),
            slack=dict(result.slack),
        )

    def _delta_fill(
        self, ordered: list[PlanningJob], grid: SlotGrid
    ) -> AdmissionResult | None:
        """Rebuild a soft fill from the retained one, re-filling only deltas.

        A job's minimum satisfactory share is a pure function of its
        planning view and of the *available-capacity prefix* left by
        earlier-deadline jobs, so a surviving job facing bit-identical
        inputs can reuse its retained plan by reference.  Two walk
        implementations share that contract: the batched-solver variant
        (:meth:`_delta_fill_indexed`, default) tracks perturbations with a
        scalar slot watermark plus per-job slack flags, and the sequential
        variant (:meth:`_delta_fill_sequential`) maintains the full
        old-minus-new delta vector.  Returns ``None`` (caller falls back
        to the full fill) when there is no retained fill for this grid.
        ``ordered`` is the caller's deadline-sorted view list.
        """
        retained = self._retained
        if retained is None:
            return None
        if retained.grid_key != (grid.origin, grid.slot_seconds, grid.horizon):
            return None
        if batching_enabled():
            return self._delta_fill_indexed(ordered, grid, retained)
        return self._delta_fill_sequential(ordered, grid, retained)

    @mutates("Ledger._plans", "Ledger._used")
    def _delta_fill_indexed(
        self,
        ordered: list[PlanningJob],
        grid: SlotGrid,
        retained: _RetainedFill,
    ) -> AdmissionResult:
        """Delta walk with an interval index instead of a delta vector.

        Every capacity perturbation this event introduces — a departed
        plan, an arrival's new plan, a refilled plan's difference — begins
        at some slot; ``lo`` tracks the lowest such slot seen so far.  A
        matched job whose usable window ends at or before ``lo`` faces a
        bit-identical capacity prefix, so its plan is reused with one
        integer comparison and no vector work at all ("never visit" rather
        than "reuse after an O(window) check").  Because windows are
        prefixes of the slot grid, the single watermark *is* the interval
        index over usable-window spans: ``w <= lo`` is exactly "this job's
        window does not intersect the perturbed range".

        Jobs whose windows do cross the watermark get a second chance from
        their retained *slack* flag: if the previous fill saw the job's
        largest runnable size free across its whole window, its plan was a
        pure function of the view (every take unclamped); if the current
        prefix is slack too, a refill would recompute that same pure
        function, so the retained plan is reused — even though capacity
        under it changed.  (Warm-hint state may differ between the two
        fills, but under slack a wrong hint fails verification and the
        scan lands on the same minimal row, so the fill result is
        hint-independent.)  Refills first try a *fast accept* against the
        event-scoped row store (:meth:`_event_batch_for`): when the job is
        unclamped at its hinted cap and this event's baseline fill already
        solved that cap's constant-throughput row, two scalar comparisons
        replace the cumsums progressive_filling's warm verification would
        re-run — same floats, same order, bit-identical outcome.
        Everything else re-runs :func:`progressive_filling` against exact
        availability, exactly as the cold fill would.
        """
        horizon = grid.horizon
        capacity = self.capacity
        old = retained.order
        old_plans = retained.plans
        old_slack = retained.slack
        n_old = len(old)
        pos = 0
        used = np.zeros(horizon, dtype=np.int64)
        lo = horizon  # slots below ``lo`` see a bit-identical used-prefix
        plans: dict[str, np.ndarray] = {}
        slack: dict[str, bool] = {}
        degraded: set[str] = set()
        infeasible: str | None = None
        zero_plan: np.ndarray | None = None
        reuses = slack_reuses = refills = fast = 0
        refilled: list[str] = []
        hints = self._warm_hints
        # Rows solved by this event's baseline fill: an unclamped refill
        # whose hinted cap still matches verifies against the stored row
        # with two scalar comparisons instead of re-running the cumsums
        # inside progressive_filling (same floats, same order — see
        # :meth:`_event_batch_for`).
        batch = self._event_batch_for(grid)
        rows = self._event_rows
        for info in ordered:
            if info.best_effort:
                info.degraded = False
                if zero_plan is None:
                    zero_plan = np.zeros(horizon, dtype=np.int64)
                info.min_share_plan = zero_plan
                plans[info.job_id] = zero_plan
                continue
            okey = (info.deadline, info.job_id)
            while pos < n_old and (old[pos][0], old[pos][1]) < okey:
                # Departed (or re-ordered) job: capacity changes from its
                # plan's first occupied slot onward.
                nonzero = np.flatnonzero(old_plans[old[pos][1]])
                if nonzero.size:
                    lo = min(lo, int(nonzero[0]))
                pos += 1
            had_old = False
            matched = False
            if pos < n_old and (old[pos][0], old[pos][1]) == okey:
                entry = old[pos]
                pos += 1
                had_old = True
                matched = (
                    entry[2] == info.remaining_iterations
                    and entry[3] == info.tables_token
                )
            info.degraded = False
            w = info.window(0)
            if matched:
                reuse = w <= lo
                if reuse:
                    # Unperturbed prefix: the slack condition holds exactly
                    # when it held in the retained fill.
                    if old_slack.get(info.job_id, False):
                        slack[info.job_id] = True
                elif (
                    old_slack.get(info.job_id, False)
                    and info.sizes
                    and capacity - int(used[:w].max()) >= int(info.sizes[-1])
                ):
                    reuse = True
                    slack_reuses += 1
                    slack[info.job_id] = True
                if reuse:
                    plan = old_plans[info.job_id]
                    if info.job_id in retained.degraded:
                        info.degraded = True
                        degraded.add(info.job_id)
                        infeasible = infeasible or info.job_id
                    info.min_share_plan = plan
                    plans[info.job_id] = plan
                    if w:
                        used[:w] += plan[:w]
                    reuses += 1
                    continue
            refills += 1
            refilled.append(info.job_id)
            old_plan = old_plans[info.job_id] if had_old else None
            free_min = capacity - int(used[:w].max()) if w else capacity
            plan = None
            if w and info.sizes and info.remaining_iterations > _EPS:
                cap = hints.get((info.job_id, 0))
                if cap is not None and free_min >= cap:
                    entry = rows.get((info.job_id, cap, info.tables_token))
                    if entry is not None and entry[2] == w:
                        # Unclamped at the hinted cap: the event row is
                        # exactly the progress row progressive_filling's
                        # warm verification would rebuild, so the same two
                        # comparisons decide — and on success the hint
                        # needs no write-back (it was read at this cap).
                        required = info.remaining_iterations
                        threshold = required - _EPS
                        row = batch.hint_row(entry[0])
                        if (
                            row[-1] >= threshold
                            and batch.below_total(entry[0]) < threshold
                        ):
                            fast += 1
                            plan = _emit_plan(
                                info,
                                np.zeros(horizon, dtype=np.int64),
                                entry[1],
                                row,
                                required,
                                threshold,
                                info.weights[:w],
                                0,
                            )
            if plan is None:
                plan = progressive_filling(
                    info, capacity - used, warm_hints=hints
                )
            if plan is None:
                info.degraded = True
                degraded.add(info.job_id)
                infeasible = infeasible or info.job_id
                plan = np.zeros(horizon, dtype=np.int64)
            if info.sizes and w:
                slack[info.job_id] = free_min >= int(info.sizes[-1])
            info.min_share_plan = plan
            plans[info.job_id] = plan
            if old_plan is not None:
                # A refill that reproduces the old plan exactly perturbs
                # nothing (the common case when only bookkeeping ahead of
                # the job moved); otherwise capacity changes from the
                # first differing slot onward.
                if not np.array_equal(old_plan, plan):
                    lo = min(lo, int(np.argmax(old_plan != plan)))
            else:
                nonzero = np.flatnonzero(plan)
                if nonzero.size:
                    lo = min(lo, int(nonzero[0]))
            if w:
                used[:w] += plan[:w]
        ledger = Ledger(capacity, horizon)
        ledger.load_plans(plans, used)
        note_batched_walk(fast, 0)
        probe.add_counters({"alg1_delta_fast": fast})
        self.delta_hits += 1
        self.delta_reuses += reuses
        self.delta_slack_reuses += slack_reuses
        self.delta_refills += refills
        self.delta_fast_accepts += fast
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
            slack=slack,
            perturbed=frozenset(refilled),
        )

    @mutates("Ledger._plans", "Ledger._used")
    def _delta_fill_sequential(
        self,
        ordered: list[PlanningJob],
        grid: SlotGrid,
        retained: _RetainedFill,
    ) -> AdmissionResult:
        """Delta walk of the sequential solver generation.

        Maintains ``delta`` = (old used prefix) − (new used prefix): a
        surviving job whose view is unchanged and whose usable window sees
        an all-zero delta faces bit-identical inputs, so its retained plan
        (and degraded flag) is reused by reference; everything else —
        arrivals, changed views, jobs behind a perturbed prefix — re-runs
        :func:`progressive_filling` exactly as the cold fill would.
        Departed jobs' plans enter ``delta`` as freed capacity.
        """
        horizon = grid.horizon
        old = retained.order
        old_plans = retained.plans
        n_old = len(old)
        pos = 0
        used = np.zeros(horizon, dtype=np.int64)
        delta: np.ndarray | None = None  # lazily materialized; None == all-zero
        plans: dict[str, np.ndarray] = {}
        degraded: set[str] = set()
        infeasible: str | None = None
        reuses = refills = 0
        for info in ordered:
            if info.best_effort:
                info.degraded = False
                plan = np.zeros(horizon, dtype=np.int64)
                info.min_share_plan = plan
                plans[info.job_id] = plan
                continue
            okey = (info.deadline, info.job_id)
            while pos < n_old and (old[pos][0], old[pos][1]) < okey:
                # Departed (or re-ordered) job: its old plan is freed capacity.
                if delta is None:
                    delta = np.zeros(horizon, dtype=np.int64)
                delta += old_plans[old[pos][1]]
                pos += 1
            had_old = False
            matched = False
            if pos < n_old and (old[pos][0], old[pos][1]) == okey:
                entry = old[pos]
                pos += 1
                had_old = True
                matched = (
                    entry[2] == info.remaining_iterations
                    and entry[3] == info.tables_token
                )
                # An unmatched same-key entry is a view change: handled as
                # departure + arrival (old plan freed, job re-filled).
            info.degraded = False
            old_plan = old_plans[info.job_id] if had_old else None
            if matched:
                w = info.window(0)
                if delta is None or not delta[:w].any():
                    plan = old_plans[info.job_id]
                    if info.job_id in retained.degraded:
                        info.degraded = True
                        degraded.add(info.job_id)
                        infeasible = infeasible or info.job_id
                    info.min_share_plan = plan
                    plans[info.job_id] = plan
                    used += plan
                    reuses += 1
                    continue
            refills += 1
            available = self.capacity - used
            plan = progressive_filling(
                info, available, warm_hints=self._warm_hints
            )
            if plan is None:
                info.degraded = True
                degraded.add(info.job_id)
                infeasible = infeasible or info.job_id
                plan = np.zeros(horizon, dtype=np.int64)
            info.min_share_plan = plan
            plans[info.job_id] = plan
            used += plan
            if old_plan is not None or plan.any():
                if delta is None:
                    delta = np.zeros(horizon, dtype=np.int64)
                delta -= plan
                if old_plan is not None:
                    delta += old_plan
        ledger = Ledger(self.capacity, horizon)
        ledger.load_plans(plans, used)
        self.delta_hits += 1
        self.delta_reuses += reuses
        self.delta_refills += refills
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
        )

    def _fill(
        self,
        ordered: list[PlanningJob],
        grid: SlotGrid,
        *,
        stop_on_failure: bool,
    ) -> AdmissionResult:
        if not stop_on_failure and cache_enabled() and batching_enabled():
            return self._fill_batched(ordered, grid)
        return self._fill_sequential(ordered, grid, stop_on_failure=stop_on_failure)

    @mutates("Ledger._plans", "Ledger._used")
    def _fill_batched(
        self, ordered: list[PlanningJob], grid: SlotGrid
    ) -> AdmissionResult:
        """Cold soft fill as a batched commit walk (bit-identical).

        Phase 1 packs every warm-hinted SLO job's usable-window weights
        into :class:`repro.core.batch.WarmRowBatch` and evaluates all
        hinted-cap and next-lower-cap cumulative-progress rows in a few
        bucketed matrix passes — these rows are pure view functions, valid
        regardless of how earlier jobs' plans land.  The batch is *event
        scoped* (:meth:`_event_batch_for`): the second and third fill of
        the same scheduling event (trial delta, allocation pass) find
        their rows already solved and skip both the ladder lookups and the
        cumsums for every job whose hinted cap did not move.  Phase 2 walks the
        deadline order committing plans: when the minimum free capacity
        across a job's window still covers its hinted cap (the fill is
        unclamped), the precomputed rows decide hint verification with two
        scalar comparisons and the plan is emitted straight from the
        batched row; otherwise the job falls back to the sequential
        :func:`progressive_filling` against exact availability.  Either
        route performs the same comparisons on the same floats as the
        sequential walk, so the fill is bit-identical (the property tests
        and the scale benches assert this against
        :func:`repro.perf.tables.batched_solver_disabled`).

        The walk also records each job's window-slack flag — whether the
        largest runnable size was free across its whole window — which the
        next event's :meth:`_delta_fill_indexed` uses as its second reuse
        tier.

        While :func:`repro.perf.tables.fused_commit_enabled` holds, runs
        of consecutive fast-accepted plans are committed as *fused* array
        updates: a fast-accepted plan is a constant ``s_cap`` prefix with
        the completion slot shaved to at most ``s_cap`` — non-increasing —
        so while every committed plan is non-increasing the occupancy
        vector is too, and the per-window ``max`` the walk gates on is
        just its slot-0 value.  Each fast accept then deposits three
        integer entries into a difference vector instead of an O(window)
        array add, and one ``cumsum`` materialises the whole run when a
        fallback (or the final ledger load) needs exact per-slot
        occupancy.  Integer arithmetic is exact, so the materialised
        vector and every ``free_min`` read along the way are bit-equal to
        the per-plan adds.
        """
        horizon = grid.horizon
        capacity = self.capacity
        hints = self._warm_hints
        batch = self._event_batch_for(grid)
        rows = self._event_rows
        row_reuses = 0
        prepared: list[tuple[int, int, int, int] | None] = [None] * len(ordered)
        for i, info in enumerate(ordered):
            if info.best_effort or not info.sizes:
                continue
            if info.remaining_iterations <= _EPS:
                continue
            w = info.window(0)
            if w == 0:
                continue
            cap = hints.get((info.job_id, 0))
            if cap is None:
                continue
            rkey = (info.job_id, cap, info.tables_token)
            entry = rows.get(rkey)
            if entry is not None and entry[2] == w:
                # Solved earlier this event (baseline or trial fill); the
                # row is a pure view function, so reuse skips both the
                # ladder lookup and the cumsum.
                prepared[i] = (entry[0], cap, entry[1], w)
                row_reuses += 1
                continue
            consts = ladder_consts(
                info.tables_token,
                cap,
                info.sizes,
                info.sizes_array(),
                info.size_table,
                info.throughput_table,
            )
            if consts is None:
                continue  # stale hint from a different table build
            s_cap, thr_hint, _below, thr_below = consts
            handle = batch.add(info.weights[:w], thr_hint, thr_below)
            rows[rkey] = (handle, s_cap, w)
            prepared[i] = (handle, cap, s_cap, w)
        batch.solve()

        used = np.zeros(horizon, dtype=np.int64)
        plans: dict[str, np.ndarray] = {}
        slack: dict[str, bool] = {}
        degraded: set[str] = set()
        infeasible: str | None = None
        zero_plan: np.ndarray | None = None
        fused = fused_commit_enabled()
        # Deferred fast-accept commits: ``diff`` holds per-slot deltas of
        # the run in flight, ``pending0`` their exact slot-0 total and
        # ``pending_hi`` one past the highest touched index.  ``fused``
        # is demoted for the rest of the walk the moment a committed plan
        # is not non-increasing, because only then can the occupancy max
        # sit anywhere but slot 0.
        diff = np.zeros(horizon + 1, dtype=np.int64) if fused else None
        pending0 = 0
        pending_hi = 0
        fused_runs = 0
        fused_jobs = 0
        fast_accepts = 0
        fallbacks = 0

        def materialize() -> None:
            nonlocal pending0, pending_hi, fused_runs
            if pending_hi:
                k = min(pending_hi, horizon)
                # int64 cumsum: exact, so the fused run lands bit-equal
                # to the per-plan adds it replaced.  The entry at index
                # ``horizon`` (a run ending in the last slot) only closes
                # intervals past the horizon and is dropped.
                used[:k] += np.cumsum(diff[:k])
                diff[:pending_hi] = 0
                pending0 = 0
                pending_hi = 0
                fused_runs += 1

        for i, info in enumerate(ordered):
            info.degraded = False
            if info.best_effort:
                if zero_plan is None:
                    zero_plan = np.zeros(horizon, dtype=np.int64)
                info.min_share_plan = zero_plan
                plans[info.job_id] = zero_plan
                continue
            prep = prepared[i]
            w = prep[3] if prep is not None else info.window(0)
            if not w:
                free_min = capacity
            elif fused:
                # Non-increasing occupancy: the max over any window prefix
                # is the slot-0 value, materialised part plus pending part.
                free_min = capacity - (int(used[0]) + pending0)
            else:
                free_min = capacity - int(used[:w].max())
            plan = None
            if prep is not None:
                handle, cap, s_cap, _w = prep
                if free_min >= cap:
                    # Unclamped: the batched rows are exactly the rows the
                    # sequential warm verification would have built.
                    required = info.remaining_iterations
                    threshold = required - _EPS
                    row = batch.hint_row(handle)
                    if (
                        row[-1] >= threshold
                        and batch.below_total(handle) < threshold
                    ):
                        # The verified hint came out of ``hints`` with this
                        # exact cap, so there is nothing to write back.
                        fast_accepts += 1
                        plan = _emit_plan(
                            info,
                            np.zeros(horizon, dtype=np.int64),
                            s_cap,
                            row,
                            required,
                            threshold,
                            info.weights[:w],
                            0,
                        )
                        if fused and w:
                            # Commit as three difference entries: s_cap
                            # over [0, done), the shaved size at the
                            # completion slot, nothing after.
                            done = int(np.searchsorted(row, threshold))
                            shaved = int(plan[done])
                            diff[0] += s_cap
                            diff[done] += shaved - s_cap
                            diff[done + 1] -= shaved
                            pending0 += s_cap if done else shaved
                            if done + 2 > pending_hi:
                                pending_hi = done + 2
                            fused_jobs += 1
                            if info.sizes:
                                slack[info.job_id] = free_min >= int(
                                    info.sizes[-1]
                                )
                            info.min_share_plan = plan
                            plans[info.job_id] = plan
                            continue
            if plan is None:
                fallbacks += 1
                if fused:
                    # The sequential fill reads exact per-slot capacity.
                    materialize()
                plan = progressive_filling(
                    info, capacity - used, warm_hints=hints
                )
            if plan is None:
                infeasible = infeasible or info.job_id
                info.degraded = True
                degraded.add(info.job_id)
                plan = np.zeros(horizon, dtype=np.int64)
            if info.sizes and w:
                slack[info.job_id] = free_min >= int(info.sizes[-1])
            info.min_share_plan = plan
            plans[info.job_id] = plan
            if w:
                used[:w] += plan[:w]
                if fused and np.any(np.diff(plan[:w]) > 0):
                    fused = False  # occupancy max may leave slot 0 now
        if fused:
            materialize()
        note_batched_walk(fast_accepts, fallbacks)
        probe.add_counters(
            {
                "alg1_fused_runs": fused_runs,
                "alg1_fused_jobs": fused_jobs,
                "alg1_row_reuses": row_reuses,
            }
        )
        ledger = Ledger(capacity, horizon)
        ledger.load_plans(plans, used)
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
            slack=slack,
        )

    @mutates("Ledger._plans", "Ledger._used")
    def _fill_sequential(
        self,
        ordered: list[PlanningJob],
        grid: SlotGrid,
        *,
        stop_on_failure: bool,
    ) -> AdmissionResult:
        ledger = Ledger(self.capacity, grid.horizon)
        plans: dict[str, np.ndarray] = {}
        infeasible: str | None = None
        degraded: set[str] = set()
        for info in ordered:
            info.degraded = False
            if info.best_effort:
                plan = np.zeros(grid.horizon, dtype=np.int64)
            else:
                plan = progressive_filling(
                    info, ledger.available(), warm_hints=self._warm_hints
                )
                if plan is None:
                    if stop_on_failure:
                        return AdmissionResult(
                            admitted=False,
                            plans={},
                            ledger=ledger,
                            infeasible_job=info.job_id,
                        )
                    infeasible = infeasible or info.job_id
                    info.degraded = True
                    degraded.add(info.job_id)
                    plan = np.zeros(grid.horizon, dtype=np.int64)
            info.min_share_plan = plan
            plans[info.job_id] = plan
            ledger.set_plan(info.job_id, plan, trusted=True)
        return AdmissionResult(
            admitted=infeasible is None,
            plans=plans,
            ledger=ledger,
            infeasible_job=infeasible,
            degraded=degraded,
        )

    def try_admit(
        self,
        candidate: PlanningJob,
        admitted: list[PlanningJob],
        grid: SlotGrid,
    ) -> AdmissionResult:
        """Decide whether adding ``candidate`` keeps every deadline feasible.

        Jobs that are *already* infeasible (degraded — e.g. their deadlines
        lie in the past) do not veto the newcomer: their guarantee is lost
        either way, so only newly-broken deadlines count against admission.
        """
        if candidate.best_effort:
            # Best-effort jobs are always accepted (Section 4.4).
            result = self.plan_shares(
                admitted + [candidate], grid, stop_on_failure=False
            )
            result.admitted = True
            return result
        baseline_degraded = self.plan_shares(
            admitted, grid, stop_on_failure=False
        ).degraded
        result = self.plan_shares(
            admitted + [candidate], grid, stop_on_failure=False
        )
        newly_broken = result.degraded - baseline_degraded - {candidate.job_id}
        result.admitted = (
            candidate.job_id not in result.degraded and not newly_broken
        )
        return result
