"""Greedy elastic resource allocation (paper Section 4.2, Algorithm 2).

After every admitted job holds its minimum satisfactory share, leftover GPUs
in the *next* slot are handed out one upgrade at a time to the job with the
highest marginal return.  An upgrade raises a job's slot-0 allocation to its
next runnable size; the job's tail is then re-filled minimally (progressive
filling from slot 1), so speeding a job up releases capacity in later slots
for everyone else.  Under concave scaling curves this greedy order is
optimal for the total-GPU-time objective (Theorem 2); our tests verify this
against brute force on small instances.

Best-effort jobs (Section 4.4) participate with a zero minimum share: their
first GPU has infinite marginal return (they would otherwise never finish),
with ties broken shortest-remaining-first to minimise average JCT.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.admission import PlanningJob, progressive_filling
from repro.core.plan import Ledger
from repro.perf.coherence import mutates
from repro.perf.tables import cache_enabled

__all__ = ["Upgrade", "allocate_leftover"]


@dataclass(frozen=True)
class Upgrade:
    """A proposed single-step expansion of one job's slot-0 allocation.

    ``available`` snapshots the capacity vector (including the job's own
    plan) an SLO proposal's tail refill was computed against; it is
    ``None`` for best-effort/degraded proposals, whose plans never reach
    past slot 0 and therefore depend only on slot-0 capacity.  A popped
    proposal whose ledger version is stale is *revalidated* against the
    snapshot instead of being rebuilt from scratch — see
    :func:`_still_valid`.
    """

    job_id: str
    plan: np.ndarray
    added_gpus: int
    priority: float
    tiebreak: float
    ledger_version: int
    available: np.ndarray | None = None
    #: GPU-time of ``plan`` (SLO proposals only).  After this upgrade is
    #: applied it becomes the job's *current* cost, so the follow-up
    #: proposal reuses it instead of recomputing the identical product.
    new_cost: float = 0.0


def _gpu_seconds_to_completion(info: PlanningJob, n_gpus: int, slot_seconds: float) -> float:
    """GPU-time a best-effort job burns finishing at a constant size."""
    throughput = float(info.throughput_table[n_gpus])
    if throughput <= 0.0:
        return math.inf
    return info.remaining_iterations / throughput * n_gpus


def _propose(
    info: PlanningJob,
    ledger: Ledger,
    slot_seconds: float,
    old_cost: float | None = None,
    warm_hints: dict[tuple[str, int], int] | None = None,
) -> Upgrade | None:
    """Build the next upgrade for one job, or ``None`` if it cannot grow.

    ``old_cost`` short-circuits the GPU-time of the job's current plan when
    the caller already knows it (the cost of the upgrade it just applied).
    ``warm_hints`` carries the tail refill's previous cap choices into
    :func:`progressive_filling` (verified there; see its docstring).
    """
    current = ledger.plan_view(info.job_id)
    current_size = int(current[0])
    next_size = info.next_size_after(current_size)
    if next_size is None:
        return None
    # Constraint (7): only grow while throughput strictly improves.
    if info.throughput_table[next_size] <= info.throughput_table[current_size]:
        return None
    added = next_size - current_size
    available = ledger.available() + current  # capacity if this job replans
    if added > available[0] - current_size:
        return None

    horizon = ledger.horizon
    snapshot: np.ndarray | None = None
    if info.best_effort or info.degraded:
        # Degraded SLO jobs (deadline already unmeetable) are served exactly
        # like best-effort jobs: leftovers only, finish as early as possible.
        new_plan = np.zeros(horizon, dtype=np.int64)
        new_plan[0] = next_size
        if current_size == 0:
            priority = math.inf
            tiebreak = _gpu_seconds_to_completion(info, 1, slot_seconds)
        else:
            old_cost = _gpu_seconds_to_completion(info, current_size, slot_seconds)
            new_cost = _gpu_seconds_to_completion(info, next_size, slot_seconds)
            priority = (old_cost - new_cost) / added
            tiebreak = 0.0
    else:
        head = np.zeros(horizon, dtype=np.int64)
        head[0] = next_size
        new_plan = progressive_filling(
            info, available, start_slot=1, head=head, warm_hints=warm_hints
        )
        if new_plan is None:
            return None
        if old_cost is None:
            old_cost = info.gpu_seconds_of(current)
        new_cost = info.gpu_seconds_of(new_plan)
        priority = (old_cost - new_cost) / added
        tiebreak = 0.0
        snapshot = available
        return Upgrade(
            job_id=info.job_id,
            plan=new_plan,
            added_gpus=added,
            priority=priority,
            tiebreak=tiebreak,
            ledger_version=ledger.version,
            available=snapshot,
            new_cost=new_cost,
        )
    return Upgrade(
        job_id=info.job_id,
        plan=new_plan,
        added_gpus=added,
        priority=priority,
        tiebreak=tiebreak,
        ledger_version=ledger.version,
        available=snapshot,
    )


def _still_valid(upgrade: Upgrade, info: PlanningJob, ledger: Ledger) -> bool:
    """Whether a stale-versioned proposal is still exactly what a rebuild
    would produce.

    A proposal depends only on the proposing job's own registered plan
    (unchanged — each job has at most one proposal in flight, so its plan
    can only have moved by applying *this* proposal) and on the capacity
    left for it.  Slot-0 feasibility reduces to ``added <= available[0]``;
    an SLO proposal's tail refill additionally depends on the leftover
    capacity per slot, but only *within the job's usable window* (slots
    with nonzero weight — progress and the written plan never reach past
    it) and only *clamped at the job's largest runnable size* (the fill
    takes ``min(cap, available)`` with ``cap <= top``, so capacity above
    ``top`` is indistinguishable from ``top``).  When the clamped windowed
    capacity vector is unchanged, the rebuilt proposal is bit-identical
    (same plan, same priority), so the popped one can be applied directly —
    this turns Algorithm 2 from O(upgrades x jobs) refills into
    O(upgrades) refills plus cheap short-vector comparisons.
    """
    if upgrade.added_gpus > ledger.available_at(0):
        return False
    if upgrade.available is None:
        return True
    usable = info.window(1)
    if usable == 0:
        return True
    top = info.sizes[-1] if info.sizes else 0
    current = ledger.plan_view(upgrade.job_id)
    stop = 1 + usable
    then = np.minimum(np.maximum(upgrade.available[1:stop], 0), top)
    now = np.minimum(
        np.maximum(
            ledger.available()[1:stop] + current[1:stop], 0
        ),
        top,
    )
    return bool(np.array_equal(then, now))


@mutates("Ledger._plans", "Ledger._used")
def allocate_leftover(
    infos: list[PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
    *,
    warm_hints: dict[tuple[str, int], int] | None = None,
) -> dict[str, int]:
    """Run Algorithm 2: distribute leftover slot-0 GPUs by marginal return.

    Args:
        infos: Planning views of every active job.  Each must already have a
            plan registered in ``ledger`` (its minimum satisfactory share;
            all-zero for best-effort jobs).
        ledger: Occupancy ledger pre-loaded with minimum shares.  Mutated in
            place; on return it holds the final plans.
        slot_seconds: Width of one planning slot.
        warm_hints: Optional cap-hint store threaded into every tail refill
            (see :func:`repro.core.admission.progressive_filling`); the
            policy passes its controller's hint dict so cap choices carry
            across events.

    Returns:
        Mapping of job id to its slot-0 GPU allocation (the decision that is
        actually executed before the next scheduling event).
    """
    by_id = {info.job_id: info for info in infos}
    # Ties on (priority, tiebreak) are broken by job id, NOT insertion
    # order: the order must be a property of the proposals themselves so
    # that revalidating a stale proposal (fast path) and rebuilding it
    # from scratch (cache-disabled path) pop jobs in the identical order.
    heap: list[tuple[float, float, str, Upgrade]] = []

    def push(info: PlanningJob, old_cost: float | None = None) -> None:
        upgrade = _propose(info, ledger, slot_seconds, old_cost, warm_hints)
        if upgrade is not None:
            heapq.heappush(
                heap, (-upgrade.priority, upgrade.tiebreak, upgrade.job_id, upgrade)
            )

    for info in infos:
        push(info)

    revalidate = cache_enabled()
    while heap and ledger.available_at(0) > 0:
        _, _, _, upgrade = heapq.heappop(heap)
        info = by_id[upgrade.job_id]
        if upgrade.ledger_version != ledger.version and not (
            revalidate and _still_valid(upgrade, info, ledger)
        ):
            push(info)  # genuinely stale: capacity it relied on is gone
            continue
        ledger.set_plan(info.job_id, upgrade.plan, trusted=True)
        # The applied plan is now the job's current one, so its cost can
        # carry into the follow-up proposal (the SLO branch would
        # recompute the identical product; best-effort proposals never
        # read it).  The carry is a memo, so the cache-disabled path
        # recomputes instead.
        carry = revalidate and upgrade.available is not None
        push(info, upgrade.new_cost if carry else None)

    return {info.job_id: int(ledger.plan_view(info.job_id)[0]) for info in infos}
