"""Greedy elastic resource allocation (paper Section 4.2, Algorithm 2).

After every admitted job holds its minimum satisfactory share, leftover GPUs
in the *next* slot are handed out one upgrade at a time to the job with the
highest marginal return.  An upgrade raises a job's slot-0 allocation to its
next runnable size; the job's tail is then re-filled minimally (progressive
filling from slot 1), so speeding a job up releases capacity in later slots
for everyone else.  Under concave scaling curves this greedy order is
optimal for the total-GPU-time objective (Theorem 2); our tests verify this
against brute force on small instances.

Best-effort jobs (Section 4.4) participate with a zero minimum share: their
first GPU has infinite marginal return (they would otherwise never finish),
with ties broken shortest-remaining-first to minimise average JCT.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.core.admission import PlanningJob, progressive_filling
from repro.core.plan import Ledger

__all__ = ["Upgrade", "allocate_leftover"]


@dataclass(frozen=True)
class Upgrade:
    """A proposed single-step expansion of one job's slot-0 allocation."""

    job_id: str
    plan: np.ndarray
    added_gpus: int
    priority: float
    tiebreak: float
    ledger_version: int


def _gpu_seconds_to_completion(info: PlanningJob, n_gpus: int, slot_seconds: float) -> float:
    """GPU-time a best-effort job burns finishing at a constant size."""
    throughput = float(info.throughput_table[n_gpus])
    if throughput <= 0.0:
        return math.inf
    return info.remaining_iterations / throughput * n_gpus


def _propose(
    info: PlanningJob,
    ledger: Ledger,
    slot_seconds: float,
) -> Upgrade | None:
    """Build the next upgrade for one job, or ``None`` if it cannot grow."""
    current = ledger.plan_of(info.job_id)
    current_size = int(current[0])
    next_size = info.next_size_after(current_size)
    if next_size is None:
        return None
    # Constraint (7): only grow while throughput strictly improves.
    if info.throughput_table[next_size] <= info.throughput_table[current_size]:
        return None
    added = next_size - current_size
    available = ledger.available() + current  # capacity if this job replans
    if added > available[0] - current_size:
        return None

    horizon = ledger.horizon
    if info.best_effort or info.degraded:
        # Degraded SLO jobs (deadline already unmeetable) are served exactly
        # like best-effort jobs: leftovers only, finish as early as possible.
        new_plan = np.zeros(horizon, dtype=np.int64)
        new_plan[0] = next_size
        if current_size == 0:
            priority = math.inf
            tiebreak = _gpu_seconds_to_completion(info, 1, slot_seconds)
        else:
            old_cost = _gpu_seconds_to_completion(info, current_size, slot_seconds)
            new_cost = _gpu_seconds_to_completion(info, next_size, slot_seconds)
            priority = (old_cost - new_cost) / added
            tiebreak = 0.0
    else:
        head = np.zeros(horizon, dtype=np.int64)
        head[0] = next_size
        new_plan = progressive_filling(
            info, available, start_slot=1, head=head
        )
        if new_plan is None:
            return None
        old_cost = info.gpu_seconds_of(current)
        new_cost = info.gpu_seconds_of(new_plan)
        priority = (old_cost - new_cost) / added
        tiebreak = 0.0
    return Upgrade(
        job_id=info.job_id,
        plan=new_plan,
        added_gpus=added,
        priority=priority,
        tiebreak=tiebreak,
        ledger_version=ledger.version,
    )


def allocate_leftover(
    infos: list[PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
) -> dict[str, int]:
    """Run Algorithm 2: distribute leftover slot-0 GPUs by marginal return.

    Args:
        infos: Planning views of every active job.  Each must already have a
            plan registered in ``ledger`` (its minimum satisfactory share;
            all-zero for best-effort jobs).
        ledger: Occupancy ledger pre-loaded with minimum shares.  Mutated in
            place; on return it holds the final plans.
        slot_seconds: Width of one planning slot.

    Returns:
        Mapping of job id to its slot-0 GPU allocation (the decision that is
        actually executed before the next scheduling event).
    """
    by_id = {info.job_id: info for info in infos}
    counter = itertools.count()
    heap: list[tuple[float, float, int, Upgrade]] = []

    def push(info: PlanningJob) -> None:
        upgrade = _propose(info, ledger, slot_seconds)
        if upgrade is not None:
            heapq.heappush(
                heap, (-upgrade.priority, upgrade.tiebreak, next(counter), upgrade)
            )

    for info in infos:
        push(info)

    while heap and ledger.available()[0] > 0:
        _, _, _, upgrade = heapq.heappop(heap)
        info = by_id[upgrade.job_id]
        if upgrade.ledger_version != ledger.version:
            push(info)  # stale proposal: capacity changed since it was built
            continue
        ledger.set_plan(info.job_id, upgrade.plan)
        push(info)

    return {info.job_id: int(ledger.plan_of(info.job_id)[0]) for info in infos}
