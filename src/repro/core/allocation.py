"""Greedy elastic resource allocation (paper Section 4.2, Algorithm 2).

After every admitted job holds its minimum satisfactory share, leftover GPUs
in the *next* slot are handed out one upgrade at a time to the job with the
highest marginal return.  An upgrade raises a job's slot-0 allocation to its
next runnable size; the job's tail is then re-filled minimally (progressive
filling from slot 1), so speeding a job up releases capacity in later slots
for everyone else.  Under concave scaling curves this greedy order is
optimal for the total-GPU-time objective (Theorem 2); our tests verify this
against brute force on small instances.

Best-effort jobs (Section 4.4) participate with a zero minimum share: their
first GPU has infinite marginal return (they would otherwise never finish),
with ties broken shortest-remaining-first to minimise average JCT.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.admission import PlanningJob, _emit_plan, progressive_filling
from repro.core.batch import WarmRowBatch
from repro.core.plan import Ledger
from repro.numeric import EPS as _EPS
from repro.perf.coherence import mutates
from repro.perf.tables import (
    batching_enabled,
    cache_enabled,
    ladder_consts,
    note_batch_fill,
    note_warm_fill,
)

__all__ = ["Upgrade", "allocate_leftover"]


@dataclass(frozen=True)
class Upgrade:
    """A proposed single-step expansion of one job's slot-0 allocation.

    ``available`` snapshots the capacity vector (including the job's own
    plan) an SLO proposal's tail refill was computed against; it is
    ``None`` for best-effort/degraded proposals, whose plans never reach
    past slot 0 and therefore depend only on slot-0 capacity.  A popped
    proposal whose ledger version is stale is *revalidated* against the
    snapshot instead of being rebuilt from scratch — see
    :func:`_still_valid`.
    """

    job_id: str
    plan: np.ndarray
    added_gpus: int
    priority: float
    tiebreak: float
    ledger_version: int
    available: np.ndarray | None = None
    #: GPU-time of ``plan`` (SLO proposals only).  After this upgrade is
    #: applied it becomes the job's *current* cost, so the follow-up
    #: proposal reuses it instead of recomputing the identical product.
    new_cost: float = 0.0
    #: Whether the snapshot's usable window had at least the job's top
    #: runnable size free in every slot.  The clamped snapshot vector is
    #: then the constant ``top`` row, so revalidation reduces to a single
    #: min over the current window (see :func:`_still_valid`).
    top_free: bool = False


def _gpu_seconds_to_completion(info: PlanningJob, n_gpus: int, slot_seconds: float) -> float:
    """GPU-time a best-effort job burns finishing at a constant size."""
    throughput = float(info.throughput_table[n_gpus])
    if throughput <= 0.0:
        return math.inf
    return info.remaining_iterations / throughput * n_gpus


def _propose(
    info: PlanningJob,
    ledger: Ledger,
    slot_seconds: float,
    old_cost: float | None = None,
    warm_hints: dict[tuple[str, int], int] | None = None,
) -> Upgrade | None:
    """Build the next upgrade for one job, or ``None`` if it cannot grow.

    ``old_cost`` short-circuits the GPU-time of the job's current plan when
    the caller already knows it (the cost of the upgrade it just applied).
    ``warm_hints`` carries the tail refill's previous cap choices into
    :func:`progressive_filling` (verified there; see its docstring).
    """
    current = ledger.plan_view(info.job_id)
    current_size = int(current[0])
    next_size = info.next_size_after(current_size)
    if next_size is None:
        return None
    # Constraint (7): only grow while throughput strictly improves.
    if info.throughput_table[next_size] <= info.throughput_table[current_size]:
        return None
    added = next_size - current_size
    available = ledger.available() + current  # capacity if this job replans
    if added > available[0] - current_size:
        return None

    horizon = ledger.horizon
    snapshot: np.ndarray | None = None
    if info.best_effort or info.degraded:
        # Degraded SLO jobs (deadline already unmeetable) are served exactly
        # like best-effort jobs: leftovers only, finish as early as possible.
        new_plan = np.zeros(horizon, dtype=np.int64)
        new_plan[0] = next_size
        if current_size == 0:
            priority = math.inf
            tiebreak = _gpu_seconds_to_completion(info, 1, slot_seconds)
        else:
            old_cost = _gpu_seconds_to_completion(info, current_size, slot_seconds)
            new_cost = _gpu_seconds_to_completion(info, next_size, slot_seconds)
            priority = (old_cost - new_cost) / added
            tiebreak = 0.0
    else:
        head = np.zeros(horizon, dtype=np.int64)
        head[0] = next_size
        new_plan = progressive_filling(
            info, available, start_slot=1, head=head, warm_hints=warm_hints
        )
        if new_plan is None:
            return None
        if old_cost is None:
            old_cost = info.gpu_seconds_of(current)
        new_cost = info.gpu_seconds_of(new_plan)
        priority = (old_cost - new_cost) / added
        tiebreak = 0.0
        snapshot = available
        # ``top_free`` stays False here: deciding it costs an extra
        # O(window) min per proposal, which only pays off where the min is
        # already in hand (the batched initial proposals).  False merely
        # routes revalidation through the exact vector comparison.
        return Upgrade(
            job_id=info.job_id,
            plan=new_plan,
            added_gpus=added,
            priority=priority,
            tiebreak=tiebreak,
            ledger_version=ledger.version,
            available=snapshot,
            new_cost=new_cost,
        )
    return Upgrade(
        job_id=info.job_id,
        plan=new_plan,
        added_gpus=added,
        priority=priority,
        tiebreak=tiebreak,
        ledger_version=ledger.version,
        available=snapshot,
    )


def _still_valid(upgrade: Upgrade, info: PlanningJob, ledger: Ledger) -> bool:
    """Whether a stale-versioned proposal is still exactly what a rebuild
    would produce.

    A proposal depends only on the proposing job's own registered plan
    (unchanged — each job has at most one proposal in flight, so its plan
    can only have moved by applying *this* proposal) and on the capacity
    left for it.  Slot-0 feasibility reduces to ``added <= available[0]``;
    an SLO proposal's tail refill additionally depends on the leftover
    capacity per slot, but only *within the job's usable window* (slots
    with nonzero weight — progress and the written plan never reach past
    it) and only *clamped at the job's largest runnable size* (the fill
    takes ``min(cap, available)`` with ``cap <= top``, so capacity above
    ``top`` is indistinguishable from ``top``).  When the clamped windowed
    capacity vector is unchanged, the rebuilt proposal is bit-identical
    (same plan, same priority), so the popped one can be applied directly —
    this turns Algorithm 2 from O(upgrades x jobs) refills into
    O(upgrades) refills plus cheap short-vector comparisons.
    """
    if upgrade.added_gpus > ledger.available_at(0):
        return False
    if upgrade.available is None:
        return True
    usable = info.window(1)
    if usable == 0:
        return True
    top = info.sizes[-1] if info.sizes else 0
    current = ledger.plan_view(upgrade.job_id)
    stop = 1 + usable
    if upgrade.top_free:
        # The snapshot's clamped window is the constant ``top`` row, so the
        # rebuilt vector equals it exactly when the current window also
        # clears ``top`` everywhere — one add and one min instead of two
        # clamps and a comparison (exact in both directions: a clamped
        # vector is all-``top`` iff its unclamped min is >= ``top``).
        now_min = int(
            (ledger.available()[1:stop] + current[1:stop]).min()
        )
        return now_min >= top
    then = np.minimum(np.maximum(upgrade.available[1:stop], 0), top)
    now = np.minimum(
        np.maximum(
            ledger.available()[1:stop] + current[1:stop], 0
        ),
        top,
    )
    return bool(np.array_equal(then, now))


def _initial_upgrades(
    infos: list[PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
    warm_hints: dict[tuple[str, int], int] | None,
) -> list[Upgrade]:
    """Every job's first Algorithm 2 proposal, warm tail refills batched.

    Pass 1 applies the exact scalar gates of :func:`_propose` and queues
    every SLO job whose hinted tail cap is runnable and whose usable window
    is unclamped (min leftover capacity >= cap) into one
    :class:`WarmRowBatch`; pass 2 solves the batch; pass 3 verifies each
    row exactly as the warm path of :func:`progressive_filling` does and
    emits the proposal, falling back to :func:`_propose` for everything
    else (best-effort, unhinted, clamped, trivially-satisfied, or failed
    verification).  Proposals are bit-identical either way — see the batch
    module's contract — and the resulting heap order is too, because it is
    a total order over ``(priority, tiebreak, job_id)`` and never depends
    on push order.
    """
    batch = WarmRowBatch()
    prepared: list[tuple] = []
    upgrades: list[Upgrade] = []
    fallbacks: list[PlanningJob] = []
    for info in infos:
        current = ledger.plan_view(info.job_id)
        current_size = int(current[0])
        next_size = info.next_size_after(current_size)
        if next_size is None:
            continue
        if info.throughput_table[next_size] <= info.throughput_table[current_size]:
            continue
        added = next_size - current_size
        available = ledger.available() + current
        if added > available[0] - current_size:
            continue
        if info.best_effort or info.degraded:
            fallbacks.append(info)  # scalar-only proposal: nothing to batch
            continue
        cap = None if warm_hints is None else warm_hints.get((info.job_id, 1))
        usable = info.window(1)
        # Same single-product head shortcut as the start_slot=1 fill.
        base = float(info.throughput_table[next_size]) * float(info.weights[0])
        required = info.remaining_iterations - base
        if cap is None or not usable or required <= _EPS or not info.sizes:
            fallbacks.append(info)
            continue
        consts = ladder_consts(
            info.tables_token,
            cap,
            info.sizes,
            info.sizes_array(),
            info.size_table,
            info.throughput_table,
        )
        if consts is None:
            fallbacks.append(info)  # stale hint from a different table build
            continue
        m = int(available[1 : 1 + usable].min())
        if m < cap:
            fallbacks.append(info)  # clamped window: per-slot takes differ
            continue
        s_cap, thr_hint, _below, thr_below = consts
        handle = batch.add(info.weights[1 : 1 + usable], thr_hint, thr_below)
        prepared.append(
            (info, current, available, next_size, added, required, s_cap, handle, m)
        )
    batch.solve()
    for info, current, available, next_size, added, required, s_cap, handle, m in prepared:
        threshold = required - _EPS
        row = batch.hint_row(handle)
        if row[-1] >= threshold and batch.below_total(handle) < threshold:
            note_warm_fill(True)
            note_batch_fill(True)
            plan = np.zeros(ledger.horizon, dtype=np.int64)
            plan[0] = next_size
            plan = _emit_plan(
                info,
                plan,
                s_cap,
                row,
                required,
                threshold,
                info.weights[1 : 1 + len(row)],
                1,
            )
            old_cost = info.gpu_seconds_of(current)
            new_cost = info.gpu_seconds_of(plan)
            upgrades.append(
                Upgrade(
                    job_id=info.job_id,
                    plan=plan,
                    added_gpus=added,
                    priority=(old_cost - new_cost) / added,
                    tiebreak=0.0,
                    ledger_version=ledger.version,
                    available=available,
                    new_cost=new_cost,
                    top_free=m >= info.sizes[-1],
                )
            )
        else:
            note_batch_fill(False)
            fallbacks.append(info)
    for info in fallbacks:
        upgrade = _propose(info, ledger, slot_seconds, None, warm_hints)
        if upgrade is not None:
            upgrades.append(upgrade)
    return upgrades


@mutates("Ledger._plans", "Ledger._used")
def allocate_leftover(
    infos: list[PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
    *,
    warm_hints: dict[tuple[str, int], int] | None = None,
) -> dict[str, int]:
    """Run Algorithm 2: distribute leftover slot-0 GPUs by marginal return.

    Args:
        infos: Planning views of every active job.  Each must already have a
            plan registered in ``ledger`` (its minimum satisfactory share;
            all-zero for best-effort jobs).
        ledger: Occupancy ledger pre-loaded with minimum shares.  Mutated in
            place; on return it holds the final plans.
        slot_seconds: Width of one planning slot.
        warm_hints: Optional cap-hint store threaded into every tail refill
            (see :func:`repro.core.admission.progressive_filling`); the
            policy passes its controller's hint dict so cap choices carry
            across events.

    Returns:
        Mapping of job id to its slot-0 GPU allocation (the decision that is
        actually executed before the next scheduling event).
    """
    by_id = {info.job_id: info for info in infos}
    # Ties on (priority, tiebreak) are broken by job id, NOT insertion
    # order: the order must be a property of the proposals themselves so
    # that revalidating a stale proposal (fast path) and rebuilding it
    # from scratch (cache-disabled path) pop jobs in the identical order.
    heap: list[tuple[float, float, str, Upgrade]] = []

    def push(info: PlanningJob, old_cost: float | None = None) -> None:
        upgrade = _propose(info, ledger, slot_seconds, old_cost, warm_hints)
        if upgrade is not None:
            heapq.heappush(
                heap, (-upgrade.priority, upgrade.tiebreak, upgrade.job_id, upgrade)
            )

    revalidate = cache_enabled()
    if revalidate and batching_enabled():
        for upgrade in _initial_upgrades(infos, ledger, slot_seconds, warm_hints):
            heapq.heappush(
                heap, (-upgrade.priority, upgrade.tiebreak, upgrade.job_id, upgrade)
            )
    else:
        for info in infos:
            push(info)

    while heap and ledger.available_at(0) > 0:
        _, _, _, upgrade = heapq.heappop(heap)
        info = by_id[upgrade.job_id]
        if upgrade.ledger_version != ledger.version and not (
            revalidate and _still_valid(upgrade, info, ledger)
        ):
            push(info)  # genuinely stale: capacity it relied on is gone
            continue
        ledger.set_plan(info.job_id, upgrade.plan, trusted=True)
        # The applied plan is now the job's current one, so its cost can
        # carry into the follow-up proposal (the SLO branch would
        # recompute the identical product; best-effort proposals never
        # read it).  The carry is a memo, so the cache-disabled path
        # recomputes instead.
        carry = revalidate and upgrade.available is not None
        push(info, upgrade.new_cost if carry else None)

    return {info.job_id: int(ledger.plan_view(info.job_id)[0]) for info in infos}
