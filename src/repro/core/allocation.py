"""Greedy elastic resource allocation (paper Section 4.2, Algorithm 2).

After every admitted job holds its minimum satisfactory share, leftover GPUs
in the *next* slot are handed out one upgrade at a time to the job with the
highest marginal return.  An upgrade raises a job's slot-0 allocation to its
next runnable size; the job's tail is then re-filled minimally (progressive
filling from slot 1), so speeding a job up releases capacity in later slots
for everyone else.  Under concave scaling curves this greedy order is
optimal for the total-GPU-time objective (Theorem 2); our tests verify this
against brute force on small instances.

Best-effort jobs (Section 4.4) participate with a zero minimum share: their
first GPU has infinite marginal return (they would otherwise never finish),
with ties broken shortest-remaining-first to minimise average JCT.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from typing import NamedTuple

import numpy as np

from repro.core.admission import PlanningJob, _emit_plan, progressive_filling
from repro.core.batch import WarmRowBatch
from repro.core.plan import Ledger
from repro.numeric import EPS as _EPS
from repro.perf import probe
from repro.perf.coherence import coherent, mutates
from repro.perf.tables import (
    batching_enabled,
    cache_enabled,
    ladder_consts,
    note_batch_fill,
    note_plan_memo_fills,
    note_warm_fill,
)

__all__ = ["Upgrade", "UpgradeSeedIndex", "allocate_leftover"]

#: Distinguishes "no memo yet" from a memoized verification failure
#: (stored as ``None``) in the upgrade engine's plan cache.
_UNCACHED = object()

#: Distinguishes "no entry" from a cached "no improving upgrade" verdict
#: (stored as ``None``) in the seed index.
_NO_ENTRY = object()


@coherent(_entries="verified:lookup")
class UpgradeSeedIndex:
    """Persistent first-proposal verdicts for Algorithm 2's seed pass.

    Pass 1 of :func:`_initial_upgrades` runs the same scalar gate sequence
    for every job on every scheduling event: read the registered plan's
    slot-0 size, bisect the size ladder for the next runnable size, and
    check constraint (7) (throughput must strictly improve).  The verdict —
    the improving next size, or ``None`` when the job cannot grow — is a
    pure function of ``(tables_token, current_size)``: the ladder and the
    throughput table are frozen per token, and at seed time the current
    size is the job's Algorithm 1 minimum share, which the delta fill
    reuses by reference for every unperturbed job.  The index caches that
    verdict per job across events, so steady-state jobs answer with one
    dict hit and two integer compares instead of the bisect-and-lookup
    gates.

    Coherence class ``verified``: :meth:`lookup` is both the only reader
    and the verifier — an entry is used only when its stored token and
    size match the caller's ground truth, so stale entries (plan moved,
    tables rebuilt) cost one recompute, never a wrong verdict.  The
    admission delta pass's ``perturbed`` set additionally drops entries
    eagerly (:meth:`invalidate`), and :meth:`prune` bounds the dict to
    the live job set on long traces.  Decision-digest equivalence is
    structural: a hit returns exactly what the gates would recompute.
    ``repro.perf.tables.seed_index_disabled`` is the escape hatch (the
    scheduler then passes no index and pass 1 runs the gates inline).
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[int, int, int | None]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    @mutates("_entries")
    def lookup(self, info: PlanningJob, current_size: int) -> int | None:
        """The improving next size for ``info`` at ``current_size``.

        Returns ``None`` when the job cannot grow (top of its ladder, or
        the next size does not strictly improve throughput).  Verifier and
        writer in one: a mismatched or missing entry re-runs the exact
        gates and overwrites.
        """
        entry = self._entries.get(info.job_id, _NO_ENTRY)
        if (
            entry is not _NO_ENTRY
            and entry[0] == info.tables_token
            and entry[1] == current_size
        ):
            self.hits += 1
            return entry[2]
        self.misses += 1
        next_size = info.next_size_after(current_size)
        if next_size is not None and (
            info.throughput_table[next_size] <= info.throughput_table[current_size]
        ):
            next_size = None
        self._entries[info.job_id] = (info.tables_token, current_size, next_size)
        return next_size

    @mutates("_entries")
    def invalidate(self, perturbed: frozenset[str]) -> None:
        """Drop the entries of jobs whose minimum share was re-filled."""
        entries = self._entries
        for job_id in perturbed:
            if entries.pop(job_id, None) is not None:
                self.invalidations += 1

    @mutates("_entries")
    def prune(self, live_ids: set[str], *, bound: int | None = None) -> int:
        """Evict entries of departed jobs; returns the eviction count.

        With ``bound``, pruning only happens once the index outgrows it —
        the common case (index tracks the live set) then costs one length
        compare instead of a full scan.
        """
        if bound is not None and len(self._entries) <= bound:
            return 0
        stale = [job_id for job_id in self._entries if job_id not in live_ids]
        for job_id in stale:
            del self._entries[job_id]
        return len(stale)

    def flush_counters(self) -> None:
        """Move accumulated hit/miss/invalidation counts into the probe."""
        probe.add_counters(
            {
                "alg2_seed_hits": self.hits,
                "alg2_seed_misses": self.misses,
                "alg2_seed_invalidations": self.invalidations,
            }
        )
        self.hits = self.misses = self.invalidations = 0


class Upgrade(NamedTuple):
    """A proposed single-step expansion of one job's slot-0 allocation.

    ``available`` snapshots the ledger's unclaimed-capacity vector at
    proposal time — by *reference*: :meth:`Ledger.available` hands out a
    frozen array that is rebound, never mutated, on version change, so
    keeping it costs nothing.  The capacity the tail refill was actually
    computed against is this snapshot plus the job's own plan, which the
    revalidation re-adds at pop time (the job's plan cannot have moved
    while its proposal is in flight — each job has at most one live
    proposal).  ``None`` for best-effort/degraded proposals, whose plans
    never reach past slot 0 and therefore depend only on slot-0 capacity.
    A popped proposal whose ledger version is stale is *revalidated*
    against the snapshot instead of being rebuilt from scratch — see
    :func:`_still_valid`.

    A ``NamedTuple`` rather than a dataclass: the upgrade loop constructs
    one per proposal (a seven-figure count per full-scale run) and tuple
    construction skips the frozen-dataclass ``object.__setattr__`` dance.
    Heap entries order on ``(-priority, tiebreak, job_id, generation)``
    before ever reaching the payload, so tuple comparison semantics are
    never exercised.
    """

    job_id: str
    plan: np.ndarray
    added_gpus: int
    priority: float
    tiebreak: float
    ledger_version: int
    available: np.ndarray | None = None
    #: GPU-time of ``plan`` (SLO proposals only).  After this upgrade is
    #: applied it becomes the job's *current* cost, so the follow-up
    #: proposal reuses it instead of recomputing the identical product.
    new_cost: float = 0.0
    #: Whether the snapshot's usable window had at least the job's top
    #: runnable size free in every slot.  The clamped snapshot vector is
    #: then the constant ``top`` row, so revalidation reduces to a single
    #: min over the current window (see :func:`_still_valid`).
    top_free: bool = False


def _gpu_seconds_to_completion(info: PlanningJob, n_gpus: int, slot_seconds: float) -> float:
    """GPU-time a best-effort job burns finishing at a constant size."""
    throughput = float(info.throughput_table[n_gpus])
    if throughput <= 0.0:
        return math.inf
    return info.remaining_iterations / throughput * n_gpus


def _propose(
    info: PlanningJob,
    ledger: Ledger,
    slot_seconds: float,
    old_cost: float | None = None,
    warm_hints: dict[tuple[str, int], int] | None = None,
    engine: "_UpgradeEngine | None" = None,
) -> Upgrade | None:
    """Build the next upgrade for one job, or ``None`` if it cannot grow.

    ``old_cost`` short-circuits the GPU-time of the job's current plan when
    the caller already knows it (the cost of the upgrade it just applied).
    ``warm_hints`` carries the tail refill's previous cap choices into
    :func:`progressive_filling` (verified there; see its docstring).
    ``engine`` routes the tail refill through the upgrade engine's shared
    row batch first (bit-identical; see :meth:`_UpgradeEngine.try_warm_plan`),
    with ``progressive_filling`` as the fallback for anything the batch
    path cannot serve.
    """
    current = ledger.plan_view(info.job_id)
    current_size = int(current[0])
    next_size = info.next_size_after(current_size)
    if next_size is None:
        return None
    # Constraint (7): only grow while throughput strictly improves.
    if info.throughput_table[next_size] <= info.throughput_table[current_size]:
        return None
    added = next_size - current_size
    # Slot-0 feasibility over the job-inclusive capacity reduces to the
    # ledger's unclaimed slot-0 count (the job's own share cancels), so no
    # capacity vector is materialised unless the tail fill needs one.  The
    # engine carries that count incrementally (decremented on every apply,
    # the only ledger mutation while it runs), sparing the array lookup.
    if added > (engine.avail0 if engine is not None else ledger.available_at(0)):
        return None

    if info.best_effort or info.degraded:
        # Degraded SLO jobs (deadline already unmeetable) are served exactly
        # like best-effort jobs: leftovers only, finish as early as possible.
        new_plan = np.zeros(ledger.horizon, dtype=np.int64)
        new_plan[0] = next_size
        if current_size == 0:
            priority = math.inf
            tiebreak = _gpu_seconds_to_completion(info, 1, slot_seconds)
        else:
            old_cost = _gpu_seconds_to_completion(info, current_size, slot_seconds)
            new_cost = _gpu_seconds_to_completion(info, next_size, slot_seconds)
            priority = (old_cost - new_cost) / added
            tiebreak = 0.0
        return Upgrade(
            job_id=info.job_id,
            plan=new_plan,
            added_gpus=added,
            priority=priority,
            tiebreak=tiebreak,
            ledger_version=ledger.version,
            available=None,
        )
    avail_slots = ledger.available()
    if engine is not None:
        warm = engine.try_warm_plan(info, avail_slots, current, next_size)
        if warm is not None:
            new_plan, top_free, new_cost = warm
            if old_cost is None:
                old_cost = engine.current_cost(info, current)
            return Upgrade(
                job_id=info.job_id,
                plan=new_plan,
                added_gpus=added,
                priority=(old_cost - new_cost) / added,
                tiebreak=0.0,
                ledger_version=ledger.version,
                available=avail_slots,
                new_cost=new_cost,
                top_free=top_free,
            )
    if engine is not None:
        # Scratch reuse: the fill reads both arrays synchronously (windowed
        # copies) and retains neither; slots past 0 of the head stay zero.
        capacity = np.add(avail_slots, current, out=engine.cap_scratch)
        head = engine.head_scratch
    else:
        capacity = avail_slots + current  # capacity if this job replans
        head = np.zeros(ledger.horizon, dtype=np.int64)
    head[0] = next_size
    new_plan = progressive_filling(
        info,
        capacity,
        start_slot=1,
        head=head,
        warm_hints=warm_hints,
    )
    if new_plan is None:
        return None
    if old_cost is None:
        old_cost = (
            engine.current_cost(info, current)
            if engine is not None
            else info.gpu_seconds_of(current)
        )
    new_cost = info.gpu_seconds_of(new_plan)
    return Upgrade(
        job_id=info.job_id,
        plan=new_plan,
        added_gpus=added,
        priority=(old_cost - new_cost) / added,
        tiebreak=0.0,
        ledger_version=ledger.version,
        available=avail_slots,
        new_cost=new_cost,
        # ``top_free`` stays False on this path: deciding it costs an
        # extra O(window) min per proposal, which only pays off where
        # the min is already in hand (the engine/batched paths).  False
        # merely routes revalidation through the exact comparison.
        top_free=False,
    )


def _still_valid(
    upgrade: Upgrade,
    info: PlanningJob,
    ledger: Ledger,
    stop: int | None = None,
    slot0_ok: bool = False,
) -> bool:
    """Whether a stale-versioned proposal is still exactly what a rebuild
    would produce.  ``stop`` optionally carries the caller's memo of
    ``1 + info.window(1)`` (the engine keeps one per job); ``slot0_ok``
    says the caller already verified ``added <= available[0]`` (the engine
    loop gates every pop on its carried count before revalidating).

    A proposal depends only on the proposing job's own registered plan
    (unchanged — each job has at most one proposal in flight, so its plan
    can only have moved by applying *this* proposal) and on the capacity
    left for it.  Slot-0 feasibility reduces to ``added <= available[0]``;
    an SLO proposal's tail refill additionally depends on the leftover
    capacity per slot, but only *within the job's usable window* (slots
    with nonzero weight — progress and the written plan never reach past
    it) and only *clamped at the job's largest runnable size* (the fill
    takes ``min(cap, available)`` with ``cap <= top``, so capacity above
    ``top`` is indistinguishable from ``top``).  When the clamped windowed
    capacity vector is unchanged, the rebuilt proposal is bit-identical
    (same plan, same priority), so the popped one can be applied directly —
    this turns Algorithm 2 from O(upgrades x jobs) refills into
    O(upgrades) refills plus cheap short-vector comparisons.
    """
    if not slot0_ok and upgrade.added_gpus > ledger.available_at(0):
        return False
    if upgrade.available is None:
        return True
    if stop is None:
        stop = 1 + info.window(1)
    if stop == 1:
        return True
    top = info.sizes[-1] if info.sizes else 0
    current = ledger.plan_view(upgrade.job_id)
    cur_win = current[1:stop]
    if upgrade.top_free:
        # The snapshot's clamped window is the constant ``top`` row, so the
        # rebuilt vector equals it exactly when the current window also
        # clears ``top`` everywhere — one add and one min instead of two
        # clamps and a comparison (exact in both directions: a clamped
        # vector is all-``top`` iff its unclamped min is >= ``top``).
        now_min = int((ledger.available()[1:stop] + cur_win).min())
        return now_min >= top
    # The snapshot holds the ledger's availability by reference; the
    # capacity the refill saw is snapshot + the job's own plan, which is
    # unchanged while its proposal is in flight (Upgrade docstring).
    then = np.minimum(np.maximum(upgrade.available[1:stop] + cur_win, 0), top)
    now = np.minimum(
        np.maximum(ledger.available()[1:stop] + cur_win, 0), top
    )
    return bool(np.array_equal(then, now))


@coherent(
    _handles="verified:try_warm_plan",
    _perturb_versions="verified:window_undisturbed",
    _plan_cache="verified:try_warm_plan",
)
class _UpgradeEngine:
    """Per-call vectorized state for Algorithm 2's upgrade loop.

    One engine lives for the duration of a single :func:`allocate_leftover`
    call and carries three pieces of state across heap pops:

    - **A shared row batch with a handle cache.**  Within one call every
      job's planning view is frozen, so the warm tail row for a hinted cap
      — ``cumsum(T[S[cap]] * weights[1:1+usable])`` — is a pure function of
      ``(job_id, cap)``.  The seed proposals register their rows here
      (:func:`_initial_upgrades` solves them in one padded bucketed pass),
      and every *follow-up* or *rebuilt* proposal re-proposed after an
      apply first asks :meth:`try_warm_plan`: a cache hit skips the row
      cumsum entirely (a job that keeps its tail cap across consecutive
      upgrades — the overwhelmingly common case — re-verifies against the
      already-solved row, because the row depends on the cap, not on the
      growing head size); a miss appends to the same batch and solves just
      the pending tail (bit-identical to a fresh solve — see
      :meth:`repro.core.batch.WarmRowBatch.solve_pending`).  On top of the
      rows, whole *emitted plans* (and their GPU-time) are memoized per
      ``(job_id, cap, next_size)`` — pure per key once the unclamped gate
      holds, see :meth:`adopt_plan` — as are verification failures, and
      each job's current-plan cost is carried across applies
      (:meth:`current_cost`), so a typical re-proposal does two dict hits
      and one windowed min.
    - **A perturbation watermark.**  Every applied upgrade records the
      first tail slot its plan changed (``tail_lo``) against the ledger
      version after the apply, in a monotone stack (versions ascending,
      watermarks strictly ascending; pushing pops dominated entries).  A
      stale-versioned pop then answers "is my snapshot window undisturbed?"
      with one bisect: if every apply since the proposal's version only
      touched slots at or past the window's end, the availability the
      proposal saw is *exactly* unchanged and the O(window) vector compare
      of :func:`_still_valid` is skipped.  Inconclusive answers fall back
      to the exact check, so the watermark can only save time, never flip
      a decision (the ``verified`` coherence class).
    - **Slot-0 availability, carried incrementally.**  The loop condition
      and the slot-0 feasibility gate read a running counter decremented
      by each apply's ``added_gpus`` instead of re-deriving
      ``ledger.available_at(0)`` per pop.

    The engine never mutates the ledger; applies stay in
    :func:`allocate_leftover` (the declared ``Ledger`` mutator), which
    notifies :meth:`note_apply` afterwards.  Operation counts accumulate
    locally and flush to :mod:`repro.perf.probe` in one call.
    """

    def __init__(
        self,
        ledger: Ledger,
        warm_hints: dict[tuple[str, int], int] | None,
    ) -> None:
        self._ledger = ledger
        self._warm_hints = warm_hints
        self.batch = WarmRowBatch()
        self._handles: dict[tuple[str, int], int] = {}
        self._perturb_versions: list[int] = []
        self._perturb_watermarks: list[int] = []
        self._plan_cache: dict[tuple[str, int, int], tuple[np.ndarray, float] | None] = {}
        #: Memo of ``1 + info.window(1)`` per job — the window itself is
        #: memoized on the view, but the hot loops pay the method-call and
        #: double-dict-lookup toll millions of times per run.
        self._stops: dict[str, int] = {}
        #: Reusable buffers for the ``progressive_filling`` fallback, which
        #: reads its capacity vector and head synchronously and keeps no
        #: reference to either — one allocation per engine instead of two
        #: per fallback proposal.
        self.cap_scratch = np.empty(ledger.horizon, dtype=np.int64)
        self.head_scratch = np.zeros(ledger.horizon, dtype=np.int64)
        self.avail0 = ledger.available_at(0)
        #: GPU-time of each job's *current* plan, updated to the applied
        #: proposal's ``new_cost`` on every apply (same float the fresh
        #: product would yield) — carried like ``avail0``, so stale
        #: reproposals skip the windowed product-sum.
        self.job_cost: dict[str, float] = {}
        self.counters = {
            "alg2_heap_pushes": 0,
            "alg2_heap_pops": 0,
            "alg2_gen_skips": 0,
            "alg2_watermark_hits": 0,
            "alg2_stale_revalidations": 0,
            "alg2_batched_reproposals": 0,
            "alg2_row_cache_hits": 0,
            "alg2_plan_cache_hits": 0,
        }

    @mutates("_handles")
    def register(self, job_id: str, cap: int, handle: int) -> None:
        """Adopt a seed proposal's solved row into the handle cache."""
        self._handles[(job_id, cap)] = handle

    @mutates("_plan_cache")
    def adopt_plan(
        self,
        job_id: str,
        cap: int,
        next_size: int,
        plan: np.ndarray,
        new_cost: float,
    ) -> None:
        """Memoize a verified warm plan for its ``(job_id, cap, next_size)``.

        Given the unclamped-window gate (``m >= cap``), the emitted plan and
        its GPU-time are pure functions of the key — every planning view is
        frozen for the call, the solved row depends on the cap alone, and
        the key is applied at most once (an apply strictly grows the job's
        size, changing ``next_size``) — so re-proposals after the gate can
        return the memo verbatim.  Adopted arrays are never written again
        (``set_plan(trusted=True)`` freezes them in place on apply).
        """
        self._plan_cache[(job_id, cap, next_size)] = (plan, new_cost)

    @mutates("_plan_cache")
    def reject_plan(self, job_id: str, cap: int, next_size: int) -> None:
        """Memoize a row-verification failure (pure per key, like adoption)."""
        self._plan_cache[(job_id, cap, next_size)] = None

    def current_cost(self, info: PlanningJob, current: np.ndarray) -> float:
        """GPU-time of the job's registered plan, memoized until its next apply."""
        cost = self.job_cost.get(info.job_id)
        if cost is None:
            cost = info.gpu_seconds_of(current)
            self.job_cost[info.job_id] = cost
        return cost

    @mutates("_handles", "_plan_cache")
    def try_warm_plan(
        self,
        info: PlanningJob,
        avail_slots: np.ndarray,
        current: np.ndarray,
        next_size: int,
    ) -> tuple[np.ndarray, bool, float] | None:
        """Build a follow-up tail refill from cached/batched rows.

        ``avail_slots`` is the ledger's availability vector and ``current``
        the job's own registered plan — the refill's capacity is their sum,
        only ever materialised over the usable window.  Applies the
        identical gates and verification as the unclamped warm path of
        :func:`repro.core.admission.progressive_filling` (via the same
        precomputed ladder constants), returning ``(plan, top_free,
        new_cost)`` on success and ``None`` for any gate or verification
        failure — the caller then falls back to ``progressive_filling``,
        which handles clamped windows, hint updates, and the full 2-D scan.
        The ``m >= cap`` gate makes the ``np.maximum(available, 0)`` clamp
        of the fallback path a no-op, so the batch row verifies exactly
        what the sequential row would.

        Results are memoized per ``(job_id, cap, next_size)`` — both
        verified plans and verification failures, which are equally pure
        per key (see :meth:`adopt_plan`) — so a re-proposal only re-checks
        the state-dependent gates (the hinted cap and the windowed ``m``).
        """
        warm_hints = self._warm_hints
        if warm_hints is None or not info.sizes:
            return None
        cap = warm_hints.get((info.job_id, 1))
        if cap is None:
            return None
        job_id = info.job_id
        key = (job_id, cap, next_size)
        cached = self._plan_cache.get(key, _UNCACHED)
        if cached is None:
            return None  # memoized verification failure
        stop = self._stops.get(job_id)
        if stop is None:
            stop = 1 + info.window(1)
            self._stops[job_id] = stop
        if stop == 1:
            return None  # empty usable window
        if cached is not _UNCACHED:
            m = int((avail_slots[1:stop] + current[1:stop]).min())
            if m < cap:
                return None  # clamped window: per-slot takes differ
            # Warm/batch fill stats for memo hits flush in bulk at the end
            # of the call (flush_counters) instead of two calls per hit.
            self.counters["alg2_plan_cache_hits"] += 1
            plan, new_cost = cached
            return plan, m >= info.sizes[-1], new_cost
        base = float(info.throughput_table[next_size]) * float(info.weights[0])
        required = info.remaining_iterations - base
        if required <= _EPS:
            return None
        consts = ladder_consts(
            info.tables_token,
            cap,
            info.sizes,
            info.sizes_array(),
            info.size_table,
            info.throughput_table,
        )
        if consts is None:
            return None  # stale hint from a different table build
        m = int((avail_slots[1:stop] + current[1:stop]).min())
        if m < cap:
            return None  # clamped window: per-slot takes differ
        s_cap, thr_hint, _below, thr_below = consts
        row_key = (job_id, cap)
        handle = self._handles.get(row_key)
        if handle is None:
            handle = self.batch.add(
                info.weights[1:stop], thr_hint, thr_below
            )
            self.batch.solve_pending()
            self._handles[row_key] = handle
            self.counters["alg2_batched_reproposals"] += 1
        else:
            self.counters["alg2_row_cache_hits"] += 1
        threshold = required - _EPS
        row = self.batch.hint_row(handle)
        if not (row[-1] >= threshold and self.batch.below_total(handle) < threshold):
            note_batch_fill(False)
            self._plan_cache[key] = None
            return None
        note_warm_fill(True)
        note_batch_fill(True)
        plan = np.zeros(self._ledger.horizon, dtype=np.int64)
        plan[0] = next_size
        plan = _emit_plan(
            info,
            plan,
            s_cap,
            row,
            required,
            threshold,
            info.weights[1 : 1 + len(row)],
            1,
        )
        new_cost = info.gpu_seconds_of(plan)
        self._plan_cache[key] = (plan, new_cost)
        return plan, m >= info.sizes[-1], new_cost

    @mutates("_perturb_versions")
    def note_apply(
        self,
        old_plan: np.ndarray,
        new_plan: np.ndarray,
        version_after: int,
    ) -> None:
        """Record an applied upgrade's tail perturbation watermark."""
        changed = new_plan[1:] != old_plan[1:]
        # argmax finds the first True in one pass (no index-array build);
        # an all-False row (or an empty one at horizon 1) means only slot 0
        # moved.
        if changed.size and changed[(first := int(changed.argmax()))]:
            tail_lo = 1 + first
        else:
            tail_lo = self._ledger.horizon + 1  # only slot 0 moved
        versions = self._perturb_versions
        watermarks = self._perturb_watermarks
        while watermarks and watermarks[-1] >= tail_lo:
            watermarks.pop()
            versions.pop()
        versions.append(version_after)
        watermarks.append(tail_lo)

    def window_undisturbed(self, upgrade: Upgrade, info: PlanningJob) -> bool:
        """Whether no apply since the proposal touched its snapshot window.

        ``True`` implies the availability vector over ``[1, 1+usable)`` is
        bit-identical to the proposal's snapshot *and* the proposing job's
        own plan is unchanged (the generation counter guarantees the popped
        entry is the job's only live proposal), so the exact
        :func:`_still_valid` comparison would pass; the slot-0 feasibility
        gate is the caller's.  ``False`` means "inconclusive", not
        "invalid".
        """
        if upgrade.available is None:
            return True  # best-effort: depends on slot 0 only
        stop = self._stops.get(info.job_id)
        if stop is None:
            stop = 1 + info.window(1)
            self._stops[info.job_id] = stop
        if stop == 1:
            return True
        index = bisect_right(self._perturb_versions, upgrade.ledger_version)
        if index == len(self._perturb_versions):
            return True
        # Watermarks are strictly increasing, so the first entry newer than
        # the proposal carries the minimum watermark among all of them
        # (popped entries were dominated by a newer, lower watermark).
        return self._perturb_watermarks[index] >= stop

    def flush_counters(self) -> None:
        note_plan_memo_fills(self.counters["alg2_plan_cache_hits"])
        probe.add_counters(self.counters)


def _initial_upgrades(
    infos: list[PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
    warm_hints: dict[tuple[str, int], int] | None,
    engine: _UpgradeEngine | None = None,
    seed_index: UpgradeSeedIndex | None = None,
) -> list[Upgrade]:
    """Every job's first Algorithm 2 proposal, warm tail refills batched.

    Pass 1 applies the exact scalar gates of :func:`_propose` and queues
    every SLO job whose hinted tail cap is runnable and whose usable window
    is unclamped (min leftover capacity >= cap) into one
    :class:`WarmRowBatch`; pass 2 solves the batch; pass 3 verifies each
    row exactly as the warm path of :func:`progressive_filling` does and
    emits the proposal, falling back to :func:`_propose` for everything
    else (best-effort, unhinted, clamped, trivially-satisfied, or failed
    verification).  Proposals are bit-identical either way — see the batch
    module's contract — and the resulting heap order is too, because it is
    a total order over ``(priority, tiebreak, job_id)`` and never depends
    on push order.

    With an ``engine``, rows are queued into *its* shared batch and their
    handles registered in its ``(job_id, cap)`` cache, so the follow-up
    proposals the upgrade loop builds later reuse the seed rows in place.
    With a ``seed_index``, the ladder/throughput gates are answered from
    its persistent per-job verdicts (self-validated against the current
    size and tables token — exact, see :class:`UpgradeSeedIndex`) instead
    of re-running the bisect per job per event.
    """
    batch = engine.batch if engine is not None else WarmRowBatch()
    prepared: list[tuple] = []
    upgrades: list[Upgrade] = []
    fallbacks: list[PlanningJob] = []
    # One frozen snapshot serves every job: the ledger version cannot move
    # inside this read-only pass, and the slot-0 gate is job-independent
    # because a job's own share cancels (available[0] - current_size ==
    # unclaimed capacity for every job).
    avail_slots = ledger.available()
    avail0 = int(avail_slots[0])
    for info in infos:
        current = ledger.plan_view(info.job_id)
        current_size = int(current[0])
        if seed_index is not None:
            next_size = seed_index.lookup(info, current_size)
            if next_size is None:
                continue
        else:
            next_size = info.next_size_after(current_size)
            if next_size is None:
                continue
            if info.throughput_table[next_size] <= info.throughput_table[current_size]:
                continue
        added = next_size - current_size
        if added > avail0:
            continue
        if info.best_effort or info.degraded:
            fallbacks.append(info)  # scalar-only proposal: nothing to batch
            continue
        cap = None if warm_hints is None else warm_hints.get((info.job_id, 1))
        usable = info.window(1)
        # Same single-product head shortcut as the start_slot=1 fill.
        base = float(info.throughput_table[next_size]) * float(info.weights[0])
        required = info.remaining_iterations - base
        if cap is None or not usable or required <= _EPS or not info.sizes:
            fallbacks.append(info)
            continue
        consts = ladder_consts(
            info.tables_token,
            cap,
            info.sizes,
            info.sizes_array(),
            info.size_table,
            info.throughput_table,
        )
        if consts is None:
            fallbacks.append(info)  # stale hint from a different table build
            continue
        stop = 1 + usable
        m = int((avail_slots[1:stop] + current[1:stop]).min())
        if m < cap:
            fallbacks.append(info)  # clamped window: per-slot takes differ
            continue
        s_cap, thr_hint, _below, thr_below = consts
        handle = batch.add(info.weights[1:stop], thr_hint, thr_below)
        if engine is not None:
            engine.register(info.job_id, cap, handle)
        prepared.append(
            (info, current, cap, next_size, added, required, s_cap, handle, m)
        )
    batch.solve()
    for info, current, cap, next_size, added, required, s_cap, handle, m in prepared:
        threshold = required - _EPS
        row = batch.hint_row(handle)
        if row[-1] >= threshold and batch.below_total(handle) < threshold:
            note_warm_fill(True)
            note_batch_fill(True)
            plan = np.zeros(ledger.horizon, dtype=np.int64)
            plan[0] = next_size
            plan = _emit_plan(
                info,
                plan,
                s_cap,
                row,
                required,
                threshold,
                info.weights[1 : 1 + len(row)],
                1,
            )
            old_cost = info.gpu_seconds_of(current)
            new_cost = info.gpu_seconds_of(plan)
            if engine is not None:
                # Seed the engine's memos: the emitted plan for this key
                # and the job's current cost (exact floats either way).
                engine.adopt_plan(info.job_id, cap, next_size, plan, new_cost)
                engine.job_cost[info.job_id] = old_cost
            upgrades.append(
                Upgrade(
                    job_id=info.job_id,
                    plan=plan,
                    added_gpus=added,
                    priority=(old_cost - new_cost) / added,
                    tiebreak=0.0,
                    ledger_version=ledger.version,
                    available=avail_slots,
                    new_cost=new_cost,
                    top_free=m >= info.sizes[-1],
                )
            )
        else:
            note_batch_fill(False)
            if engine is not None:
                engine.reject_plan(info.job_id, cap, next_size)
            fallbacks.append(info)
    for info in fallbacks:
        upgrade = _propose(info, ledger, slot_seconds, None, warm_hints, engine)
        if upgrade is not None:
            upgrades.append(upgrade)
    return upgrades


@mutates("Ledger._plans", "Ledger._used")
def allocate_leftover(
    infos: list[PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
    *,
    warm_hints: dict[tuple[str, int], int] | None = None,
    seed_index: UpgradeSeedIndex | None = None,
) -> dict[str, int]:
    """Run Algorithm 2: distribute leftover slot-0 GPUs by marginal return.

    Args:
        infos: Planning views of every active job.  Each must already have a
            plan registered in ``ledger`` (its minimum satisfactory share;
            all-zero for best-effort jobs).
        ledger: Occupancy ledger pre-loaded with minimum shares.  Mutated in
            place; on return it holds the final plans.
        slot_seconds: Width of one planning slot.
        warm_hints: Optional cap-hint store threaded into every tail refill
            (see :func:`repro.core.admission.progressive_filling`); the
            policy passes its controller's hint dict so cap choices carry
            across events.
        seed_index: Optional persistent first-proposal verdict cache for
            the seed pass (see :class:`UpgradeSeedIndex`); only consulted
            on the engine path, and only while the policy keeps it
            enabled.

    Returns:
        Mapping of job id to its slot-0 GPU allocation (the decision that is
        actually executed before the next scheduling event).
    """
    by_id = {info.job_id: info for info in infos}
    revalidate = cache_enabled()
    if revalidate and batching_enabled():
        return _allocate_with_engine(
            infos, by_id, ledger, slot_seconds, warm_hints, seed_index
        )

    # Ties on (priority, tiebreak) are broken by job id, NOT insertion
    # order: the order must be a property of the proposals themselves so
    # that revalidating a stale proposal (fast path) and rebuilding it
    # from scratch (cache-disabled path) pop jobs in the identical order.
    heap: list[tuple[float, float, str, Upgrade]] = []

    def push(info: PlanningJob, old_cost: float | None = None) -> None:
        upgrade = _propose(info, ledger, slot_seconds, old_cost, warm_hints)
        if upgrade is not None:
            heapq.heappush(
                heap, (-upgrade.priority, upgrade.tiebreak, upgrade.job_id, upgrade)
            )

    for info in infos:
        push(info)

    while heap and ledger.available_at(0) > 0:
        _, _, _, upgrade = heapq.heappop(heap)
        info = by_id[upgrade.job_id]
        if upgrade.ledger_version != ledger.version and not (
            revalidate and _still_valid(upgrade, info, ledger)
        ):
            push(info)  # genuinely stale: capacity it relied on is gone
            continue
        ledger.set_plan(info.job_id, upgrade.plan, trusted=True)
        # The applied plan is now the job's current one, so its cost can
        # carry into the follow-up proposal (the SLO branch would
        # recompute the identical product; best-effort proposals never
        # read it).  The carry is a memo, so the cache-disabled path
        # recomputes instead.
        carry = revalidate and upgrade.available is not None
        push(info, upgrade.new_cost if carry else None)

    return {info.job_id: int(ledger.plan_view(info.job_id)[0]) for info in infos}


@mutates("Ledger._plans", "Ledger._used")
def _allocate_with_engine(
    infos: list[PlanningJob],
    by_id: dict[str, PlanningJob],
    ledger: Ledger,
    slot_seconds: float,
    warm_hints: dict[tuple[str, int], int] | None,
    seed_index: UpgradeSeedIndex | None = None,
) -> dict[str, int]:
    """The vectorized upgrade loop (caches + batching on).

    Decision-equivalent to the sequential loop above, pop for pop:

    - Heap entries are ``(-priority, tiebreak, job_id, generation,
      upgrade)``.  The order over live entries is the identical total
      order — generation only disambiguates multiple entries of one job,
      which the strict per-job proposal discipline makes superseded
      duplicates; popping one is a skip, never an apply, so lazy deletion
      cannot reorder applies.
    - Stale-versioned pops try the engine's perturbation watermark first
      and fall back to the exact :func:`_still_valid` comparison; both are
      exact, so the valid/stale verdict is unchanged.
    - Rebuilds and follow-ups route through the engine's shared row batch
      (:meth:`_UpgradeEngine.try_warm_plan`, bit-identical) with
      ``progressive_filling`` as the fallback.
    """
    engine = _UpgradeEngine(ledger, warm_hints)
    heap: list[tuple[float, float, str, int, Upgrade]] = []
    generation: dict[str, int] = {}
    # Loop-frequency counters live in locals and merge into the engine's
    # dict once, after the loop — a dict lookup per pop is measurable here.
    # Push and repropose are likewise inlined: a closure call per heap entry
    # (~2M per full-scale event stream) shows up in the profile.
    pushes = pops = gen_skips = watermark_hits = stale_revals = 0
    heappush, heappop = heapq.heappush, heapq.heappop

    for upgrade in _initial_upgrades(
        infos, ledger, slot_seconds, warm_hints, engine, seed_index
    ):
        job_id = upgrade.job_id
        gen = generation.get(job_id, 0) + 1
        generation[job_id] = gen
        heappush(heap, (-upgrade.priority, upgrade.tiebreak, job_id, gen, upgrade))
        pushes += 1

    while heap and engine.avail0 > 0:
        _, _, job_id, gen, upgrade = heappop(heap)
        pops += 1
        if gen != generation[job_id]:
            gen_skips += 1
            continue  # superseded by a newer proposal for the same job
        info = by_id[job_id]
        if upgrade.ledger_version != ledger.version:
            if upgrade.added_gpus > engine.avail0:
                valid = False
            elif engine.window_undisturbed(upgrade, info):
                watermark_hits += 1
                valid = True
            else:
                stale_revals += 1
                valid = _still_valid(
                    upgrade, info, ledger, engine._stops.get(job_id), slot0_ok=True
                )
            if not valid:
                # Genuinely stale: its capacity is gone — repropose.
                nxt = _propose(info, ledger, slot_seconds, None, warm_hints, engine)
                if nxt is not None:
                    gen += 1
                    generation[job_id] = gen
                    heappush(heap, (-nxt.priority, nxt.tiebreak, job_id, gen, nxt))
                    pushes += 1
                continue
        old_plan = ledger.plan_view(job_id)
        ledger.set_plan(job_id, upgrade.plan, trusted=True)
        engine.avail0 -= upgrade.added_gpus
        engine.note_apply(old_plan, upgrade.plan, ledger.version)
        # Cost carry as in the sequential loop (always on here: the engine
        # path implies revalidation is on).  With slot-0 capacity spent,
        # the follow-up proposal would fail the slot-0 gate before doing
        # any work (including warm-hint updates), so skip building it.
        if upgrade.available is not None:
            engine.job_cost[job_id] = upgrade.new_cost
            follow_cost = upgrade.new_cost
        else:
            follow_cost = None
        if engine.avail0 > 0:
            nxt = _propose(info, ledger, slot_seconds, follow_cost, warm_hints, engine)
            if nxt is not None:
                gen += 1
                generation[job_id] = gen
                heappush(heap, (-nxt.priority, nxt.tiebreak, job_id, gen, nxt))
                pushes += 1

    counters = engine.counters
    counters["alg2_heap_pushes"] += pushes
    counters["alg2_heap_pops"] += pops
    counters["alg2_gen_skips"] += gen_skips
    counters["alg2_watermark_hits"] += watermark_hits
    counters["alg2_stale_revalidations"] += stale_revals
    engine.flush_counters()
    if seed_index is not None:
        seed_index.flush_counters()
    return {info.job_id: int(ledger.plan_view(info.job_id)[0]) for info in infos}
