"""The ElasticFlow scheduler policy (paper Sections 3 and 4).

On every scheduling event the policy rebuilds a slot grid anchored at the
current time, recomputes the minimum satisfactory share of every admitted
SLO job (Algorithm 1), and distributes leftover GPUs by marginal return
(Algorithm 2).  Arriving SLO jobs are admitted only when the combined
progressive fill stays feasible; best-effort jobs bypass admission and are
served from leftovers (Section 4.4).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.admission import AdmissionController, PlanningJob, planning_job
from repro.core.allocation import allocate_leftover
from repro.core.job import Job
from repro.core.operator import OperatorPolicy
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.perf import probe
from repro.perf.coherence import keyed
from repro.perf.tables import cache_enabled, curve_revision
from repro.sim.interface import SchedulerPolicy

__all__ = ["ElasticFlowPolicy"]


@dataclass
class _RoundEntry:
    """One remembered planning round for the event-level fingerprint cache.

    Attributes:
        key: The round fingerprint (see ``ElasticFlowPolicy._round_key``).
        decisions: The *raw* Algorithm 1+2 decision vector, before
            stability hysteresis — hysteresis reads the jobs' current
            placement sizes, which are engine state outside the
            fingerprint, so it re-runs on every hit.
        minima: Slot-0 minimum satisfactory share per non-degraded SLO job
            (absent means zero) — the only Algorithm 1 side product the
            hysteresis pass needs.
    """

    key: tuple
    decisions: dict[str, int]
    minima: dict[str, int]


@keyed(_info_cache="curve_revision", _round_cache="_round_key")
class ElasticFlowPolicy(SchedulerPolicy):
    """Deadline-driven serverless scheduling with elastic scaling.

    Args:
        safety_margin: Fraction by which planned work is inflated so that
            scaling overheads cannot silently break admitted deadlines.
            Zero reproduces the paper's algorithms exactly.
        deadline_padding_s: Per-job time allowance subtracted from deadlines
            during planning — protection shaped like the per-event
            checkpoint/restore stalls (work inflation alone under-protects
            short jobs that scale often).
        max_horizon: Upper bound on planning slots; when deadlines reach
            further, the slot width is stretched for that planning round.
        admission_enabled: Turning admission off yields the Fig 9 ablation
            variant "EDF + Elastic Scaling" via :mod:`repro.baselines`.
        stability_threshold: Overhead-aware hysteresis — a running job keeps
            its current allocation when the proposed change would move its
            throughput by less than this fraction (and its minimum share
            stays covered).  Zero disables it, reproducing the paper's
            algorithms exactly; small positive values trade a little
            Algorithm 2 optimality for far fewer checkpoint/restore stalls.
        planning_throughput: Optional alternative throughput model used for
            *planning only* (execution still follows the cluster's real
            curves).  Supplying a pessimistic model reproduces the naive
            always-worst-placement approach Section 4.3 argues against.
        failure_reserve_gpus: GPUs withheld from planning so that a node
            failure does not instantly break admitted guarantees — the
            Section 4.4 "node failures" extension.
        operator_policy: Extra operator-side gate (quota/pricing) applied
            after feasibility, "before line 9 of Algorithm 1" as the paper
            puts it (Section 4.4, malicious users).
    """

    name = "elasticflow"

    def __init__(
        self,
        *,
        safety_margin: float = 0.0,
        deadline_padding_s: float = 0.0,
        max_horizon: int = 2048,
        admission_enabled: bool = True,
        stability_threshold: float = 0.0,
        planning_throughput=None,
        failure_reserve_gpus: int = 0,
        operator_policy: OperatorPolicy | None = None,
    ) -> None:
        super().__init__()
        if safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        if deadline_padding_s < 0:
            raise ConfigurationError(
                f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
            )
        if max_horizon < 1:
            raise ConfigurationError(f"max_horizon must be >= 1, got {max_horizon}")
        if stability_threshold < 0:
            raise ConfigurationError(
                f"stability_threshold must be >= 0, got {stability_threshold}"
            )
        self.safety_margin = safety_margin
        self.deadline_padding_s = deadline_padding_s
        self.max_horizon = max_horizon
        self.admission_enabled = admission_enabled
        if failure_reserve_gpus < 0:
            raise ConfigurationError(
                f"failure_reserve_gpus must be >= 0, got {failure_reserve_gpus}"
            )
        self.stability_threshold = stability_threshold
        self.planning_throughput = planning_throughput
        self.failure_reserve_gpus = failure_reserve_gpus
        self.operator_policy = operator_policy
        # One controller per planning capacity (capacity changes only on
        # node failure/repair), so its memoized fills survive across
        # scheduling events — see AdmissionController's caching contract.
        # LRU-bounded: repeated failure/repair cycles would otherwise
        # accumulate controllers (each pinning its fill memo) forever.
        self._controllers: OrderedDict[int, AdmissionController] = OrderedDict()
        # Planning views built during one event are rebuilt identically by
        # the admission pass and the allocation pass (same grid, same
        # remaining work), so they are memoized under the global cache
        # switch.  Keys carry the curve revision: an online-profiling
        # correction invalidates every dependent view.
        self._info_cache: OrderedDict[tuple, PlanningJob] = OrderedDict()
        # The previous planning round, keyed by the round fingerprint: an
        # event whose planning inputs are bit-identical to the last round
        # replays the remembered decision vector without touching
        # Algorithms 1/2 (hysteresis still re-runs; see _RoundEntry).
        self._round_cache: _RoundEntry | None = None
        self.round_hits = 0
        self.round_misses = 0

    # ------------------------------------------------------------ interface
    def _planning_capacity(self) -> int:
        """GPUs planning may promise.

        The failure reserve is insurance: in a healthy cluster planning
        stops ``failure_reserve_gpus`` short of the total, so an outage of
        up to that many GPUs leaves every promise intact; during an outage
        the reserve is *spent* (planning uses whatever is actually usable,
        not less).
        """
        insured = self.context.total_gpus - self.failure_reserve_gpus
        return min(self.context.usable_gpus, insured)

    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Algorithm 1 plus the operator gate (Section 4.4).

        A job is admitted when (i) every deadline stays feasible after the
        progressive fill and (ii) the operator policy, if any, approves —
        the paper's "extra policy or charge ... before line 9".
        """
        if not self.admission_enabled or job.spec.best_effort:
            return self._operator_gate(job, now)
        if self._planning_capacity() < 1:
            return False  # total outage: nothing can be guaranteed
        mark = probe.tick()
        grid = self._grid(now, active + [job])
        controller = self._controller(self._planning_capacity())
        candidate = self._info(job, grid)
        admitted = [self._info(j, grid) for j in active if not j.spec.best_effort]
        mark = probe.lap("views", mark)
        result = controller.try_admit(candidate, admitted, grid)
        probe.lap("alg1", mark)
        if not result.admitted:
            return False
        return self._operator_gate(job, now)

    def _operator_gate(self, job: Job, now: float) -> bool:
        if self.operator_policy is None:
            return True
        if not self.operator_policy.approve(job, now):
            return False
        self.operator_policy.on_admitted(job, now)
        return True

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Algorithms 1 + 2: minimum shares, then marginal-return leftovers.

        The round fingerprint short-circuits the whole solve: when the
        planning inputs (job views, grid, capacity) are bit-identical to
        the previous round, the remembered raw decision vector is replayed
        and only the stability hysteresis — which reads current placement
        sizes, engine state outside the fingerprint — runs again.
        """
        if not active:
            return {}
        capacity = self._planning_capacity()
        if capacity < 1:
            return {job.job_id: 0 for job in active}
        mark = probe.tick()
        grid = self._grid(now, active)
        controller = self._controller(capacity)
        infos = [self._info(job, grid) for job in active]
        mark = probe.lap("views", mark)
        key = None
        if cache_enabled():
            key = self._round_key(infos, grid, capacity)
            entry = self._round_cache
            if key is not None and entry is not None and entry.key == key:
                self.round_hits += 1
                decisions = dict(entry.decisions)
                if self.stability_threshold > 0:
                    decisions = self._stabilize(
                        decisions, infos, active, entry.minima
                    )
                probe.lap("alg2", mark)
                return decisions
            if key is not None:
                self.round_misses += 1
        result = controller.plan_shares(infos, grid, stop_on_failure=False)
        mark = probe.lap("alg1", mark)
        decisions = allocate_leftover(
            infos,
            result.ledger,
            grid.slot_seconds,
            warm_hints=controller.warm_hints if cache_enabled() else None,
        )
        minima = self._share_minima(infos)
        if key is not None:
            self._round_cache = _RoundEntry(
                key=key, decisions=dict(decisions), minima=minima
            )
        if self.stability_threshold > 0:
            decisions = self._stabilize(decisions, infos, active, minima)
        probe.lap("alg2", mark)
        return decisions

    @staticmethod
    def _share_minima(infos: list[PlanningJob]) -> dict[str, int]:
        """Slot-0 minimum shares of the non-degraded jobs (zeros omitted)."""
        minima: dict[str, int] = {}
        for info in infos:
            if info.min_share_plan is not None and not info.degraded:
                minimum = int(info.min_share_plan[0])
                if minimum:
                    minima[info.job_id] = minimum
        return minima

    def _stabilize(
        self,
        decisions: dict[str, int],
        infos: list[PlanningJob],
        active: list[Job],
        minima: dict[str, int],
    ) -> dict[str, int]:
        """Keep current allocations when the proposed change barely helps.

        A job may stay at its current size when (i) that size still covers
        its minimum satisfactory share in the next slot, (ii) the proposed
        size changes its throughput by less than ``stability_threshold``,
        and (iii) cluster capacity still holds.  This suppresses the
        checkpoint/restore churn of re-solving Algorithm 2 at every event.
        ``minima`` carries Algorithm 1's slot-0 minimum shares so a
        round-cache replay can run hysteresis without re-solving.
        """
        by_id = {info.job_id: info for info in infos}
        total = sum(decisions.values())
        capacity = self._planning_capacity()
        for job in active:
            target = decisions.get(job.job_id, 0)
            current = job.n_gpus
            if current == target or current == 0:
                continue
            info = by_id[job.job_id]
            if current < minima.get(job.job_id, 0):
                continue  # must move: the deadline depends on it
            thr_current = float(info.throughput_table[current])
            thr_target = float(info.throughput_table[target])
            if thr_current <= 0:
                continue
            if abs(thr_target - thr_current) / thr_current >= self.stability_threshold:
                continue
            delta = current - target
            if total + delta <= capacity:
                decisions[job.job_id] = current
                total += delta
        return decisions

    # -------------------------------------------------------------- helpers
    #: Bound on per-capacity admission controllers; LRU-evicted beyond this.
    CONTROLLER_CACHE_LIMIT = 8

    def _controller(self, capacity: int) -> AdmissionController:
        controller = self._controllers.get(capacity)
        if controller is None:
            controller = AdmissionController(capacity)
            self._controllers[capacity] = controller
            while len(self._controllers) > self.CONTROLLER_CACHE_LIMIT:
                self._controllers.popitem(last=False)
        else:
            self._controllers.move_to_end(capacity)
        return controller

    def _round_key(
        self, infos: list[PlanningJob], grid: SlotGrid, capacity: int
    ) -> tuple | None:
        """Fingerprint of one planning round, or ``None`` when uncacheable.

        Covers everything the raw Algorithm 1+2 decision vector is a
        function of: the grid (origin, slot width, horizon), the planning
        capacity, and every active job's planning view — id, remaining
        work, padded deadline, best-effort flag, and the planning-table
        token, which is the freshness surrogate for the scaling curve (an
        online-profiling correction bumps the curve revision, which forces
        a table rebuild, which mints a new token).  Hand-built views
        (token ``-1``) make the round uncacheable, mirroring the fill
        fingerprint's discipline.
        """
        jobs = []
        for info in infos:
            if info.tables_token < 0:
                return None
            jobs.append(
                (
                    info.job_id,
                    info.remaining_iterations,
                    info.deadline,
                    info.best_effort,
                    info.tables_token,
                )
            )
        return (
            grid.origin,
            grid.slot_seconds,
            grid.horizon,
            capacity,
            tuple(sorted(jobs)),
        )

    def _grid(self, now: float, jobs: list[Job]) -> SlotGrid:
        """Planning grid covering every finite deadline from ``now``.

        When deadlines stretch past ``max_horizon`` slots the slot width is
        widened for this round instead of failing (coarser planning, same
        guarantees).
        """
        slot = self.context.slot_seconds
        deadlines = [j.spec.effective_deadline for j in jobs]
        finite = [d for d in deadlines if not math.isinf(d)]
        if finite:
            span = max(finite) - now
            if span > slot * self.max_horizon:
                slot = span / self.max_horizon
        return SlotGrid.for_jobs(
            now, deadlines, slot, max_horizon=self.max_horizon
        )

    def _planning_curve(self, job: Job):
        if self.planning_throughput is not None:
            return self.planning_throughput.curve(
                job.spec.model_name, job.spec.global_batch_size
            )
        return self.context.curve_for(job)

    #: Bound on memoized planning views; LRU-evicted beyond this.
    INFO_CACHE_LIMIT = 512

    def _info(self, job: Job, grid: SlotGrid) -> PlanningJob:
        curve = self._planning_curve(job)
        if not cache_enabled():
            return planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
        spec = job.spec
        # The grid's *horizon* is deliberately absent: a view's weights run
        # up to its own (padded) deadline, and every grid that includes the
        # job covers that deadline, so all weight-window consumers see
        # identical values on any same-origin/same-width grid.  This lets
        # the admission pass and the same-event allocation pass share one
        # view build even when the candidate's deadline stretched the
        # admission grid's horizon.
        key = (
            job.job_id,
            job.remaining_iterations,
            spec.effective_deadline,
            spec.best_effort,
            spec.model_name,
            spec.global_batch_size,
            curve_revision(curve),
            grid.origin,
            grid.slot_seconds,
            self.context.total_gpus,
        )
        info = self._info_cache.get(key)
        if info is None:
            info = planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
            self._info_cache[key] = info
            while len(self._info_cache) > self.INFO_CACHE_LIMIT:
                self._info_cache.popitem(last=False)
        else:
            self._info_cache.move_to_end(key)
        return info
