"""The ElasticFlow scheduler policy (paper Sections 3 and 4).

On every scheduling event the policy rebuilds a slot grid anchored at the
current time, recomputes the minimum satisfactory share of every admitted
SLO job (Algorithm 1), and distributes leftover GPUs by marginal return
(Algorithm 2).  Arriving SLO jobs are admitted only when the combined
progressive fill stays feasible; best-effort jobs bypass admission and are
served from leftovers (Section 4.4).
"""

from __future__ import annotations

import math
from collections import OrderedDict

from repro.core.admission import AdmissionController, PlanningJob, planning_job
from repro.core.allocation import allocate_leftover
from repro.core.job import Job
from repro.core.operator import OperatorPolicy
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.perf.coherence import keyed
from repro.perf.tables import cache_enabled, curve_revision
from repro.sim.interface import SchedulerPolicy

__all__ = ["ElasticFlowPolicy"]


@keyed(_info_cache="curve_revision")
class ElasticFlowPolicy(SchedulerPolicy):
    """Deadline-driven serverless scheduling with elastic scaling.

    Args:
        safety_margin: Fraction by which planned work is inflated so that
            scaling overheads cannot silently break admitted deadlines.
            Zero reproduces the paper's algorithms exactly.
        deadline_padding_s: Per-job time allowance subtracted from deadlines
            during planning — protection shaped like the per-event
            checkpoint/restore stalls (work inflation alone under-protects
            short jobs that scale often).
        max_horizon: Upper bound on planning slots; when deadlines reach
            further, the slot width is stretched for that planning round.
        admission_enabled: Turning admission off yields the Fig 9 ablation
            variant "EDF + Elastic Scaling" via :mod:`repro.baselines`.
        stability_threshold: Overhead-aware hysteresis — a running job keeps
            its current allocation when the proposed change would move its
            throughput by less than this fraction (and its minimum share
            stays covered).  Zero disables it, reproducing the paper's
            algorithms exactly; small positive values trade a little
            Algorithm 2 optimality for far fewer checkpoint/restore stalls.
        planning_throughput: Optional alternative throughput model used for
            *planning only* (execution still follows the cluster's real
            curves).  Supplying a pessimistic model reproduces the naive
            always-worst-placement approach Section 4.3 argues against.
        failure_reserve_gpus: GPUs withheld from planning so that a node
            failure does not instantly break admitted guarantees — the
            Section 4.4 "node failures" extension.
        operator_policy: Extra operator-side gate (quota/pricing) applied
            after feasibility, "before line 9 of Algorithm 1" as the paper
            puts it (Section 4.4, malicious users).
    """

    name = "elasticflow"

    def __init__(
        self,
        *,
        safety_margin: float = 0.0,
        deadline_padding_s: float = 0.0,
        max_horizon: int = 2048,
        admission_enabled: bool = True,
        stability_threshold: float = 0.0,
        planning_throughput=None,
        failure_reserve_gpus: int = 0,
        operator_policy: OperatorPolicy | None = None,
    ) -> None:
        super().__init__()
        if safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        if deadline_padding_s < 0:
            raise ConfigurationError(
                f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
            )
        if max_horizon < 1:
            raise ConfigurationError(f"max_horizon must be >= 1, got {max_horizon}")
        if stability_threshold < 0:
            raise ConfigurationError(
                f"stability_threshold must be >= 0, got {stability_threshold}"
            )
        self.safety_margin = safety_margin
        self.deadline_padding_s = deadline_padding_s
        self.max_horizon = max_horizon
        self.admission_enabled = admission_enabled
        if failure_reserve_gpus < 0:
            raise ConfigurationError(
                f"failure_reserve_gpus must be >= 0, got {failure_reserve_gpus}"
            )
        self.stability_threshold = stability_threshold
        self.planning_throughput = planning_throughput
        self.failure_reserve_gpus = failure_reserve_gpus
        self.operator_policy = operator_policy
        # One controller per planning capacity (capacity changes only on
        # node failure/repair), so its memoized fills survive across
        # scheduling events — see AdmissionController's caching contract.
        self._controllers: dict[int, AdmissionController] = {}
        # Planning views built during one event are rebuilt identically by
        # the admission pass and the allocation pass (same grid, same
        # remaining work), so they are memoized under the global cache
        # switch.  Keys carry the curve revision: an online-profiling
        # correction invalidates every dependent view.
        self._info_cache: OrderedDict[tuple, PlanningJob] = OrderedDict()

    # ------------------------------------------------------------ interface
    def _planning_capacity(self) -> int:
        """GPUs planning may promise.

        The failure reserve is insurance: in a healthy cluster planning
        stops ``failure_reserve_gpus`` short of the total, so an outage of
        up to that many GPUs leaves every promise intact; during an outage
        the reserve is *spent* (planning uses whatever is actually usable,
        not less).
        """
        insured = self.context.total_gpus - self.failure_reserve_gpus
        return min(self.context.usable_gpus, insured)

    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Algorithm 1 plus the operator gate (Section 4.4).

        A job is admitted when (i) every deadline stays feasible after the
        progressive fill and (ii) the operator policy, if any, approves —
        the paper's "extra policy or charge ... before line 9".
        """
        if not self.admission_enabled or job.spec.best_effort:
            return self._operator_gate(job, now)
        if self._planning_capacity() < 1:
            return False  # total outage: nothing can be guaranteed
        grid = self._grid(now, active + [job])
        controller = self._controller(self._planning_capacity())
        candidate = self._info(job, grid)
        admitted = [self._info(j, grid) for j in active if not j.spec.best_effort]
        result = controller.try_admit(candidate, admitted, grid)
        if not result.admitted:
            return False
        return self._operator_gate(job, now)

    def _operator_gate(self, job: Job, now: float) -> bool:
        if self.operator_policy is None:
            return True
        if not self.operator_policy.approve(job, now):
            return False
        self.operator_policy.on_admitted(job, now)
        return True

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Algorithms 1 + 2: minimum shares, then marginal-return leftovers."""
        if not active:
            return {}
        if self._planning_capacity() < 1:
            return {job.job_id: 0 for job in active}
        grid = self._grid(now, active)
        controller = self._controller(self._planning_capacity())
        infos = [self._info(job, grid) for job in active]
        result = controller.plan_shares(infos, grid, stop_on_failure=False)
        decisions = allocate_leftover(infos, result.ledger, grid.slot_seconds)
        if self.stability_threshold > 0:
            decisions = self._stabilize(decisions, infos, active)
        return decisions

    def _stabilize(
        self,
        decisions: dict[str, int],
        infos: list[PlanningJob],
        active: list[Job],
    ) -> dict[str, int]:
        """Keep current allocations when the proposed change barely helps.

        A job may stay at its current size when (i) that size still covers
        its minimum satisfactory share in the next slot, (ii) the proposed
        size changes its throughput by less than ``stability_threshold``,
        and (iii) cluster capacity still holds.  This suppresses the
        checkpoint/restore churn of re-solving Algorithm 2 at every event.
        """
        by_id = {info.job_id: info for info in infos}
        total = sum(decisions.values())
        capacity = self._planning_capacity()
        for job in active:
            target = decisions.get(job.job_id, 0)
            current = job.n_gpus
            if current == target or current == 0:
                continue
            info = by_id[job.job_id]
            minimum = 0
            if info.min_share_plan is not None and not info.degraded:
                minimum = int(info.min_share_plan[0])
            if current < minimum:
                continue  # must move: the deadline depends on it
            thr_current = float(info.throughput_table[current])
            thr_target = float(info.throughput_table[target])
            if thr_current <= 0:
                continue
            if abs(thr_target - thr_current) / thr_current >= self.stability_threshold:
                continue
            delta = current - target
            if total + delta <= capacity:
                decisions[job.job_id] = current
                total += delta
        return decisions

    # -------------------------------------------------------------- helpers
    def _controller(self, capacity: int) -> AdmissionController:
        controller = self._controllers.get(capacity)
        if controller is None:
            controller = AdmissionController(capacity)
            self._controllers[capacity] = controller
        return controller

    def _grid(self, now: float, jobs: list[Job]) -> SlotGrid:
        """Planning grid covering every finite deadline from ``now``.

        When deadlines stretch past ``max_horizon`` slots the slot width is
        widened for this round instead of failing (coarser planning, same
        guarantees).
        """
        slot = self.context.slot_seconds
        deadlines = [j.spec.effective_deadline for j in jobs]
        finite = [d for d in deadlines if not math.isinf(d)]
        if finite:
            span = max(finite) - now
            if span > slot * self.max_horizon:
                slot = span / self.max_horizon
        return SlotGrid.for_jobs(
            now, deadlines, slot, max_horizon=self.max_horizon
        )

    def _planning_curve(self, job: Job):
        if self.planning_throughput is not None:
            return self.planning_throughput.curve(
                job.spec.model_name, job.spec.global_batch_size
            )
        return self.context.curve_for(job)

    #: Bound on memoized planning views; LRU-evicted beyond this.
    INFO_CACHE_LIMIT = 512

    def _info(self, job: Job, grid: SlotGrid) -> PlanningJob:
        curve = self._planning_curve(job)
        if not cache_enabled():
            return planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
        spec = job.spec
        key = (
            job.job_id,
            job.remaining_iterations,
            spec.effective_deadline,
            spec.best_effort,
            spec.model_name,
            spec.global_batch_size,
            curve_revision(curve),
            grid.origin,
            grid.slot_seconds,
            grid.horizon,
            self.context.total_gpus,
        )
        info = self._info_cache.get(key)
        if info is None:
            info = planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
            self._info_cache[key] = info
            while len(self._info_cache) > self.INFO_CACHE_LIMIT:
                self._info_cache.popitem(last=False)
        else:
            self._info_cache.move_to_end(key)
        return info
