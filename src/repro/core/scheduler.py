"""The ElasticFlow scheduler policy (paper Sections 3 and 4).

On every scheduling event the policy rebuilds a slot grid anchored at the
current time, recomputes the minimum satisfactory share of every admitted
SLO job (Algorithm 1), and distributes leftover GPUs by marginal return
(Algorithm 2).  Arriving SLO jobs are admitted only when the combined
progressive fill stays feasible; best-effort jobs bypass admission and are
served from leftovers (Section 4.4).
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.core.admission import AdmissionController, PlanningJob, planning_job
from repro.core.allocation import allocate_leftover
from repro.core.job import Job
from repro.core.operator import OperatorPolicy
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.perf import probe
from repro.perf.coherence import keyed
from repro.perf.tables import cache_enabled, curve_revision, planning_tables_for
from repro.sim.interface import SchedulerPolicy

__all__ = ["ElasticFlowPolicy"]


@keyed(_info_cache="curve_revision")
class ElasticFlowPolicy(SchedulerPolicy):
    """Deadline-driven serverless scheduling with elastic scaling.

    Args:
        safety_margin: Fraction by which planned work is inflated so that
            scaling overheads cannot silently break admitted deadlines.
            Zero reproduces the paper's algorithms exactly.
        deadline_padding_s: Per-job time allowance subtracted from deadlines
            during planning — protection shaped like the per-event
            checkpoint/restore stalls (work inflation alone under-protects
            short jobs that scale often).
        max_horizon: Upper bound on planning slots; when deadlines reach
            further, the slot width is stretched for that planning round.
        admission_enabled: Turning admission off yields the Fig 9 ablation
            variant "EDF + Elastic Scaling" via :mod:`repro.baselines`.
        stability_threshold: Overhead-aware hysteresis — a running job keeps
            its current allocation when the proposed change would move its
            throughput by less than this fraction (and its minimum share
            stays covered).  Zero disables it, reproducing the paper's
            algorithms exactly; small positive values trade a little
            Algorithm 2 optimality for far fewer checkpoint/restore stalls.
        planning_throughput: Optional alternative throughput model used for
            *planning only* (execution still follows the cluster's real
            curves).  Supplying a pessimistic model reproduces the naive
            always-worst-placement approach Section 4.3 argues against.
        failure_reserve_gpus: GPUs withheld from planning so that a node
            failure does not instantly break admitted guarantees — the
            Section 4.4 "node failures" extension.
        operator_policy: Extra operator-side gate (quota/pricing) applied
            after feasibility, "before line 9 of Algorithm 1" as the paper
            puts it (Section 4.4, malicious users).
    """

    name = "elasticflow"

    def __init__(
        self,
        *,
        safety_margin: float = 0.0,
        deadline_padding_s: float = 0.0,
        max_horizon: int = 2048,
        admission_enabled: bool = True,
        stability_threshold: float = 0.0,
        planning_throughput=None,
        failure_reserve_gpus: int = 0,
        operator_policy: OperatorPolicy | None = None,
    ) -> None:
        super().__init__()
        if safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        if deadline_padding_s < 0:
            raise ConfigurationError(
                f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
            )
        if max_horizon < 1:
            raise ConfigurationError(f"max_horizon must be >= 1, got {max_horizon}")
        if stability_threshold < 0:
            raise ConfigurationError(
                f"stability_threshold must be >= 0, got {stability_threshold}"
            )
        self.safety_margin = safety_margin
        self.deadline_padding_s = deadline_padding_s
        self.max_horizon = max_horizon
        self.admission_enabled = admission_enabled
        if failure_reserve_gpus < 0:
            raise ConfigurationError(
                f"failure_reserve_gpus must be >= 0, got {failure_reserve_gpus}"
            )
        self.stability_threshold = stability_threshold
        self.planning_throughput = planning_throughput
        self.failure_reserve_gpus = failure_reserve_gpus
        self.operator_policy = operator_policy
        # One controller per planning capacity (capacity changes only on
        # node failure/repair), so its memoized fills survive across
        # scheduling events — see AdmissionController's caching contract.
        # LRU-bounded: repeated failure/repair cycles would otherwise
        # accumulate controllers (each pinning its fill memo) forever.
        self._controllers: OrderedDict[int, AdmissionController] = OrderedDict()
        # Planning views built during one event are rebuilt identically by
        # the admission pass and the allocation pass (same grid, same
        # remaining work), so they are memoized under the global cache
        # switch.  Keys carry the curve revision: an online-profiling
        # correction invalidates every dependent view.
        self._info_cache: OrderedDict[tuple, PlanningJob] = OrderedDict()

    # ------------------------------------------------------------ interface
    def _planning_capacity(self) -> int:
        """GPUs planning may promise.

        The failure reserve is insurance: in a healthy cluster planning
        stops ``failure_reserve_gpus`` short of the total, so an outage of
        up to that many GPUs leaves every promise intact; during an outage
        the reserve is *spent* (planning uses whatever is actually usable,
        not less).
        """
        insured = self.context.total_gpus - self.failure_reserve_gpus
        return min(self.context.usable_gpus, insured)

    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Algorithm 1 plus the operator gate (Section 4.4).

        A job is admitted when (i) every deadline stays feasible after the
        progressive fill and (ii) the operator policy, if any, approves —
        the paper's "extra policy or charge ... before line 9".
        """
        if not self.admission_enabled or job.spec.best_effort:
            return self._operator_gate(job, now)
        if self._planning_capacity() < 1:
            return False  # total outage: nothing can be guaranteed
        mark = probe.tick()
        grid = self._grid(now, active + [job])
        controller = self._controller(self._planning_capacity())
        slo_active = [j for j in active if not j.spec.best_effort]
        views = self._infos([job] + slo_active, grid)
        candidate, admitted = views[0], views[1:]
        mark = probe.lap("views", mark)
        result = controller.try_admit(candidate, admitted, grid)
        probe.lap("alg1", mark)
        if not result.admitted:
            return False
        return self._operator_gate(job, now)

    def _operator_gate(self, job: Job, now: float) -> bool:
        if self.operator_policy is None:
            return True
        if not self.operator_policy.approve(job, now):
            return False
        self.operator_policy.on_admitted(job, now)
        return True

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Algorithms 1 + 2: minimum shares, then marginal-return leftovers.

        No event-level result cache lives here (grids re-anchor per event,
        so cross-event hits are impossible — see ``docs/performance.md``);
        repeated solves *within* one event are replayed by the admission
        controller's fill memo.
        """
        if not active:
            return {}
        capacity = self._planning_capacity()
        if capacity < 1:
            return {job.job_id: 0 for job in active}
        mark = probe.tick()
        grid = self._grid(now, active)
        controller = self._controller(capacity)
        infos = self._infos(active, grid)
        if cache_enabled() and len(controller.warm_hints) > 2 * len(active) + 64:
            controller.prune_warm_hints({job.job_id for job in active})
        mark = probe.lap("views", mark)
        result = controller.plan_shares(infos, grid, stop_on_failure=False)
        mark = probe.lap("alg1", mark)
        decisions = allocate_leftover(
            infos,
            result.ledger,
            grid.slot_seconds,
            warm_hints=controller.warm_hints if cache_enabled() else None,
        )
        if self.stability_threshold > 0:
            decisions = self._stabilize(
                decisions, infos, active, self._share_minima(infos)
            )
        probe.lap("alg2", mark)
        return decisions

    @staticmethod
    def _share_minima(infos: list[PlanningJob]) -> dict[str, int]:
        """Slot-0 minimum shares of the non-degraded jobs (zeros omitted)."""
        minima: dict[str, int] = {}
        for info in infos:
            if info.min_share_plan is not None and not info.degraded:
                minimum = int(info.min_share_plan[0])
                if minimum:
                    minima[info.job_id] = minimum
        return minima

    def _stabilize(
        self,
        decisions: dict[str, int],
        infos: list[PlanningJob],
        active: list[Job],
        minima: dict[str, int],
    ) -> dict[str, int]:
        """Keep current allocations when the proposed change barely helps.

        A job may stay at its current size when (i) that size still covers
        its minimum satisfactory share in the next slot, (ii) the proposed
        size changes its throughput by less than ``stability_threshold``,
        and (iii) cluster capacity still holds.  This suppresses the
        checkpoint/restore churn of re-solving Algorithm 2 at every event.
        ``minima`` carries Algorithm 1's slot-0 minimum shares so
        hysteresis never has to re-solve to learn them.
        """
        by_id = {info.job_id: info for info in infos}
        total = sum(decisions.values())
        capacity = self._planning_capacity()
        for job in active:
            target = decisions.get(job.job_id, 0)
            current = job.n_gpus
            if current == target or current == 0:
                continue
            info = by_id[job.job_id]
            if current < minima.get(job.job_id, 0):
                continue  # must move: the deadline depends on it
            thr_current = float(info.throughput_table[current])
            thr_target = float(info.throughput_table[target])
            if thr_current <= 0:
                continue
            if abs(thr_target - thr_current) / thr_current >= self.stability_threshold:
                continue
            delta = current - target
            if total + delta <= capacity:
                decisions[job.job_id] = current
                total += delta
        return decisions

    # -------------------------------------------------------------- helpers
    #: Bound on per-capacity admission controllers; LRU-evicted beyond this.
    CONTROLLER_CACHE_LIMIT = 8

    def _controller(self, capacity: int) -> AdmissionController:
        controller = self._controllers.get(capacity)
        if controller is None:
            controller = AdmissionController(capacity)
            self._controllers[capacity] = controller
            while len(self._controllers) > self.CONTROLLER_CACHE_LIMIT:
                self._controllers.popitem(last=False)
        else:
            self._controllers.move_to_end(capacity)
        return controller

    def _grid(self, now: float, jobs: list[Job]) -> SlotGrid:
        """Planning grid covering every finite deadline from ``now``.

        When deadlines stretch past ``max_horizon`` slots the slot width is
        widened for this round instead of failing (coarser planning, same
        guarantees).
        """
        slot = self.context.slot_seconds
        deadlines = [j.spec.effective_deadline for j in jobs]
        finite = [d for d in deadlines if not math.isinf(d)]
        if finite:
            span = max(finite) - now
            if span > slot * self.max_horizon:
                slot = span / self.max_horizon
        return SlotGrid.for_jobs(
            now, deadlines, slot, max_horizon=self.max_horizon
        )

    def _planning_curve(self, job: Job):
        if self.planning_throughput is not None:
            return self.planning_throughput.curve(
                job.spec.model_name, job.spec.global_batch_size
            )
        return self.context.curve_for(job)

    #: Bound on memoized planning views; LRU-evicted beyond this.
    INFO_CACHE_LIMIT = 512

    def _info_key(self, job: Job, revision: int, grid: SlotGrid) -> tuple:
        """Memo key of one planning view (``revision`` is the job curve's
        ``curve_revision`` — computed by the caller at the write site).

        The grid's *horizon* is deliberately absent: a view's weights run
        up to its own (padded) deadline, and every grid that includes the
        job covers that deadline, so all weight-window consumers see
        identical values on any same-origin/same-width grid.  This lets
        the admission pass and the same-event allocation pass share one
        view build even when the candidate's deadline stretched the
        admission grid's horizon.
        """
        spec = job.spec
        return (
            job.job_id,
            job.remaining_iterations,
            spec.effective_deadline,
            spec.best_effort,
            spec.model_name,
            spec.global_batch_size,
            revision,
            grid.origin,
            grid.slot_seconds,
            self.context.total_gpus,
        )

    def _infos(self, jobs: list[Job], grid: SlotGrid) -> list[PlanningJob]:
        """Planning views for every job, missing ones built in one batch.

        Cache hits are served exactly like :meth:`_info`; the misses share
        a single :meth:`SlotGrid.weights_matrix` build (one vectorized clip
        over a deadlines-by-slots matrix) instead of one ``weights_until``
        call per job, and their usable windows come from one
        ``searchsorted`` (:meth:`SlotGrid.window_ends`) pre-seeded into the
        per-view window memo.  Every row is bit-identical to the
        single-job path, so views from either route are interchangeable —
        including under the fill fingerprint.
        """
        if not cache_enabled():
            return [self._info(job, grid) for job in jobs]
        views: list[PlanningJob | None] = [None] * len(jobs)
        misses: list[tuple[int, Job, object, tuple]] = []
        for idx, job in enumerate(jobs):
            curve = self._planning_curve(job)
            key = self._info_key(job, curve_revision(curve), grid)
            info = self._info_cache.get(key)
            if info is None:
                misses.append((idx, job, curve, key))
            else:
                self._info_cache.move_to_end(key)
                views[idx] = info
        if misses:
            # Identical scalar padding math to planning_job, batched rows.
            deadlines = np.empty(len(misses), dtype=np.float64)
            for row, (_, job, _, _) in enumerate(misses):
                deadline = job.spec.effective_deadline
                if not math.isinf(deadline) and self.deadline_padding_s:
                    padding = min(
                        self.deadline_padding_s,
                        0.1 * max(0.0, deadline - grid.origin),
                    )
                    deadline = deadline - padding
                deadlines[row] = deadline
            weight_rows = grid.weights_matrix(deadlines)
            ends = grid.window_ends(deadlines)
            for row, (idx, job, curve, key) in enumerate(misses):
                tables = planning_tables_for(curve, self.context.total_gpus)
                info = PlanningJob(
                    job_id=job.job_id,
                    remaining_iterations=job.remaining_iterations
                    * (1.0 + self.safety_margin),
                    deadline=float(deadlines[row]),
                    weights=weight_rows[row],
                    throughput_table=tables.throughput_table,
                    size_table=tables.size_table,
                    sizes=tables.sizes,
                    best_effort=job.spec.best_effort,
                    tables_token=tables.token,
                )
                w0 = int(ends[row])
                # Window from slot 1 drops at most the slot-0 weight.
                info.__dict__["_windows"] = {0: w0, 1: max(w0 - 1, 0)}
                self._info_cache[key] = info
                views[idx] = info
            while len(self._info_cache) > self.INFO_CACHE_LIMIT:
                self._info_cache.popitem(last=False)
        return views

    def _info(self, job: Job, grid: SlotGrid) -> PlanningJob:
        curve = self._planning_curve(job)
        if not cache_enabled():
            return planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
        key = self._info_key(job, curve_revision(curve), grid)
        info = self._info_cache.get(key)
        if info is None:
            info = planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
            self._info_cache[key] = info
            while len(self._info_cache) > self.INFO_CACHE_LIMIT:
                self._info_cache.popitem(last=False)
        else:
            self._info_cache.move_to_end(key)
        return info
