"""The ElasticFlow scheduler policy (paper Sections 3 and 4).

On every scheduling event the policy rebuilds a slot grid anchored at the
current time, recomputes the minimum satisfactory share of every admitted
SLO job (Algorithm 1), and distributes leftover GPUs by marginal return
(Algorithm 2).  Arriving SLO jobs are admitted only when the combined
progressive fill stays feasible; best-effort jobs bypass admission and are
served from leftovers (Section 4.4).
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np

from repro.core.admission import AdmissionController, PlanningJob, planning_job
from repro.core.allocation import UpgradeSeedIndex, allocate_leftover
from repro.core.job import Job
from repro.core.operator import OperatorPolicy
from repro.core.slots import SlotGrid
from repro.errors import ConfigurationError
from repro.perf import probe
from repro.perf.coherence import coherent, invalidates, keyed, mutates
from repro.perf.tables import (
    cache_enabled,
    curve_revision,
    frame_enabled,
    planning_tables_for,
    seed_index_enabled,
    tables_global_revision,
)
from repro.sim.interface import SchedulerPolicy

__all__ = ["ElasticFlowPolicy"]


@coherent(_entries="planning_frame")
class _PlanningFrame:
    """Persistent planning views for the whole active set.

    The previous generation rebuilt every ``PlanningJob`` through a
    per-event LRU: grids re-anchor at each event's ``now``, so every key
    missed across events and every view paid dataclass construction,
    per-job padding math, and cache churn — O(active jobs) Python work on
    every scheduling event.  The frame instead keeps one view per live
    job and *refreshes* the event-dependent inputs in place with stacked
    array math shared across the set: one vectorized padding pass over
    the raw deadlines, one :meth:`SlotGrid.weights_matrix` build, one
    :meth:`SlotGrid.window_ends` searchsorted — then scalar write-backs
    into the persistent views.  Table-identity state (tables, sizes,
    token) stays frozen on the views; a view is rebuilt, never patched,
    when its curve's tables were invalidated, detected with one
    :func:`repro.perf.tables.tables_global_revision` compare per refresh
    (token compares per job run only after the counter moved, so the
    steady state never touches the table store at all).

    Refreshed values are bit-identical to the per-job path: the padding
    expression performs the same IEEE ops elementwise (``inf`` deadlines
    pass through unchanged because ``min(padding, inf) == padding``),
    the weight rows and window ends equal ``weights_until``/per-view
    windows (the slot-grid property tests pin this), and write-backs go
    through ``.tolist()`` so views keep carrying plain Python floats —
    the fill fingerprint hashes the identical values either way.
    ``repro.perf.tables.planning_frame_disabled`` is the escape hatch
    back to the per-event LRU path.

    ``min_share_plan`` and ``degraded`` are deliberately *not* reset on
    refresh: every fill path (cold, batched, delta, replay) overwrites
    both for every participating view before anything reads them, which
    is exactly the contract the LRU path relied on for cache hits.
    """

    def __init__(self, policy: "ElasticFlowPolicy") -> None:
        self._policy = policy
        self._entries: dict[str, PlanningJob] = {}
        self._capacity = -1
        self._tables_rev = -1

    @mutates(
        "_entries",
        "PlanningJob.remaining_iterations",
        "PlanningJob.deadline",
        "PlanningJob.weights",
    )
    @invalidates("planning_frame")
    def refresh(self, jobs: list[Job], grid: SlotGrid) -> list[PlanningJob]:
        """Bring the frame to this event's grid; returns views in order.

        This method is the ``planning_frame`` invalidation point: the
        mutated inputs and every derived per-view memo (the window seed)
        are rewritten together, so callers observe only fully refreshed
        views.
        """
        policy = self._policy
        entries = self._entries
        capacity = policy.context.total_gpus
        if capacity != self._capacity:
            entries.clear()
            self._capacity = capacity
        revision = tables_global_revision()
        validate = revision != self._tables_rev
        self._tables_rev = revision

        n = len(jobs)
        raw = np.empty(n, dtype=np.float64)
        remaining = np.empty(n, dtype=np.float64)
        for i, job in enumerate(jobs):
            raw[i] = job.spec.effective_deadline
            remaining[i] = job.remaining_iterations
        if policy.deadline_padding_s:
            # Elementwise-identical to the scalar padding: for an infinite
            # deadline the inner max is inf, the min collapses to the
            # configured padding, and inf minus a finite float stays inf.
            deadlines = raw - np.minimum(
                policy.deadline_padding_s,
                0.1 * np.maximum(0.0, raw - grid.origin),
            )
        else:
            deadlines = raw
        remaining *= 1.0 + policy.safety_margin
        weight_rows = grid.weights_matrix(deadlines)
        ends = grid.window_ends(deadlines)
        deadline_list = deadlines.tolist()
        remaining_list = remaining.tolist()

        builds = 0
        views: list[PlanningJob] = []
        for i, job in enumerate(jobs):
            view = entries.get(job.job_id)
            if view is None or validate:
                curve = policy._planning_curve(job)
                tables = planning_tables_for(curve, capacity)
                if view is None or view.tables_token != tables.token:
                    builds += 1
                    view = PlanningJob(
                        job_id=job.job_id,
                        remaining_iterations=remaining_list[i],
                        deadline=deadline_list[i],
                        weights=weight_rows[i],
                        throughput_table=tables.throughput_table,
                        size_table=tables.size_table,
                        sizes=tables.sizes,
                        best_effort=job.spec.best_effort,
                        tables_token=tables.token,
                    )
                    entries[job.job_id] = view
                    w0 = int(ends[i])
                    view.__dict__["_windows"] = {0: w0, 1: max(w0 - 1, 0)}
                    views.append(view)
                    continue
            view.remaining_iterations = remaining_list[i]
            view.deadline = deadline_list[i]
            view.weights = weight_rows[i]
            w0 = int(ends[i])
            # Window from slot 1 drops at most the slot-0 weight (the
            # same seed the LRU batch path planted at construction).
            view.__dict__["_windows"] = {0: w0, 1: max(w0 - 1, 0)}
            views.append(view)

        evictions = 0
        if len(entries) > 2 * n + 64:
            live = {job.job_id for job in jobs}
            stale = [job_id for job_id in entries if job_id not in live]
            for job_id in stale:
                del entries[job_id]
            evictions = len(stale)
        probe.add_counters(
            {
                "frame_refreshes": 1,
                "frame_rows": n,
                "frame_builds": builds,
                "frame_evictions": evictions,
            }
        )
        return views


@keyed(_info_cache="curve_revision")
class ElasticFlowPolicy(SchedulerPolicy):
    """Deadline-driven serverless scheduling with elastic scaling.

    Args:
        safety_margin: Fraction by which planned work is inflated so that
            scaling overheads cannot silently break admitted deadlines.
            Zero reproduces the paper's algorithms exactly.
        deadline_padding_s: Per-job time allowance subtracted from deadlines
            during planning — protection shaped like the per-event
            checkpoint/restore stalls (work inflation alone under-protects
            short jobs that scale often).
        max_horizon: Upper bound on planning slots; when deadlines reach
            further, the slot width is stretched for that planning round.
        admission_enabled: Turning admission off yields the Fig 9 ablation
            variant "EDF + Elastic Scaling" via :mod:`repro.baselines`.
        stability_threshold: Overhead-aware hysteresis — a running job keeps
            its current allocation when the proposed change would move its
            throughput by less than this fraction (and its minimum share
            stays covered).  Zero disables it, reproducing the paper's
            algorithms exactly; small positive values trade a little
            Algorithm 2 optimality for far fewer checkpoint/restore stalls.
        planning_throughput: Optional alternative throughput model used for
            *planning only* (execution still follows the cluster's real
            curves).  Supplying a pessimistic model reproduces the naive
            always-worst-placement approach Section 4.3 argues against.
        failure_reserve_gpus: GPUs withheld from planning so that a node
            failure does not instantly break admitted guarantees — the
            Section 4.4 "node failures" extension.
        operator_policy: Extra operator-side gate (quota/pricing) applied
            after feasibility, "before line 9 of Algorithm 1" as the paper
            puts it (Section 4.4, malicious users).
    """

    name = "elasticflow"

    def __init__(
        self,
        *,
        safety_margin: float = 0.0,
        deadline_padding_s: float = 0.0,
        max_horizon: int = 2048,
        admission_enabled: bool = True,
        stability_threshold: float = 0.0,
        planning_throughput=None,
        failure_reserve_gpus: int = 0,
        operator_policy: OperatorPolicy | None = None,
    ) -> None:
        super().__init__()
        if safety_margin < 0:
            raise ConfigurationError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        if deadline_padding_s < 0:
            raise ConfigurationError(
                f"deadline_padding_s must be >= 0, got {deadline_padding_s}"
            )
        if max_horizon < 1:
            raise ConfigurationError(f"max_horizon must be >= 1, got {max_horizon}")
        if stability_threshold < 0:
            raise ConfigurationError(
                f"stability_threshold must be >= 0, got {stability_threshold}"
            )
        self.safety_margin = safety_margin
        self.deadline_padding_s = deadline_padding_s
        self.max_horizon = max_horizon
        self.admission_enabled = admission_enabled
        if failure_reserve_gpus < 0:
            raise ConfigurationError(
                f"failure_reserve_gpus must be >= 0, got {failure_reserve_gpus}"
            )
        self.stability_threshold = stability_threshold
        self.planning_throughput = planning_throughput
        self.failure_reserve_gpus = failure_reserve_gpus
        self.operator_policy = operator_policy
        # One controller per planning capacity (capacity changes only on
        # node failure/repair), so its memoized fills survive across
        # scheduling events — see AdmissionController's caching contract.
        # LRU-bounded: repeated failure/repair cycles would otherwise
        # accumulate controllers (each pinning its fill memo) forever.
        self._controllers: OrderedDict[int, AdmissionController] = OrderedDict()
        # Planning views built during one event are rebuilt identically by
        # the admission pass and the allocation pass (same grid, same
        # remaining work), so they are memoized under the global cache
        # switch.  Keys carry the curve revision: an online-profiling
        # correction invalidates every dependent view.
        self._info_cache: OrderedDict[tuple, PlanningJob] = OrderedDict()
        # Persistent structure-of-arrays planning state; replaces the LRU
        # rebuild path of _infos while repro.perf.tables.frame_enabled
        # holds (see _PlanningFrame).
        self._frame = _PlanningFrame(self)
        # Persistent Algorithm 2 first-proposal verdicts, invalidated by
        # the delta fill's perturbed set (see UpgradeSeedIndex).
        self._seed_index = UpgradeSeedIndex()

    # ------------------------------------------------------------ interface
    def _planning_capacity(self) -> int:
        """GPUs planning may promise.

        The failure reserve is insurance: in a healthy cluster planning
        stops ``failure_reserve_gpus`` short of the total, so an outage of
        up to that many GPUs leaves every promise intact; during an outage
        the reserve is *spent* (planning uses whatever is actually usable,
        not less).
        """
        insured = self.context.total_gpus - self.failure_reserve_gpus
        return min(self.context.usable_gpus, insured)

    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Algorithm 1 plus the operator gate (Section 4.4).

        A job is admitted when (i) every deadline stays feasible after the
        progressive fill and (ii) the operator policy, if any, approves —
        the paper's "extra policy or charge ... before line 9".
        """
        if not self.admission_enabled or job.spec.best_effort:
            return self._operator_gate(job, now)
        if self._planning_capacity() < 1:
            return False  # total outage: nothing can be guaranteed
        mark = probe.tick()
        grid = self._grid(now, active + [job])
        controller = self._controller(self._planning_capacity())
        slo_active = [j for j in active if not j.spec.best_effort]
        views = self._infos([job] + slo_active, grid)
        candidate, admitted = views[0], views[1:]
        mark = probe.lap("views", mark)
        result = controller.try_admit(candidate, admitted, grid)
        probe.lap("alg1", mark)
        if not result.admitted:
            return False
        return self._operator_gate(job, now)

    def _operator_gate(self, job: Job, now: float) -> bool:
        if self.operator_policy is None:
            return True
        if not self.operator_policy.approve(job, now):
            return False
        self.operator_policy.on_admitted(job, now)
        return True

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Algorithms 1 + 2: minimum shares, then marginal-return leftovers.

        No event-level result cache lives here (grids re-anchor per event,
        so cross-event hits are impossible — see ``docs/performance.md``);
        repeated solves *within* one event are replayed by the admission
        controller's fill memo.
        """
        if not active:
            return {}
        capacity = self._planning_capacity()
        if capacity < 1:
            return {job.job_id: 0 for job in active}
        mark = probe.tick()
        grid = self._grid(now, active)
        controller = self._controller(capacity)
        infos = self._infos(active, grid)
        if cache_enabled() and len(controller.warm_hints) > 2 * len(active) + 64:
            controller.prune_warm_hints({job.job_id for job in active})
        mark = probe.lap("views", mark)
        result = controller.plan_shares(infos, grid, stop_on_failure=False)
        mark = probe.lap("alg1", mark)
        seed_index = None
        if cache_enabled() and seed_index_enabled():
            seed_index = self._seed_index
            if result.perturbed is not None:
                # Re-filled jobs may hold a different minimum share now;
                # unperturbed entries stay and self-validate at lookup.
                seed_index.invalidate(result.perturbed)
            seed_index.prune(
                {job.job_id for job in active}, bound=2 * len(active) + 64
            )
        decisions = allocate_leftover(
            infos,
            result.ledger,
            grid.slot_seconds,
            warm_hints=controller.warm_hints if cache_enabled() else None,
            seed_index=seed_index,
        )
        if self.stability_threshold > 0:
            decisions = self._stabilize(
                decisions, infos, active, self._share_minima(infos)
            )
        probe.lap("alg2", mark)
        return decisions

    @staticmethod
    def _share_minima(infos: list[PlanningJob]) -> dict[str, int]:
        """Slot-0 minimum shares of the non-degraded jobs (zeros omitted)."""
        minima: dict[str, int] = {}
        for info in infos:
            if info.min_share_plan is not None and not info.degraded:
                minimum = int(info.min_share_plan[0])
                if minimum:
                    minima[info.job_id] = minimum
        return minima

    def _stabilize(
        self,
        decisions: dict[str, int],
        infos: list[PlanningJob],
        active: list[Job],
        minima: dict[str, int],
    ) -> dict[str, int]:
        """Keep current allocations when the proposed change barely helps.

        A job may stay at its current size when (i) that size still covers
        its minimum satisfactory share in the next slot, (ii) the proposed
        size changes its throughput by less than ``stability_threshold``,
        and (iii) cluster capacity still holds.  This suppresses the
        checkpoint/restore churn of re-solving Algorithm 2 at every event.
        ``minima`` carries Algorithm 1's slot-0 minimum shares so
        hysteresis never has to re-solve to learn them.
        """
        by_id = {info.job_id: info for info in infos}
        total = sum(decisions.values())
        capacity = self._planning_capacity()
        for job in active:
            target = decisions.get(job.job_id, 0)
            current = job.n_gpus
            if current == target or current == 0:
                continue
            info = by_id[job.job_id]
            if current < minima.get(job.job_id, 0):
                continue  # must move: the deadline depends on it
            thr_current = float(info.throughput_table[current])
            thr_target = float(info.throughput_table[target])
            if thr_current <= 0:
                continue
            if abs(thr_target - thr_current) / thr_current >= self.stability_threshold:
                continue
            delta = current - target
            if total + delta <= capacity:
                decisions[job.job_id] = current
                total += delta
        return decisions

    # -------------------------------------------------------------- helpers
    #: Bound on per-capacity admission controllers; LRU-evicted beyond this.
    CONTROLLER_CACHE_LIMIT = 8

    def _controller(self, capacity: int) -> AdmissionController:
        controller = self._controllers.get(capacity)
        if controller is None:
            controller = AdmissionController(capacity)
            self._controllers[capacity] = controller
            while len(self._controllers) > self.CONTROLLER_CACHE_LIMIT:
                self._controllers.popitem(last=False)
        else:
            self._controllers.move_to_end(capacity)
        return controller

    def _grid(self, now: float, jobs: list[Job]) -> SlotGrid:
        """Planning grid covering every finite deadline from ``now``.

        When deadlines stretch past ``max_horizon`` slots the slot width is
        widened for this round instead of failing (coarser planning, same
        guarantees).
        """
        slot = self.context.slot_seconds
        deadlines = [j.spec.effective_deadline for j in jobs]
        finite = [d for d in deadlines if not math.isinf(d)]
        if finite:
            span = max(finite) - now
            if span > slot * self.max_horizon:
                slot = span / self.max_horizon
        return SlotGrid.for_jobs(
            now, deadlines, slot, max_horizon=self.max_horizon
        )

    def _planning_curve(self, job: Job):
        if self.planning_throughput is not None:
            return self.planning_throughput.curve(
                job.spec.model_name, job.spec.global_batch_size
            )
        return self.context.curve_for(job)

    #: Bound on memoized planning views; LRU-evicted beyond this.
    INFO_CACHE_LIMIT = 512

    def _info_key(self, job: Job, revision: int, grid: SlotGrid) -> tuple:
        """Memo key of one planning view (``revision`` is the job curve's
        ``curve_revision`` — computed by the caller at the write site).

        The grid's *horizon* is deliberately absent: a view's weights run
        up to its own (padded) deadline, and every grid that includes the
        job covers that deadline, so all weight-window consumers see
        identical values on any same-origin/same-width grid.  This lets
        the admission pass and the same-event allocation pass share one
        view build even when the candidate's deadline stretched the
        admission grid's horizon.
        """
        spec = job.spec
        return (
            job.job_id,
            job.remaining_iterations,
            spec.effective_deadline,
            spec.best_effort,
            spec.model_name,
            spec.global_batch_size,
            revision,
            grid.origin,
            grid.slot_seconds,
            self.context.total_gpus,
        )

    def _infos(self, jobs: list[Job], grid: SlotGrid) -> list[PlanningJob]:
        """Planning views for every job, missing ones built in one batch.

        Cache hits are served exactly like :meth:`_info`; the misses share
        a single :meth:`SlotGrid.weights_matrix` build (one vectorized clip
        over a deadlines-by-slots matrix) instead of one ``weights_until``
        call per job, and their usable windows come from one
        ``searchsorted`` (:meth:`SlotGrid.window_ends`) pre-seeded into the
        per-view window memo.  Every row is bit-identical to the
        single-job path, so views from either route are interchangeable —
        including under the fill fingerprint.

        With the planning frame enabled (the default) the whole call is
        served by :meth:`_PlanningFrame.refresh` instead: persistent
        views updated in place, no per-event key hashing or LRU churn.
        The branches below are the frame-disabled fallback and the
        cache-disabled reference path.
        """
        if not cache_enabled():
            return [self._info(job, grid) for job in jobs]
        if frame_enabled():
            return self._frame.refresh(jobs, grid)
        views: list[PlanningJob | None] = [None] * len(jobs)
        misses: list[tuple[int, Job, object, tuple]] = []
        for idx, job in enumerate(jobs):
            curve = self._planning_curve(job)
            key = self._info_key(job, curve_revision(curve), grid)
            info = self._info_cache.get(key)
            if info is None:
                misses.append((idx, job, curve, key))
            else:
                self._info_cache.move_to_end(key)
                views[idx] = info
        if misses:
            # Identical scalar padding math to planning_job, batched rows.
            deadlines = np.empty(len(misses), dtype=np.float64)
            for row, (_, job, _, _) in enumerate(misses):
                deadline = job.spec.effective_deadline
                if not math.isinf(deadline) and self.deadline_padding_s:
                    padding = min(
                        self.deadline_padding_s,
                        0.1 * max(0.0, deadline - grid.origin),
                    )
                    deadline = deadline - padding
                deadlines[row] = deadline
            weight_rows = grid.weights_matrix(deadlines)
            ends = grid.window_ends(deadlines)
            for row, (idx, job, curve, key) in enumerate(misses):
                tables = planning_tables_for(curve, self.context.total_gpus)
                info = PlanningJob(
                    job_id=job.job_id,
                    remaining_iterations=job.remaining_iterations
                    * (1.0 + self.safety_margin),
                    deadline=float(deadlines[row]),
                    weights=weight_rows[row],
                    throughput_table=tables.throughput_table,
                    size_table=tables.size_table,
                    sizes=tables.sizes,
                    best_effort=job.spec.best_effort,
                    tables_token=tables.token,
                )
                w0 = int(ends[row])
                # Window from slot 1 drops at most the slot-0 weight.
                info.__dict__["_windows"] = {0: w0, 1: max(w0 - 1, 0)}
                self._info_cache[key] = info
                views[idx] = info
            while len(self._info_cache) > self.INFO_CACHE_LIMIT:
                self._info_cache.popitem(last=False)
        return views

    def _info(self, job: Job, grid: SlotGrid) -> PlanningJob:
        curve = self._planning_curve(job)
        if not cache_enabled():
            return planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
        key = self._info_key(job, curve_revision(curve), grid)
        info = self._info_cache.get(key)
        if info is None:
            info = planning_job(
                job,
                curve,
                grid,
                self.context.total_gpus,
                safety_margin=self.safety_margin,
                deadline_padding_s=self.deadline_padding_s,
            )
            self._info_cache[key] = info
            while len(self._info_cache) > self.INFO_CACHE_LIMIT:
                self._info_cache.popitem(last=False)
        else:
            self._info_cache.move_to_end(key)
        return info
