"""Per-slot allocation plans and the shared GPU occupancy ledger.

A *plan* is simply a numpy integer vector: ``plan[t]`` GPUs in slot ``t`` of
the current :class:`~repro.core.slots.SlotGrid`.  The :class:`Ledger` tracks
the column sums across all planned jobs so admission control and allocation
can ask "how many GPUs are still unclaimed in slot t?" in O(1) vector ops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.perf.coherence import coherent, invalidates, mutates

__all__ = ["Ledger", "zero_plan"]


def zero_plan(horizon: int) -> np.ndarray:
    """An empty allocation plan of ``horizon`` slots."""
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    return np.zeros(horizon, dtype=np.int64)


@coherent(_used="ledger_version", _plans="ledger_version")
class Ledger:
    """GPU occupancy bookkeeping across all planned jobs.

    ``_used`` and ``_plans`` are coherent state: ``version`` (bumped by
    :meth:`_bump_version`) is what the availability cache and admission
    staleness checks key on, so every mutation must go through a declared
    mutator that reaches the bump (statically enforced — rules CC001/CC002).

    Args:
        capacity: Total GPUs in the cluster.
        horizon: Number of slots in the planning window.
    """

    def __init__(self, capacity: int, horizon: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.capacity = capacity
        self.horizon = horizon
        self.version = 0  # bumped on every mutation; used for staleness checks
        self._used = np.zeros(horizon, dtype=np.int64)
        self._plans: dict[str, np.ndarray] = {}
        self._available_cache: np.ndarray | None = None
        self._available_version = -1

    # ----------------------------------------------------------- inspection
    @property
    def used(self) -> np.ndarray:
        """GPUs claimed per slot (read-only view)."""
        view = self._used.view()
        view.flags.writeable = False
        return view

    def available(self) -> np.ndarray:
        """GPUs still unclaimed per slot (read-only; cached per version)."""
        if self._available_version != self.version:
            cache = self.capacity - self._used
            cache.flags.writeable = False
            self._available_cache = cache
            self._available_version = self.version
        return self._available_cache

    def available_at(self, slot: int) -> int:
        """GPUs still unclaimed in one slot (no array allocation)."""
        return self.capacity - int(self._used[slot])

    def plan_of(self, job_id: str) -> np.ndarray:
        """The registered plan of a job (copy)."""
        try:
            return self._plans[job_id].copy()
        except KeyError:
            raise SchedulingError(f"no plan registered for job {job_id!r}") from None

    def plan_view(self, job_id: str) -> np.ndarray:
        """The registered plan of a job (read-only, no copy).

        Stored plans are frozen at registration time, so this hands out
        the stored array itself — no per-call view construction.
        """
        try:
            return self._plans[job_id]
        except KeyError:
            raise SchedulingError(f"no plan registered for job {job_id!r}") from None

    def has_plan(self, job_id: str) -> bool:
        return job_id in self._plans

    @property
    def job_ids(self) -> list[str]:
        return sorted(self._plans)

    # ------------------------------------------------------------- mutation
    @invalidates("ledger_version")
    def _bump_version(self) -> None:
        """Mark every version-keyed derivation of the ledger stale."""
        self.version += 1

    @mutates("_used", "_plans")
    def set_plan(self, job_id: str, plan: np.ndarray, *, trusted: bool = False) -> None:
        """Register or replace a job's plan, enforcing capacity.

        ``trusted=True`` skips the shape/dtype/capacity validation — the
        planners use it for plans that progressive filling already bounded
        by the available capacity, which removes three O(horizon) passes
        from the hottest loop in Algorithm 2.  A trusted plan is also
        adopted without a defensive copy and frozen in place (untrusted
        plans are copied first, so the caller's array stays writable);
        freezing enforces the no-mutation contract and lets
        :meth:`plan_view` return stored arrays directly.  External callers
        should leave ``trusted`` off.
        """
        if not trusted:
            plan = self._validated(plan)
        previous = self._plans.get(job_id)
        trial = self._used + plan
        if previous is not None:
            trial -= previous
        if not trusted and np.any(trial > self.capacity):
            slot = int(np.argmax(trial > self.capacity))
            raise SchedulingError(
                f"plan for {job_id!r} overflows capacity at slot {slot}: "
                f"{int(trial[slot])} > {self.capacity}"
            )
        self._used = trial
        stored = plan if trusted else plan.copy()
        stored.flags.writeable = False
        self._plans[job_id] = stored
        self._bump_version()

    @mutates("_used", "_plans")
    def load_plans(self, plans: dict[str, np.ndarray], used: np.ndarray) -> None:
        """Wholesale-replace every plan from a pre-validated snapshot.

        The bulk restore behind the admission controller's replay and
        departure-delta paths: ``plans`` must be exactly the per-job plans
        whose column sum is ``used`` (the caller owns that invariant —
        both paths derive the pair from plans progressive filling already
        bounded by capacity).  Adopted arrays are frozen in place, like
        ``set_plan(trusted=True)``, so :meth:`plan_view` can keep handing
        out stored arrays.  ``used`` may be shared (even read-only): every
        mutator *rebinds* ``_used`` to a fresh array instead of writing in
        place, so adopted vectors — including the admission fill cache's
        frozen snapshots — are never corrupted by later ledger edits.
        """
        for plan in plans.values():
            plan.flags.writeable = False
        self._plans = dict(plans)
        self._used = used
        self._bump_version()

    @mutates("_used", "_plans")
    def remove_plan(self, job_id: str) -> None:
        """Drop a job's plan, releasing its claimed GPUs."""
        plan = self._plans.pop(job_id, None)
        if plan is None:
            raise SchedulingError(f"no plan registered for job {job_id!r}")
        # Rebind rather than subtract in place: ``_used`` may be an array
        # adopted from (and still referenced by) a cached fill snapshot.
        self._used = self._used - plan
        self._bump_version()

    @mutates("_used", "_plans")
    def clear(self) -> None:
        """Forget every plan."""
        self._plans.clear()
        self._used = np.zeros(self.horizon, dtype=np.int64)
        self._bump_version()

    # -------------------------------------------------------------- helpers
    def _validated(self, plan: np.ndarray) -> np.ndarray:
        plan = np.asarray(plan)
        if plan.shape != (self.horizon,):
            raise SchedulingError(
                f"plan has shape {plan.shape}, expected ({self.horizon},)"
            )
        if not np.issubdtype(plan.dtype, np.integer):
            raise SchedulingError(f"plan dtype must be integer, got {plan.dtype}")
        if np.any(plan < 0):
            raise SchedulingError("plan contains negative allocations")
        return plan.astype(np.int64, copy=False)
