"""Theorem 1: exact feasibility for linear scaling curves (Section 4.1).

For jobs whose throughput scales linearly with GPUs, the paper proves a
clean feasibility criterion: sort jobs by deadline and check that the
cumulative GPU-time demanded never exceeds what the cluster supplies
before each deadline,

    for every i:  sum_{j <= i} M_j / k_j  <=  G * D_i.

This module implements the criterion (and the witness schedule used in the
proof).  It is the ground truth the property tests compare progressive
filling against in the linear special case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["LinearJob", "linear_feasible", "linear_schedule_witness"]


@dataclass(frozen=True)
class LinearJob:
    """A job under linear scaling.

    Attributes:
        job_id: Identifier.
        gpu_seconds: Required work ``M_i / k_i`` — iterations over per-GPU
            throughput, i.e. total GPU-time the job needs.
        deadline: Relative deadline ``D_i`` in seconds from now.
    """

    job_id: str
    gpu_seconds: float
    deadline: float

    def __post_init__(self) -> None:
        if self.gpu_seconds <= 0:
            raise ConfigurationError(
                f"gpu_seconds must be > 0, got {self.gpu_seconds}"
            )
        if self.deadline <= 0:
            raise ConfigurationError(f"deadline must be > 0, got {self.deadline}")


def linear_feasible(jobs: list[LinearJob], capacity: int) -> bool:
    """Theorem 1's criterion: can all deadlines be met on ``capacity`` GPUs?"""
    if capacity < 1:
        raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
    ordered = sorted(jobs, key=lambda j: (j.deadline, j.job_id))
    cumulative = 0.0
    for job in ordered:
        cumulative += job.gpu_seconds
        if cumulative > capacity * job.deadline + 1e-9:
            return False
    return True


def linear_schedule_witness(
    jobs: list[LinearJob], capacity: int
) -> dict[str, list[tuple[float, float, float]]] | None:
    """A concrete schedule proving feasibility, or ``None`` if infeasible.

    The witness processes jobs in deadline order, running each at full
    remaining capacity as early as possible (under linear scaling, how the
    GPU-time is spread over time is immaterial, so EDF-with-everything is a
    valid witness).  Returns per job a list of ``(start, end, gpus)``
    intervals; the fractional GPU rates are legitimate for the *linear*
    model where splitting a GPU across time slices loses nothing.
    """
    if not linear_feasible(jobs, capacity):
        return None
    ordered = sorted(jobs, key=lambda j: (j.deadline, j.job_id))
    schedule: dict[str, list[tuple[float, float, float]]] = {}
    frontier = 0.0  # everything before this instant is fully packed
    for job in ordered:
        start = frontier
        seconds = job.gpu_seconds / capacity
        end = start + seconds
        schedule[job.job_id] = [(start, end, float(capacity))]
        frontier = end
    return schedule
