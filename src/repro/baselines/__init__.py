"""Baseline schedulers the paper compares against (Section 6.1).

All six baselines — EDF, Gandiva, Tiresias, Themis, Chronus and Pollux —
plus the Fig 9 ablation variants (EDF + Admission Control and
EDF + Elastic Scaling) are faithful *policy* reimplementations driving the
same simulator, executor-overhead model and scaling curves as ElasticFlow.
"""

from repro.baselines.base import QueueBasedPolicy, floor_power_of_two
from repro.baselines.edf import EDFPolicy
from repro.baselines.gandiva import GandivaPolicy
from repro.baselines.tiresias import TiresiasPolicy
from repro.baselines.themis import ThemisPolicy
from repro.baselines.chronus import ChronusPolicy
from repro.baselines.pollux import PolluxPolicy
from repro.baselines.variants import (
    EDFWithAdmissionControl,
    EDFWithElasticScaling,
)
from repro.baselines.registry import POLICY_NAMES, make_policy

__all__ = [
    "QueueBasedPolicy",
    "floor_power_of_two",
    "EDFPolicy",
    "GandivaPolicy",
    "TiresiasPolicy",
    "ThemisPolicy",
    "ChronusPolicy",
    "PolluxPolicy",
    "EDFWithAdmissionControl",
    "EDFWithElasticScaling",
    "POLICY_NAMES",
    "make_policy",
]
