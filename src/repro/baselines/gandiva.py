"""Gandiva (OSDI 2018) — introspective, non-elastic, deadline-unaware.

Gandiva packs jobs at their requested GPU count and continuously refines
placement through migration (which our buddy-allocating engine performs for
every policy).  It neither scales jobs nor looks at deadlines, so its
deadline satisfactory ratio is whatever FIFO packing happens to deliver.
We keep its signature behaviours that matter at the scheduling level:
fixed-size allocations, FIFO order with backfilling, and migration-friendly
packing.
"""

from __future__ import annotations

from repro.baselines.base import QueueBasedPolicy
from repro.core.job import Job

__all__ = ["GandivaPolicy"]


class GandivaPolicy(QueueBasedPolicy):
    """FIFO packing at the trace-requested size, with backfill."""

    name = "gandiva"
    backfill = True

    def order(self, active: list[Job], now: float) -> list[Job]:
        """FIFO with running jobs pinned ahead of queued ones."""
        # FIFO, but keep already-running jobs ahead of queued ones so
        # backfilled jobs are not preempted by an unrunnable head job.
        return sorted(
            active,
            key=lambda j: (j.n_gpus == 0, j.spec.submit_time, j.job_id),
        )
