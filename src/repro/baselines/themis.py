"""Themis (NSDI 2020) — finish-time fairness.

Themis allocates GPUs so that every job's *finish-time fairness*
``rho = T_shared / T_ideal`` stays balanced: ``T_shared`` is the projected
total turnaround in the shared cluster, ``T_ideal`` the turnaround the job
would see running alone at its requested size.  At every scheduling event
the jobs with the worst (largest) rho are served first, each at its
requested size.  Deadlines play no role.
"""

from __future__ import annotations

from repro.baselines.base import QueueBasedPolicy
from repro.core.job import Job

__all__ = ["ThemisPolicy"]


class ThemisPolicy(QueueBasedPolicy):
    """Worst-finish-time-fairness-first packing at requested sizes."""

    name = "themis"

    def finish_time_fairness(self, job: Job, now: float) -> float:
        """rho = projected shared turnaround over ideal exclusive turnaround."""
        curve = self.context.curve_for(job)
        size = self.size_of(job, now)
        exclusive_rate = curve.effective_throughput(size)
        ideal = job.spec.max_iterations / exclusive_rate
        current_rate = (
            curve.effective_throughput(job.n_gpus) if job.n_gpus else 0.0
        )
        if current_rate > 0:
            projected_remaining = job.remaining_iterations / current_rate
        else:
            # Queued: optimistic restart at the requested size.
            projected_remaining = job.remaining_iterations / exclusive_rate
        elapsed = now - job.spec.submit_time
        shared = elapsed + projected_remaining
        return shared / ideal

    def order(self, active: list[Job], now: float) -> list[Job]:
        """Worst finish-time fairness (largest rho) first."""
        return sorted(
            active,
            key=lambda j: (-self.finish_time_fairness(j, now), j.spec.submit_time, j.job_id),
        )
