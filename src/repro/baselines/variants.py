"""Ablation variants for the sources-of-improvement study (paper Fig 9).

ElasticFlow = EDF ordering + admission control + elastic scaling.  The two
variants here each add exactly one of those ingredients on top of plain EDF
so the contribution of each can be measured:

- **EDF + Admission Control** drops jobs whose minimum satisfactory share
  does not fit, but still *executes* with EDF's greedy scale-out, so
  admitted jobs can be starved by an inefficient head-of-line job.
- **EDF + Elastic Scaling** executes exactly like ElasticFlow (minimum
  shares by deadline, leftovers by marginal return) but admits everything,
  so hopeless jobs consume GPUs that feasible jobs needed.
"""

from __future__ import annotations

from repro.baselines.edf import EDFPolicy
from repro.core.job import Job
from repro.core.scheduler import ElasticFlowPolicy

__all__ = ["EDFWithAdmissionControl", "EDFWithElasticScaling"]


class EDFWithAdmissionControl(EDFPolicy):
    """EDF execution guarded by ElasticFlow's admission control."""

    name = "edf+ac"

    def __init__(self, *, max_horizon: int = 2048) -> None:
        super().__init__()
        self._gate = ElasticFlowPolicy(max_horizon=max_horizon)

    def bind(self, context) -> None:
        """Bind both the EDF executor and the admission gate."""
        super().bind(context)
        self._gate.bind(context)

    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Delegate the admission decision to ElasticFlow's Algorithm 1."""
        return self._gate.admit(job, active, now)


class EDFWithElasticScaling(ElasticFlowPolicy):
    """ElasticFlow's execution engine with admission control disabled."""

    name = "edf+es"

    def __init__(self, **kwargs) -> None:
        kwargs["admission_enabled"] = False
        super().__init__(**kwargs)
