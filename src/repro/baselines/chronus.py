"""Chronus (SoCC 2021) — deadline-aware but non-elastic.

Chronus admits SLO jobs only when their deadline is attainable and schedules
them with lease-based reservations at their *requested* GPU count; it cannot
grow or shrink a job.  We express that by running the same progressive-fill
feasibility machinery as ElasticFlow but with a single candidate size per
job — the plan either reserves the requested block in a slot or nothing.
Best-effort jobs are packed FIFO into whatever is left.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import QueueBasedPolicy
from repro.core.admission import AdmissionController, PlanningJob
from repro.core.job import Job
from repro.core.slots import SlotGrid
from repro.profiles.throughput import ScalingCurve

__all__ = ["ChronusPolicy"]


def fixed_size_info(
    job: Job, curve: ScalingCurve, grid: SlotGrid, capacity: int, size: int
) -> PlanningJob:
    """Planning view of a job that can only ever run at one size."""
    throughput = curve.effective_throughput(size)
    throughput_table = np.zeros(capacity + 1, dtype=np.float64)
    size_table = np.zeros(capacity + 1, dtype=np.int64)
    throughput_table[size:] = throughput
    size_table[size:] = size
    return PlanningJob(
        job_id=job.job_id,
        remaining_iterations=job.remaining_iterations,
        deadline=job.spec.effective_deadline,
        weights=grid.weights_until(job.spec.effective_deadline),
        throughput_table=throughput_table,
        size_table=size_table,
        sizes=[size],
        best_effort=job.spec.best_effort,
    )


class ChronusPolicy(QueueBasedPolicy):
    """Deadline-feasibility admission + fixed-size lease scheduling."""

    name = "chronus"

    def __init__(self, *, max_horizon: int = 2048) -> None:
        super().__init__()
        self.max_horizon = max_horizon

    # -------------------------------------------------------------- helpers
    def _grid(self, now: float, jobs: list[Job]) -> SlotGrid:
        slot = self.context.slot_seconds
        import math

        finite = [
            j.spec.effective_deadline
            for j in jobs
            if not math.isinf(j.spec.effective_deadline)
        ]
        if finite:
            span = max(finite) - now
            if span > slot * self.max_horizon:
                slot = span / self.max_horizon
        return SlotGrid.for_jobs(
            now,
            [j.spec.effective_deadline for j in jobs],
            slot,
            max_horizon=self.max_horizon,
        )

    def _info(self, job: Job, grid: SlotGrid) -> PlanningJob:
        return fixed_size_info(
            job,
            self.context.curve_for(job),
            grid,
            self.context.total_gpus,
            self.size_of(job, 0.0),
        )

    # ------------------------------------------------------------ interface
    def admit(self, job: Job, active: list[Job], now: float) -> bool:
        """Admit only if the deadline is attainable at the requested size."""
        if job.spec.best_effort:
            return True
        if self.context.usable_gpus < 1:
            return False
        grid = self._grid(now, active + [job])
        controller = AdmissionController(self.context.usable_gpus)
        candidate = self._info(job, grid)
        admitted = [self._info(j, grid) for j in active if not j.spec.best_effort]
        return controller.try_admit(candidate, admitted, grid).admitted

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Fixed-size lease reservations plus FIFO-packed leftovers."""
        if not active:
            return {}
        if self.context.usable_gpus < 1:
            return {job.job_id: 0 for job in active}
        grid = self._grid(now, active)
        slo = [j for j in active if not j.spec.best_effort]
        best_effort = [j for j in active if j.spec.best_effort]
        controller = AdmissionController(self.context.usable_gpus)
        infos = [self._info(j, grid) for j in slo]
        result = controller.plan_shares(infos, grid, stop_on_failure=False)
        decisions = {
            info.job_id: int(result.plans[info.job_id][0]) for info in infos
        }
        free = self.context.usable_gpus - sum(decisions.values())
        # Degraded SLO jobs (deadline already lost) and best-effort jobs are
        # packed FIFO into whatever the reservations left over.
        leftovers = [j for j in slo if j.job_id in result.degraded] + best_effort
        for job in sorted(leftovers, key=lambda j: (j.spec.submit_time, j.job_id)):
            size = self.size_of(job, now)
            if size <= free:
                decisions[job.job_id] = size
                free -= size
            else:
                decisions[job.job_id] = 0
        return decisions
