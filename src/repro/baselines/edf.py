"""Earliest-Deadline-First (paper Section 6.1, first baseline).

The canonical deadline policy: jobs run in deadline order, and each job
"uses as many GPUs as a job can scale out without decreasing the
throughput".  The paper's Fig 3 shows why this fails for sub-linearly
scaling jobs — the head job hogs GPUs it uses inefficiently, starving jobs
whose deadlines then slip.
"""

from __future__ import annotations

from repro.baselines.base import QueueBasedPolicy, floor_power_of_two
from repro.core.job import Job

__all__ = ["EDFPolicy"]


class EDFPolicy(QueueBasedPolicy):
    """Deadline-ordered, maximally scaled-out, no admission control."""

    name = "edf"

    def order(self, active: list[Job], now: float) -> list[Job]:
        """Earliest deadline first."""
        return sorted(
            active,
            key=lambda j: (j.spec.effective_deadline, j.spec.submit_time, j.job_id),
        )

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Give each job, in deadline order, its peak-throughput share."""
        free = self.context.usable_gpus
        decisions: dict[str, int] = {}
        for job in self.order(active, now):
            if free == 0:
                decisions[job.job_id] = 0
                continue
            curve = self.context.curve_for(job)
            peak = curve.max_useful_gpus(self.context.total_gpus)
            size = min(peak, floor_power_of_two(free))
            decisions[job.job_id] = size
            free -= size
        return decisions
