"""Shared machinery for the queue-based baseline schedulers."""

from __future__ import annotations

from repro.core.job import Job
from repro.numeric import floor_power_of_two
from repro.sim.interface import SchedulerPolicy

# ``floor_power_of_two`` moved to :mod:`repro.numeric`; re-exported here
# because baseline policies were its original import site.
__all__ = ["floor_power_of_two", "QueueBasedPolicy"]


class QueueBasedPolicy(SchedulerPolicy):
    """Base for schedulers that rank jobs and pack fixed sizes in order.

    Subclasses supply a priority order and a per-job size; the packer walks
    the queue, granting each job its size while GPUs remain, optionally
    letting later (smaller) jobs backfill around a blocked head job.
    """

    #: Whether jobs that do not fit may be skipped so later jobs can run.
    backfill: bool = True

    def order(self, active: list[Job], now: float) -> list[Job]:
        """Scheduling order, highest priority first.  Default: FIFO."""
        return sorted(active, key=lambda j: (j.spec.submit_time, j.job_id))

    def size_of(self, job: Job, now: float) -> int:
        """GPUs a job runs on when scheduled.  Default: the trace request,
        capped at its peak-throughput size (no point scaling past it)."""
        curve = self.context.curve_for(job)
        peak = curve.max_useful_gpus(self.context.total_gpus)
        return min(job.spec.requested_gpus, peak)

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Pack jobs in priority order at their fixed sizes."""
        free = self.context.usable_gpus
        decisions: dict[str, int] = {}
        for job in self.order(active, now):
            size = self.size_of(job, now)
            if size <= free:
                decisions[job.job_id] = size
                free -= size
            else:
                decisions[job.job_id] = 0
                if not self.backfill:
                    break
        return decisions
