"""Pollux (OSDI 2021) — elastic, goodput-maximising, deadline-unaware.

Pollux co-optimises system throughput and statistical efficiency and
reallocates the cluster to maximise aggregate *speedup fairness* — in its
published formulation, the product (geometric mean) of per-job speedups.
We reproduce the scheduling layer: a greedy water-filling on marginal
``log(speedup)`` per added GPU, which spreads GPUs across jobs first (the
first GPU of an idle job has unbounded marginal log-gain) and then grows
the jobs that scale best.  Statistical-efficiency co-adaptation needs
per-iteration gradient statistics and is out of scope (recorded in
DESIGN.md / EXPERIMENTS.md); that simplification is conservative for
Pollux in our comparison because it only affects *which* elastic job grows,
not deadline awareness, which Pollux lacks either way.
"""

from __future__ import annotations

import heapq
import itertools
import math

from repro.core.job import Job
from repro.sim.interface import SchedulerPolicy

__all__ = ["PolluxPolicy"]


class PolluxPolicy(SchedulerPolicy):
    """Greedy maximisation of summed log-speedups (geometric-mean goodput)."""

    name = "pollux"

    def allocate(self, active: list[Job], now: float) -> dict[str, int]:
        """Water-fill GPUs by marginal log-speedup gain."""
        total = self.context.total_gpus
        decisions = {job.job_id: 0 for job in active}
        curves = {job.job_id: self.context.curve_for(job) for job in active}
        free = self.context.usable_gpus
        counter = itertools.count()
        heap: list[tuple[float, float, int, str]] = []

        def marginal_gain(job: Job) -> tuple[float, float] | None:
            """(negated gain per GPU, tie-break) for the job's next upgrade."""
            curve = curves[job.job_id]
            current = decisions[job.job_id]
            upgrade = None
            for size in curve.allowed_sizes(total):
                if size > current:
                    upgrade = size
                    break
            if upgrade is None or upgrade - current > free:
                return None
            if curve.effective_throughput(upgrade) <= curve.effective_throughput(
                current
            ):
                return None
            if current == 0:
                # First GPU: infinite log-gain; shorter jobs first evens out
                # completion (Pollux's fairness levelling).
                remaining = job.remaining_iterations / curve.throughput(1)
                return (-math.inf, remaining)
            gain = math.log(curve.effective_throughput(upgrade)) - math.log(
                curve.effective_throughput(current)
            )
            return (-(gain / (upgrade - current)), 0.0)

        def push(job: Job) -> None:
            entry = marginal_gain(job)
            if entry is not None:
                heapq.heappush(heap, (entry[0], entry[1], next(counter), job.job_id))

        jobs_by_id = {job.job_id: job for job in active}
        for job in active:
            push(job)
        while heap and free > 0:
            neg_gain, tiebreak, _, job_id = heapq.heappop(heap)
            job = jobs_by_id[job_id]
            entry = marginal_gain(job)
            if entry is None:
                continue
            if (entry[0], entry[1]) != (neg_gain, tiebreak):
                push(job)  # stale: free pool shrank since it was queued
                continue
            curve = curves[job_id]
            current = decisions[job_id]
            upgrade = next(
                s for s in curve.allowed_sizes(total) if s > current
            )
            free -= upgrade - current
            decisions[job_id] = upgrade
            push(job)
        return decisions
