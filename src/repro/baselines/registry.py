"""Factory for every scheduler policy in the repository."""

from __future__ import annotations

from typing import Callable

from repro.baselines.chronus import ChronusPolicy
from repro.baselines.edf import EDFPolicy
from repro.baselines.gandiva import GandivaPolicy
from repro.baselines.pollux import PolluxPolicy
from repro.baselines.themis import ThemisPolicy
from repro.baselines.tiresias import TiresiasPolicy
from repro.baselines.variants import EDFWithAdmissionControl, EDFWithElasticScaling
from repro.core.scheduler import ElasticFlowPolicy
from repro.errors import ConfigurationError
from repro.sim.interface import SchedulerPolicy

__all__ = ["POLICY_NAMES", "make_policy"]

_FACTORIES: dict[str, Callable[..., SchedulerPolicy]] = {
    "elasticflow": ElasticFlowPolicy,
    "edf": EDFPolicy,
    "gandiva": GandivaPolicy,
    "tiresias": TiresiasPolicy,
    "themis": ThemisPolicy,
    "chronus": ChronusPolicy,
    "pollux": PolluxPolicy,
    "edf+ac": EDFWithAdmissionControl,
    "edf+es": EDFWithElasticScaling,
}

#: All registered policy names, in the paper's presentation order.
POLICY_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def make_policy(name: str, **kwargs) -> SchedulerPolicy:
    """Instantiate a policy by name.

    Raises:
        ConfigurationError: For an unknown policy name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise ConfigurationError(
            f"unknown policy {name!r}; known policies: {known}"
        ) from None
    return factory(**kwargs)
