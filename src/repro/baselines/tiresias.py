"""Tiresias (NSDI 2019) — discretised two-dimensional LAS.

Tiresias priorities a job by its *attained service* (GPUs x time).  Jobs are
kept in a small number of logical queues separated by service thresholds;
within a queue scheduling is FIFO, across queues lower attained service
wins.  Jobs are not elastic (they run at the trace-requested size) and
deadlines are invisible to the policy.
"""

from __future__ import annotations

from repro.baselines.base import QueueBasedPolicy
from repro.core.job import Job
from repro.errors import ConfigurationError

__all__ = ["TiresiasPolicy"]


class TiresiasPolicy(QueueBasedPolicy):
    """Discretised 2D-LAS with preemption at queue boundaries.

    Args:
        queue_thresholds_gpu_hours: Attained-service boundaries between the
            priority queues, in GPU-hours.  The defaults give the classic
            two-queue Tiresias-L configuration.
    """

    name = "tiresias"

    def __init__(self, queue_thresholds_gpu_hours: tuple[float, ...] = (1.0,)) -> None:
        super().__init__()
        if any(t <= 0 for t in queue_thresholds_gpu_hours):
            raise ConfigurationError("queue thresholds must be positive")
        if list(queue_thresholds_gpu_hours) != sorted(queue_thresholds_gpu_hours):
            raise ConfigurationError("queue thresholds must be increasing")
        self.thresholds_s = [t * 3600.0 for t in queue_thresholds_gpu_hours]

    def queue_index(self, job: Job) -> int:
        """Which priority queue a job currently occupies."""
        for index, threshold in enumerate(self.thresholds_s):
            if job.gpu_seconds < threshold:
                return index
        return len(self.thresholds_s)

    def order(self, active: list[Job], now: float) -> list[Job]:
        """Lower attained-service queue first; FIFO within a queue."""
        return sorted(
            active,
            key=lambda j: (self.queue_index(j), j.spec.submit_time, j.job_id),
        )
