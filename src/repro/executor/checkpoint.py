"""Versioned checkpoint store for elastic scaling (paper Section 5).

"If a running job is suspended, ElasticFlow checkpoints the parameters
until it is restarted."  The store keeps one lineage of checkpoints per
job; scaling always restores the *latest* version, and stale versions are
pruned so a long-running job does not accumulate unbounded state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SchedulingError

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One serialised training state.

    Attributes:
        job_id: Owning job.
        version: Monotonically increasing per job.
        nbytes: Serialised size (weights plus optimizer state).
        iterations_done: Training progress captured by this checkpoint.
        saved_at: Simulation time of the save.
    """

    job_id: str
    version: int
    nbytes: float
    iterations_done: float
    saved_at: float

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ConfigurationError(f"version must be >= 1, got {self.version}")
        if self.nbytes <= 0:
            raise ConfigurationError(f"nbytes must be > 0, got {self.nbytes}")
        if self.iterations_done < 0:
            raise ConfigurationError(
                f"iterations_done must be >= 0, got {self.iterations_done}"
            )


class CheckpointStore:
    """Per-job checkpoint lineages with bounded retention.

    Args:
        keep_versions: How many checkpoints to retain per job.
    """

    def __init__(self, *, keep_versions: int = 2) -> None:
        if keep_versions < 1:
            raise ConfigurationError(
                f"keep_versions must be >= 1, got {keep_versions}"
            )
        self.keep_versions = keep_versions
        self._store: dict[str, list[Checkpoint]] = {}

    def save(
        self, job_id: str, nbytes: float, iterations_done: float, now: float
    ) -> Checkpoint:
        """Persist a new checkpoint and prune old versions."""
        lineage = self._store.setdefault(job_id, [])
        if lineage and iterations_done < lineage[-1].iterations_done:
            raise SchedulingError(
                f"job {job_id!r}: checkpoint would lose progress "
                f"({iterations_done} < {lineage[-1].iterations_done})"
            )
        checkpoint = Checkpoint(
            job_id=job_id,
            version=lineage[-1].version + 1 if lineage else 1,
            nbytes=nbytes,
            iterations_done=iterations_done,
            saved_at=now,
        )
        lineage.append(checkpoint)
        del lineage[: -self.keep_versions]
        return checkpoint

    def latest(self, job_id: str) -> Checkpoint:
        """The checkpoint a restore would load.

        Raises:
            SchedulingError: If the job has never checkpointed.
        """
        lineage = self._store.get(job_id)
        if not lineage:
            raise SchedulingError(f"job {job_id!r} has no checkpoint")
        return lineage[-1]

    def has_checkpoint(self, job_id: str) -> bool:
        return bool(self._store.get(job_id))

    def versions_of(self, job_id: str) -> list[int]:
        return [c.version for c in self._store.get(job_id, [])]

    def forget(self, job_id: str) -> None:
        """Drop a completed job's lineage (storage reclamation)."""
        self._store.pop(job_id, None)

    @property
    def total_bytes(self) -> float:
        return sum(c.nbytes for lineage in self._store.values() for c in lineage)
