"""The elastic training executor (paper Section 5).

The paper's prototype spends 3,200+ lines on elastic training: launching
PyTorch DDP worker sets, adjusting per-worker batch sizes to preserve the
global batch, checkpointing parameters on every scaling decision, and
restarting jobs on their new worker sets without tearing down CUDA
contexts or NCCL groups.  This package models that machinery explicitly:

- :mod:`repro.executor.reconfigure` — local-batch computation: how a
  global batch is sharded over a worker set, including gradient
  accumulation when a shard exceeds GPU memory;
- :mod:`repro.executor.checkpoint` — a versioned checkpoint store;
- :mod:`repro.executor.worker` — the per-worker lifecycle state machine;
- :mod:`repro.executor.coordinator` — the control plane that executes one
  stop-free scaling operation end to end and returns a phase-by-phase
  transcript whose total duration is what the simulator charges as the
  scaling overhead (Fig 12b).

The closed-form :class:`repro.sim.executor.ElasticExecutor` is the fast
path the simulator uses; the test suite checks it against the transcript
totals produced here.
"""

from repro.executor.reconfigure import (
    ReconfigurationPlan,
    accumulation_steps,
    plan_reconfiguration,
    shard_batch,
)
from repro.executor.checkpoint import Checkpoint, CheckpointStore
from repro.executor.worker import Worker, WorkerState
from repro.executor.coordinator import (
    JobCoordinator,
    ScalingPhase,
    ScalingTranscript,
)

__all__ = [
    "ReconfigurationPlan",
    "accumulation_steps",
    "plan_reconfiguration",
    "shard_batch",
    "Checkpoint",
    "CheckpointStore",
    "Worker",
    "WorkerState",
    "JobCoordinator",
    "ScalingPhase",
    "ScalingTranscript",
]
