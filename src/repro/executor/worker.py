"""Per-worker lifecycle state machine.

Each GPU worker of a running job moves through a small, strict lifecycle.
Scaling keeps CUDA contexts and NCCL process groups alive (Section 5), so a
worker that survives a scaling event goes PAUSED -> TRAINING without a cold
start; only newly added workers pay initialisation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SchedulingError

__all__ = ["WorkerState", "Worker"]


class WorkerState(enum.Enum):
    """Lifecycle states of one training worker process."""

    CREATED = "created"
    INITIALIZING = "initializing"  # CUDA context + NCCL group setup
    READY = "ready"  # initialised, no training loop yet
    TRAINING = "training"
    PAUSED = "paused"  # drained at an iteration boundary
    CHECKPOINTING = "checkpointing"
    STOPPED = "stopped"  # terminal


#: Legal transitions of the worker lifecycle.
_TRANSITIONS: dict[WorkerState, frozenset[WorkerState]] = {
    WorkerState.CREATED: frozenset({WorkerState.INITIALIZING}),
    WorkerState.INITIALIZING: frozenset({WorkerState.READY, WorkerState.STOPPED}),
    WorkerState.READY: frozenset({WorkerState.TRAINING, WorkerState.STOPPED}),
    WorkerState.TRAINING: frozenset({WorkerState.PAUSED, WorkerState.STOPPED}),
    WorkerState.PAUSED: frozenset(
        {WorkerState.TRAINING, WorkerState.CHECKPOINTING, WorkerState.STOPPED}
    ),
    WorkerState.CHECKPOINTING: frozenset({WorkerState.PAUSED, WorkerState.STOPPED}),
    WorkerState.STOPPED: frozenset(),
}


@dataclass
class Worker:
    """One training process bound to one GPU.

    Attributes:
        worker_id: Identifier, unique within the job.
        gpu_index: Cluster GPU the process owns.
        local_batch: Samples this worker contributes per iteration.
        state: Current lifecycle state.
    """

    worker_id: str
    gpu_index: int
    local_batch: int = 0
    state: WorkerState = WorkerState.CREATED
    history: list[WorkerState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ConfigurationError("worker_id must be non-empty")
        if self.gpu_index < 0:
            raise ConfigurationError(f"gpu_index must be >= 0, got {self.gpu_index}")
        self.history.append(self.state)

    def transition(self, target: WorkerState) -> None:
        """Move to ``target``; illegal moves raise.

        Raises:
            SchedulingError: If the transition is not in the lifecycle.
        """
        if target not in _TRANSITIONS[self.state]:
            raise SchedulingError(
                f"worker {self.worker_id}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target
        self.history.append(target)

    @property
    def is_terminal(self) -> bool:
        return self.state is WorkerState.STOPPED

    @property
    def is_participating(self) -> bool:
        """Whether the worker currently holds a share of the global batch."""
        return self.state in (WorkerState.TRAINING, WorkerState.PAUSED) and (
            self.local_batch > 0
        )
