"""Local batch-size reconfiguration (paper Sections 3.1 and 5).

The serverless interface fixes the *global* batch size; the platform owns
the system-side decision of how that batch is split across however many
workers the scheduler granted.  "The local batch size on each worker is
adjusted to maintain the same global batch size" (Section 5).  Two details
matter:

- the global batch rarely divides evenly, so shards differ by at most one
  sample (the slowest — largest — shard gates the iteration time);
- a shard larger than what GPU memory holds falls back to gradient
  accumulation, keeping any job runnable on any worker count down to one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.profiles.modelzoo import ModelProfile

__all__ = [
    "shard_batch",
    "accumulation_steps",
    "ReconfigurationPlan",
    "plan_reconfiguration",
]


def shard_batch(global_batch: int, n_workers: int) -> list[int]:
    """Split a global batch across workers as evenly as possible.

    The first ``global_batch % n_workers`` workers take one extra sample.

    Raises:
        ConfigurationError: If there are more workers than samples (a
            worker with an empty batch would contribute zero gradient and
            silently change the effective global batch).
    """
    if global_batch < 1:
        raise ConfigurationError(f"global_batch must be >= 1, got {global_batch}")
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    if n_workers > global_batch:
        raise ConfigurationError(
            f"{n_workers} workers cannot share a batch of {global_batch}"
        )
    base, remainder = divmod(global_batch, n_workers)
    return [base + 1] * remainder + [base] * (n_workers - remainder)


def accumulation_steps(local_batch: int, max_local_batch: int) -> int:
    """Micro-batches needed to fit ``local_batch`` into GPU memory."""
    if local_batch < 1:
        raise ConfigurationError(f"local_batch must be >= 1, got {local_batch}")
    if max_local_batch < 1:
        raise ConfigurationError(
            f"max_local_batch must be >= 1, got {max_local_batch}"
        )
    return -(-local_batch // max_local_batch)


@dataclass(frozen=True)
class ReconfigurationPlan:
    """The system-side configuration for one worker count.

    Attributes:
        n_workers: Target worker count.
        local_batches: Per-worker batch sizes (sums to the global batch).
        accumulation: Per-worker gradient-accumulation micro-batch counts.
        max_local_batch: The largest shard (gates the iteration time).
    """

    n_workers: int
    local_batches: tuple[int, ...]
    accumulation: tuple[int, ...]

    @property
    def global_batch(self) -> int:
        return sum(self.local_batches)

    @property
    def max_local_batch(self) -> int:
        return max(self.local_batches)

    @property
    def uses_accumulation(self) -> bool:
        return any(steps > 1 for steps in self.accumulation)


def plan_reconfiguration(
    model: ModelProfile, global_batch: int, n_workers: int
) -> ReconfigurationPlan:
    """Compute the per-worker configuration for a scaling decision.

    Raises:
        ConfigurationError: If the geometry is impossible (more workers
            than samples).
    """
    shards = shard_batch(global_batch, n_workers)
    accumulation = tuple(
        accumulation_steps(shard, model.max_local_batch) for shard in shards
    )
    return ReconfigurationPlan(
        n_workers=n_workers,
        local_batches=tuple(shards),
        accumulation=accumulation,
    )
