"""The per-job control plane for stop-free elastic scaling (Section 5).

When the scheduler changes a job's worker set, the coordinator runs the
prototype's scaling protocol:

1. **drain** — running workers finish their current iteration and pause;
2. **checkpoint** — rank 0 serialises parameters and optimizer state;
3. **reconfigure** — departing workers stop, joining workers initialise
   (CUDA contexts and NCCL groups of surviving workers are kept alive),
   and the global batch is re-sharded over the new set;
4. **restore** — the new worker set loads the checkpoint;
5. **resume** — training continues from the checkpointed iteration.

Every operation returns a :class:`ScalingTranscript` with per-phase timing;
its total is the stall the simulator charges (Fig 12b).  The closed-form
:class:`repro.sim.executor.ElasticExecutor` approximates these totals; a
test pins the two within tolerance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError, SchedulingError
from repro.executor.checkpoint import CheckpointStore
from repro.executor.reconfigure import ReconfigurationPlan, plan_reconfiguration
from repro.executor.worker import Worker, WorkerState
from repro.profiles.modelzoo import ModelProfile

__all__ = ["ScalingPhase", "PhaseRecord", "ScalingTranscript", "JobCoordinator"]


class ScalingPhase(enum.Enum):
    """Phases of one scaling operation, in protocol order."""

    DRAIN = "drain"
    CHECKPOINT = "checkpoint"
    RECONFIGURE = "reconfigure"
    RESTORE = "restore"
    RESUME = "resume"


@dataclass(frozen=True)
class PhaseRecord:
    """Timing of one protocol phase."""

    phase: ScalingPhase
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ScalingTranscript:
    """The full record of one scaling/suspend/launch operation."""

    job_id: str
    old_workers: int
    new_workers: int
    phases: tuple[PhaseRecord, ...]
    plan: ReconfigurationPlan | None

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.phases)

    @property
    def finished_at(self) -> float:
        return max((record.end for record in self.phases), default=0.0)

    def seconds_in(self, phase: ScalingPhase) -> float:
        return sum(r.seconds for r in self.phases if r.phase is phase)


class JobCoordinator:
    """Drives one job's worker set through scaling operations.

    Args:
        job_id: The job this coordinator owns.
        model: Model profile (checkpoint size, serialisation speed).
        global_batch: The job's immutable global batch size.
        store: Checkpoint store shared across jobs (a fresh one by default).
        framework_base_s: Fixed reconfigure cost (DDP wrapper and
            dataloader rebuild; NCCL groups stay alive).
        per_worker_init_s: Cost per *newly joining* worker.
        serialization_mb_per_s: Checkpoint/restore serialisation speed.
    """

    def __init__(
        self,
        job_id: str,
        model: ModelProfile,
        global_batch: int,
        *,
        store: CheckpointStore | None = None,
        framework_base_s: float = 8.0,
        per_worker_init_s: float = 0.4,
        serialization_mb_per_s: float = 250.0,
    ) -> None:
        if not job_id:
            raise ConfigurationError("job_id must be non-empty")
        if global_batch < 1:
            raise ConfigurationError(f"global_batch must be >= 1, got {global_batch}")
        if framework_base_s < 0 or per_worker_init_s < 0:
            raise ConfigurationError("timing constants must be >= 0")
        if serialization_mb_per_s <= 0:
            raise ConfigurationError("serialization_mb_per_s must be > 0")
        self.job_id = job_id
        self.model = model
        self.global_batch = global_batch
        self.store = store or CheckpointStore()
        self.framework_base_s = framework_base_s
        self.per_worker_init_s = per_worker_init_s
        self.serialization_mb_per_s = serialization_mb_per_s
        self.workers: dict[int, Worker] = {}  # gpu index -> worker
        self.iterations_done = 0.0

    # ----------------------------------------------------------- inspection
    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def gpu_indices(self) -> list[int]:
        return sorted(self.workers)

    @property
    def is_running(self) -> bool:
        return bool(self.workers) and all(
            w.state is WorkerState.TRAINING for w in self.workers.values()
        )

    def _serialization_seconds(self) -> float:
        return self.model.checkpoint_bytes / (self.serialization_mb_per_s * 1e6)

    # ------------------------------------------------------------ protocol
    def launch(self, gpu_indices: list[int], now: float) -> ScalingTranscript:
        """Cold-start the job on a worker set (restores if a checkpoint exists)."""
        if self.workers:
            raise SchedulingError(
                f"job {self.job_id!r} is already running; use scale()"
            )
        self._check_indices(gpu_indices)
        clock = now
        phases: list[PhaseRecord] = []
        plan = plan_reconfiguration(self.model, self.global_batch, len(gpu_indices))
        clock = self._reconfigure(gpu_indices, plan, clock, phases)
        if self.store.has_checkpoint(self.job_id):
            clock = self._restore(clock, phases)
        clock = self._resume(clock, phases)
        return ScalingTranscript(
            job_id=self.job_id,
            old_workers=0,
            new_workers=len(gpu_indices),
            phases=tuple(phases),
            plan=plan,
        )

    def scale(
        self,
        gpu_indices: list[int],
        now: float,
        *,
        iterations_done: float,
        iteration_seconds: float,
    ) -> ScalingTranscript:
        """Move the running job to a new worker set without losing progress."""
        if not self.workers:
            raise SchedulingError(f"job {self.job_id!r} is not running; use launch()")
        self._check_indices(gpu_indices)
        if iteration_seconds < 0:
            raise ConfigurationError("iteration_seconds must be >= 0")
        old_count = self.n_workers
        clock = now
        phases: list[PhaseRecord] = []
        clock = self._drain(clock, iteration_seconds, phases)
        clock = self._checkpoint(clock, iterations_done, phases)
        plan = plan_reconfiguration(self.model, self.global_batch, len(gpu_indices))
        clock = self._reconfigure(gpu_indices, plan, clock, phases)
        clock = self._restore(clock, phases)
        clock = self._resume(clock, phases)
        return ScalingTranscript(
            job_id=self.job_id,
            old_workers=old_count,
            new_workers=len(gpu_indices),
            phases=tuple(phases),
            plan=plan,
        )

    def suspend(
        self, now: float, *, iterations_done: float, iteration_seconds: float
    ) -> ScalingTranscript:
        """Checkpoint and release every worker (job waits for capacity)."""
        if not self.workers:
            raise SchedulingError(f"job {self.job_id!r} is not running")
        old_count = self.n_workers
        clock = now
        phases: list[PhaseRecord] = []
        clock = self._drain(clock, iteration_seconds, phases)
        clock = self._checkpoint(clock, iterations_done, phases)
        for worker in self.workers.values():
            worker.transition(WorkerState.STOPPED)
        self.workers.clear()
        return ScalingTranscript(
            job_id=self.job_id,
            old_workers=old_count,
            new_workers=0,
            phases=tuple(phases),
            plan=None,
        )

    def finish(self) -> None:
        """Tear down after completion and reclaim checkpoint storage."""
        for worker in self.workers.values():
            if worker.state is WorkerState.TRAINING:
                worker.transition(WorkerState.PAUSED)
            worker.transition(WorkerState.STOPPED)
        self.workers.clear()
        self.store.forget(self.job_id)

    # ------------------------------------------------------------- phases
    def _drain(
        self, clock: float, iteration_seconds: float, phases: list[PhaseRecord]
    ) -> float:
        end = clock + iteration_seconds
        for worker in self.workers.values():
            worker.transition(WorkerState.PAUSED)
        phases.append(PhaseRecord(ScalingPhase.DRAIN, clock, end))
        return end

    def _checkpoint(
        self, clock: float, iterations_done: float, phases: list[PhaseRecord]
    ) -> float:
        rank0 = self.workers[min(self.workers)]
        rank0.transition(WorkerState.CHECKPOINTING)
        end = clock + self._serialization_seconds()
        self.store.save(
            self.job_id,
            nbytes=self.model.checkpoint_bytes,
            iterations_done=iterations_done,
            now=end,
        )
        self.iterations_done = iterations_done
        rank0.transition(WorkerState.PAUSED)
        phases.append(PhaseRecord(ScalingPhase.CHECKPOINT, clock, end))
        return end

    def _reconfigure(
        self,
        gpu_indices: list[int],
        plan: ReconfigurationPlan,
        clock: float,
        phases: list[PhaseRecord],
    ) -> float:
        target = set(gpu_indices)
        current = set(self.workers)
        for gpu in sorted(current - target):
            self.workers.pop(gpu).transition(WorkerState.STOPPED)
        joining = sorted(target - current)
        for gpu in joining:
            worker = Worker(worker_id=f"{self.job_id}/w{gpu}", gpu_index=gpu)
            worker.transition(WorkerState.INITIALIZING)
            worker.transition(WorkerState.READY)
            self.workers[gpu] = worker
        for shard, gpu in zip(plan.local_batches, sorted(target)):
            self.workers[gpu].local_batch = shard
        end = clock + self.framework_base_s + self.per_worker_init_s * len(joining)
        phases.append(PhaseRecord(ScalingPhase.RECONFIGURE, clock, end))
        return end

    def _restore(self, clock: float, phases: list[PhaseRecord]) -> float:
        checkpoint = self.store.latest(self.job_id)
        self.iterations_done = checkpoint.iterations_done
        end = clock + self._serialization_seconds()
        phases.append(PhaseRecord(ScalingPhase.RESTORE, clock, end))
        return end

    def _resume(self, clock: float, phases: list[PhaseRecord]) -> float:
        for worker in self.workers.values():
            if worker.state is WorkerState.READY:
                worker.transition(WorkerState.TRAINING)
            elif worker.state is WorkerState.PAUSED:
                worker.transition(WorkerState.TRAINING)
        phases.append(PhaseRecord(ScalingPhase.RESUME, clock, clock))
        return clock

    # ------------------------------------------------------------- helpers
    def _check_indices(self, gpu_indices: list[int]) -> None:
        if not gpu_indices:
            raise ConfigurationError("gpu_indices must not be empty")
        if len(set(gpu_indices)) != len(gpu_indices):
            raise ConfigurationError(f"duplicate GPU indices: {gpu_indices}")
        if any(gpu < 0 for gpu in gpu_indices):
            raise ConfigurationError(f"negative GPU index in {gpu_indices}")
        if len(gpu_indices) > self.global_batch:
            raise ConfigurationError(
                f"{len(gpu_indices)} workers cannot share a global batch of "
                f"{self.global_batch}"
            )
