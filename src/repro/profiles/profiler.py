"""Pre-run throughput profiling simulation (paper Section 5 and Fig 12a).

Before scheduling a previously unseen model, ElasticFlow profiles its
throughput at every candidate GPU count and batch size.  Profiling runs a
handful of warm-up and measurement iterations per configuration and stops
growing the GPU count as soon as throughput no longer improves.  This module
reproduces that procedure against the analytic throughput model so that the
profiling *overhead* (the metric Fig 12a reports) can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.profiles.throughput import ThroughputModel

__all__ = ["ProfilePoint", "ProfilingReport", "PreRunProfiler"]


@dataclass(frozen=True)
class ProfilePoint:
    """One measured configuration during pre-run profiling."""

    n_gpus: int
    global_batch: int
    iterations_per_second: float
    seconds_spent: float


@dataclass
class ProfilingReport:
    """Outcome of profiling one model over a set of batch sizes."""

    model_name: str
    points: list[ProfilePoint] = field(default_factory=list)

    @property
    def total_overhead_seconds(self) -> float:
        """Total wall time spent profiling (the Fig 12a metric)."""
        return sum(point.seconds_spent for point in self.points)

    def best_size(self, global_batch: int) -> int:
        """Most efficient GPU count discovered for one batch size."""
        candidates = [p for p in self.points if p.global_batch == global_batch]
        if not candidates:
            raise ConfigurationError(
                f"batch size {global_batch} was not profiled for {self.model_name}"
            )
        return max(candidates, key=lambda p: p.iterations_per_second).n_gpus


class PreRunProfiler:
    """Simulates ElasticFlow's pre-run profiling pass for a new model.

    Args:
        throughput_model: Source of ground-truth iteration times.
        warmup_iterations: Iterations discarded before measuring.
        measure_iterations: Iterations timed per configuration.
        setup_seconds: Fixed per-configuration cost (process launch, CUDA
            context creation, NCCL group setup).
        max_gpus: Upper bound on the profiled GPU count.
    """

    def __init__(
        self,
        throughput_model: ThroughputModel,
        *,
        warmup_iterations: int = 5,
        measure_iterations: int = 20,
        setup_seconds: float = 15.0,
        max_gpus: int = 128,
    ) -> None:
        if warmup_iterations < 0 or measure_iterations < 1:
            raise ConfigurationError(
                "warmup_iterations must be >= 0 and measure_iterations >= 1"
            )
        if setup_seconds < 0:
            raise ConfigurationError(f"setup_seconds must be >= 0, got {setup_seconds}")
        if max_gpus < 1:
            raise ConfigurationError(f"max_gpus must be >= 1, got {max_gpus}")
        self._model = throughput_model
        self._warmup = warmup_iterations
        self._measure = measure_iterations
        self._setup = setup_seconds
        self._max_gpus = max_gpus

    def profile(self, model_name: str, global_batches: list[int]) -> ProfilingReport:
        """Profile one model at each global batch size.

        For each batch size the profiler doubles the GPU count starting from
        one and stops as soon as adding GPUs fails to improve throughput
        (the early-exit rule described in Section 6.6).
        """
        if not global_batches:
            raise ConfigurationError("global_batches must not be empty")
        report = ProfilingReport(model_name=model_name)
        for batch in global_batches:
            curve = self._model.curve(model_name, batch)
            previous_thr = 0.0
            n_gpus = 1
            while n_gpus <= self._max_gpus:
                thr = curve.throughput(n_gpus)
                iterations = self._warmup + self._measure
                seconds = self._setup + iterations * curve.iteration_seconds(n_gpus)
                report.points.append(
                    ProfilePoint(
                        n_gpus=n_gpus,
                        global_batch=batch,
                        iterations_per_second=thr,
                        seconds_spent=seconds,
                    )
                )
                if thr <= previous_thr:
                    break
                previous_thr = thr
                n_gpus *= 2
        return report
