"""Online throughput profiling (paper Section 5, "Throughput profiling").

Pre-run profiles can be stale or systematically biased (different data
pipeline, thermal throttling, a newer driver).  The paper's answer:
"ElasticFlow profiles its throughput during job execution, and constantly
adjusts the profiled throughput and the scheduling decisions accordingly."

:class:`OnlineThroughputModel` implements that loop for the planner.  It
wraps a prior :class:`~repro.profiles.throughput.ThroughputModel` and
maintains an EWMA multiplicative correction per (model, batch, size) from
runtime observations; planning curves apply the per-size correction where
one exists and the configuration's average correction elsewhere (bias is
typically systematic, so one observed size informs the others).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perf.coherence import coherent, mutates
from repro.perf.tables import invalidate_planning_tables
from repro.profiles.throughput import Placement, ScalingCurve, ThroughputModel

__all__ = ["OnlineThroughputModel", "ScaledThroughputModel"]


@dataclass
class _Correction:
    """EWMA of observed/predicted throughput for one configuration size."""

    factor: float = 1.0
    observations: int = 0

    def update(self, ratio: float, alpha: float) -> None:
        if self.observations == 0:
            self.factor = ratio
        else:
            self.factor += alpha * (ratio - self.factor)
        self.observations += 1


class _CorrectedCurve(ScalingCurve):
    """A scaling curve with live multiplicative corrections applied."""

    def __init__(self, base: ScalingCurve, corrections: dict[int, _Correction]):
        super().__init__(
            base.model,
            base.global_batch,
            base.interconnect,
            power_of_two=base.power_of_two,
        )
        self._base = base
        self._live = corrections  # shared, mutated by the owning model

    def _factor_for(self, size: int) -> float:
        correction = self._live.get(size)
        if correction is not None and correction.observations > 0:
            return correction.factor
        observed = [c for c in self._live.values() if c.observations > 0]
        if observed:
            return sum(c.factor for c in observed) / len(observed)
        return 1.0

    def throughput(self, n_gpus: int, placement: Placement | None = None) -> float:
        # Delegate to the (possibly already biased) base curve so that
        # corrections compose: correction x prior, never raw physics.
        return self._base.throughput(n_gpus, placement) * self._factor_for(n_gpus)


@coherent(_corrections="planning_tables")
class OnlineThroughputModel:
    """A planning model that learns corrections from runtime observations.

    Plug it into :class:`~repro.core.scheduler.ElasticFlowPolicy` as
    ``planning_throughput`` and feed it the engine's ``observation_hook``;
    execution still follows the ground-truth model, and planning converges
    toward it.

    Args:
        prior: The (possibly biased) pre-run profile.
        alpha: EWMA weight for new observations.
    """

    def __init__(self, prior: ThroughputModel, *, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.prior = prior
        self.alpha = alpha
        self._corrections: dict[tuple[str, int], dict[int, _Correction]] = {}
        self._curves: dict[tuple[str, int], _CorrectedCurve] = {}
        self.observations = 0

    def _corrections_for(self, model_name: str, batch: int) -> dict[int, _Correction]:
        # lint: disable=CC002 -- lazy container init; an empty dict changes no curve answer
        return self._corrections.setdefault((model_name, batch), {})

    def curve(self, model_name: str, global_batch: int) -> ScalingCurve:
        """The live-corrected planning curve for one configuration.

        The curve object is cached per configuration but its answers are
        always live: it reads the shared correction state on every call.
        Returning a stable object is what lets the planning-table memo
        (:mod:`repro.perf.tables`) key by curve identity; :meth:`observe`
        invalidates those tables whenever the corrections move.
        """
        key = (model_name, global_batch)
        curve = self._curves.get(key)
        if curve is None:
            base = self.prior.curve(model_name, global_batch)
            curve = _CorrectedCurve(base, self._corrections_for(model_name, global_batch))
            self._curves[key] = curve
        return curve

    @mutates("_corrections")
    def observe(
        self,
        model_name: str,
        global_batch: int,
        n_gpus: int,
        observed_rate: float,
    ) -> None:
        """Fold one runtime throughput measurement into the corrections.

        Args:
            model_name: Job's model.
            global_batch: Job's global batch size.
            n_gpus: Worker count the rate was measured at.
            observed_rate: Measured iterations/second.

        Raises:
            ConfigurationError: On non-positive inputs.
        """
        if n_gpus < 1:
            raise ConfigurationError(f"n_gpus must be >= 1, got {n_gpus}")
        if observed_rate <= 0:
            raise ConfigurationError(
                f"observed_rate must be > 0, got {observed_rate}"
            )
        base = self.prior.curve(model_name, global_batch)
        size = base.best_size(n_gpus)
        predicted = base.throughput(size)
        corrections = self._corrections_for(model_name, global_batch)
        corrections.setdefault(size, _Correction()).update(
            observed_rate / predicted, self.alpha
        )
        self.observations += 1
        # A correction shifts every size of this configuration's curve (the
        # unobserved sizes borrow the average factor), so any memoized
        # planning tables derived from it are now stale.  Invalidate
        # unconditionally: `curve()` returns the cached corrected curve or
        # creates it, so the hook runs on every path through this mutator.
        invalidate_planning_tables(self.curve(model_name, global_batch))

    def correction_factor(self, model_name: str, global_batch: int, size: int) -> float:
        """Current correction at one size (1.0 before any observation)."""
        correction = self._corrections_for(model_name, global_batch).get(size)
        if correction is None or correction.observations == 0:
            return 1.0
        return correction.factor


class ScaledThroughputModel:
    """A uniformly biased profile — for studying stale/optimistic priors.

    ``factor > 1`` overestimates throughput (the dangerous direction: the
    planner promises deadlines the hardware cannot keep).
    """

    def __init__(self, base: ThroughputModel, factor: float) -> None:
        if factor <= 0:
            raise ConfigurationError(f"factor must be > 0, got {factor}")
        self.base = base
        self.factor = factor
        self._bias: dict[tuple[str, int], dict[int, _Correction]] = {}
        self._curves: dict[tuple[str, int], _CorrectedCurve] = {}

    def curve(self, model_name: str, global_batch: int) -> ScalingCurve:
        key = (model_name, global_batch)
        curve = self._curves.get(key)
        if curve is None:
            fixed = _Correction()
            fixed.update(self.factor, alpha=1.0)
            # One shared pseudo-observation biases every size uniformly.
            self._bias[key] = {0: fixed}
            # The bias never changes, so the cached curve (and any planning
            # tables memoized from it) stays valid for the model's lifetime.
            curve = _CorrectedCurve(self.base.curve(model_name, global_batch), self._bias[key])
            self._curves[key] = curve
        return curve
