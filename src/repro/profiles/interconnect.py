"""Interconnect specifications for the throughput model.

The paper's testbed nodes are DGX-A100-like: eight A100 GPUs fully connected
by third-generation NVLink inside a node, and eight HDR InfiniBand HCAs per
node for inter-node traffic.  We capture each link class with an alpha--beta
pair (per-message latency and effective *algorithm* bandwidth for NCCL-style
ring all-reduce, which is lower than line rate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["LinkSpec", "InterconnectSpec"]


@dataclass(frozen=True)
class LinkSpec:
    """A single link class modelled as an alpha--beta channel.

    Attributes:
        alpha_s: Per-communication-step latency in seconds.
        beta_bytes_per_s: Effective algorithm bandwidth in bytes/second.
    """

    alpha_s: float
    beta_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.alpha_s < 0:
            raise ConfigurationError(f"alpha_s must be >= 0, got {self.alpha_s}")
        if self.beta_bytes_per_s <= 0:
            raise ConfigurationError(
                f"beta_bytes_per_s must be > 0, got {self.beta_bytes_per_s}"
            )

    def transfer_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over this link, including one latency term."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return self.alpha_s + nbytes / self.beta_bytes_per_s


@dataclass(frozen=True)
class InterconnectSpec:
    """Cluster interconnect description used by the communication model.

    The defaults are calibrated so that the two anchor measurements quoted in
    the paper hold (see :mod:`repro.profiles.throughput` tests): an effective
    intra-node NVLink all-reduce bandwidth of 200 GB/s and an effective
    9 GB/s per InfiniBand HCA, with one HCA per GPU (eight per node).

    Attributes:
        gpus_per_node: Number of GPUs in one server.
        hcas_per_node: Number of inter-node NICs in one server.  Inter-node
            ring bandwidth scales with ``min(gpus used per node, hcas)``.
        intra_node: Link class used when a job fits in one server.
        inter_node: Link class of a *single* HCA; aggregated bandwidth is
            derived from the number of usable HCAs.
    """

    gpus_per_node: int = 8
    hcas_per_node: int = 8
    intra_node: LinkSpec = field(
        default_factory=lambda: LinkSpec(alpha_s=8e-6, beta_bytes_per_s=200e9)
    )
    inter_node: LinkSpec = field(
        default_factory=lambda: LinkSpec(alpha_s=80e-6, beta_bytes_per_s=9e9)
    )

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ConfigurationError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )
        if self.hcas_per_node < 1:
            raise ConfigurationError(
                f"hcas_per_node must be >= 1, got {self.hcas_per_node}"
            )

    def inter_node_bandwidth(self, gpus_per_node_used: int) -> float:
        """Aggregated inter-node algorithm bandwidth in bytes/second.

        NCCL builds one ring per usable HCA, so a job using ``k`` GPUs per
        node drives ``min(k, hcas_per_node)`` HCAs in parallel.
        """
        if gpus_per_node_used < 1:
            raise ConfigurationError(
                f"gpus_per_node_used must be >= 1, got {gpus_per_node_used}"
            )
        usable = min(gpus_per_node_used, self.hcas_per_node)
        return self.inter_node.beta_bytes_per_s * usable


# Default interconnect matching the paper's testbed (Section 6.1).
DGX_A100_INTERCONNECT = InterconnectSpec()
