"""Placement-aware throughput model and scaling curves.

A :class:`ScalingCurve` is the object the scheduler algorithms actually
consume: for one (model, global batch size) pair it maps a GPU count to an
iterations/second throughput, assuming the *compact* placement that buddy
allocation guarantees (paper Section 4.3).  Curves exhibit the concave,
diminishing-returns shape the paper's design is built around (Fig 2a).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError
from repro.profiles.comm import ring_allreduce_seconds
from repro.profiles.interconnect import DGX_A100_INTERCONNECT, InterconnectSpec
from repro.profiles.modelzoo import ModelProfile, get_model

__all__ = [
    "Placement",
    "compact_placement",
    "ScalingCurve",
    "ThroughputModel",
]


@dataclass(frozen=True)
class Placement:
    """Geometry of a worker set: how many GPUs over how many nodes."""

    n_gpus: int
    nodes_spanned: int

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ConfigurationError(f"n_gpus must be >= 1, got {self.n_gpus}")
        if not 1 <= self.nodes_spanned <= self.n_gpus:
            raise ConfigurationError(
                f"nodes_spanned must be in [1, {self.n_gpus}], "
                f"got {self.nodes_spanned}"
            )


def compact_placement(n_gpus: int, gpus_per_node: int) -> Placement:
    """The densest possible placement: fill whole nodes first.

    This is the placement buddy allocation always achieves for power-of-two
    block sizes, which is why the scheduler can plan against a single scaling
    curve per job.
    """
    if gpus_per_node < 1:
        raise ConfigurationError(f"gpus_per_node must be >= 1, got {gpus_per_node}")
    nodes = max(1, -(-n_gpus // gpus_per_node))
    return Placement(n_gpus=n_gpus, nodes_spanned=nodes)


class ScalingCurve:
    """Throughput of one job configuration as a function of GPU count.

    The curve is evaluated lazily and cached; ``throughput(n)`` is the raw
    model output while ``effective_throughput(n)`` is what a rational job
    achieves when *given* ``n`` GPUs (it may leave some idle and run at the
    best feasible size ``<= n``), which makes the effective curve monotone
    non-decreasing — the property the planning algorithms rely on.
    """

    def __init__(
        self,
        model: ModelProfile,
        global_batch: int,
        interconnect: InterconnectSpec,
        *,
        power_of_two: bool = True,
    ) -> None:
        if global_batch < 1:
            raise ConfigurationError(f"global_batch must be >= 1, got {global_batch}")
        self.model = model
        self.global_batch = global_batch
        self.interconnect = interconnect
        self.power_of_two = power_of_two
        self._raw: dict[int, float] = {}

    # ------------------------------------------------------------------ raw
    def iteration_seconds(self, n_gpus: int, placement: Placement | None = None) -> float:
        """Wall time of one training iteration on ``n_gpus`` workers."""
        if placement is None:
            placement = compact_placement(n_gpus, self.interconnect.gpus_per_node)
        elif placement.n_gpus != n_gpus:
            raise ConfigurationError(
                f"placement is for {placement.n_gpus} GPUs, asked about {n_gpus}"
            )
        local_batch = max(1, -(-self.global_batch // n_gpus))
        compute = self.model.compute_seconds(local_batch)
        comm = ring_allreduce_seconds(
            self.model.gradient_bytes,
            n_gpus,
            placement.nodes_spanned,
            self.interconnect,
        )
        return compute + comm

    def throughput(self, n_gpus: int, placement: Placement | None = None) -> float:
        """Raw throughput in iterations/second at exactly ``n_gpus`` workers."""
        if placement is not None:
            return 1.0 / self.iteration_seconds(n_gpus, placement)
        if n_gpus not in self._raw:
            self._raw[n_gpus] = 1.0 / self.iteration_seconds(n_gpus)
        return self._raw[n_gpus]

    def samples_per_second(self, n_gpus: int, placement: Placement | None = None) -> float:
        """Raw throughput in training samples/second."""
        return self.global_batch * self.throughput(n_gpus, placement)

    def speedup(self, n_gpus: int) -> float:
        """Raw throughput relative to a single GPU (compact placement)."""
        return self.throughput(n_gpus) / self.throughput(1)

    def efficiency(self, n_gpus: int) -> float:
        """Fraction of linear scaling achieved at ``n_gpus``."""
        return self.speedup(n_gpus) / n_gpus

    # ------------------------------------------------------------ effective
    def allowed_sizes(self, max_gpus: int) -> list[int]:
        """Worker counts a job may run at, up to ``max_gpus``."""
        if max_gpus < 1:
            raise ConfigurationError(f"max_gpus must be >= 1, got {max_gpus}")
        if self.power_of_two:
            sizes = []
            size = 1
            while size <= max_gpus:
                sizes.append(size)
                size *= 2
            return sizes
        return list(range(1, max_gpus + 1))

    def best_size(self, available_gpus: int) -> int:
        """The worker count a job actually uses when given ``available_gpus``.

        Returns 0 when no GPU is available.
        """
        if available_gpus <= 0:
            return 0
        best, best_thr = 1, self.throughput(1)
        for size in self.allowed_sizes(available_gpus):
            thr = self.throughput(size)
            if thr > best_thr:
                best, best_thr = size, thr
        return best

    def effective_throughput(self, available_gpus: int) -> float:
        """Iterations/second when given ``available_gpus`` (monotone)."""
        size = self.best_size(available_gpus)
        return self.throughput(size) if size else 0.0

    def max_useful_gpus(self, cap: int = 1 << 16) -> int:
        """Smallest worker count achieving peak throughput (paper's EDF cap).

        Scanning stops as soon as growing the job stops helping, mirroring
        the pre-run profiler's early exit (Section 6.6).
        """
        best, best_thr = 1, self.throughput(1)
        for size in self.allowed_sizes(cap):
            if size == 1:
                continue
            thr = self.throughput(size)
            if thr > best_thr:
                best, best_thr = size, thr
            elif size > 2 * best:
                break
        return best

    def table(self, max_gpus: int) -> np.ndarray:
        """Effective throughput lookup table ``T[0..max_gpus]``.

        ``T[x]`` is the iterations/second the job achieves when handed ``x``
        GPUs; ``T[0] == 0``.  The table is monotone non-decreasing, which the
        progressive-filling planner relies on.
        """
        values = np.zeros(max_gpus + 1, dtype=np.float64)
        best = 0.0
        allowed = set(self.allowed_sizes(max_gpus))
        for x in range(1, max_gpus + 1):
            if x in allowed:
                best = max(best, self.throughput(x))
            values[x] = best
        return values


class ThroughputModel:
    """Factory for scaling curves over one cluster interconnect."""

    def __init__(
        self,
        interconnect: InterconnectSpec = DGX_A100_INTERCONNECT,
        *,
        power_of_two: bool = True,
    ) -> None:
        self.interconnect = interconnect
        self.power_of_two = power_of_two
        self._curve_cached = lru_cache(maxsize=None)(self._build_curve)

    def _build_curve(self, model_name: str, global_batch: int) -> ScalingCurve:
        return ScalingCurve(
            get_model(model_name),
            global_batch,
            self.interconnect,
            power_of_two=self.power_of_two,
        )

    def curve(self, model_name: str, global_batch: int) -> ScalingCurve:
        """Scaling curve for one (model, global batch) configuration."""
        return self._curve_cached(model_name, global_batch)
