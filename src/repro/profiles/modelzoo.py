"""The DNN model zoo used throughout the evaluation (paper Table 1).

Each :class:`ModelProfile` carries just enough information to drive the
analytic throughput model: gradient volume (what the all-reduce moves every
iteration), a linear per-sample compute cost, and the largest per-GPU batch
that fits in 40 GB of A100 memory (larger local batches fall back to
gradient accumulation).

Compute coefficients are calibrated to plausible A100 speeds; the paper's
algorithms only depend on the *shape* of the resulting scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, UnknownModelError

__all__ = [
    "ModelProfile",
    "MODEL_ZOO",
    "TABLE1_SETTINGS",
    "get_model",
    "list_models",
]


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one trainable DNN.

    Attributes:
        name: Canonical model name (zoo key).
        task: Workload family from Table 1 (``cv``, ``nlp``, or ``speech``).
        dataset: Dataset named in Table 1 (informational).
        parameters_m: Number of trainable parameters, in millions.
        compute_base_ms: Fixed per-iteration cost per GPU (kernel launches,
            optimizer step, data loading) in milliseconds.
        compute_per_sample_ms: Marginal cost of one training sample in
            milliseconds on a single A100.
        max_local_batch: Largest per-GPU batch that fits in GPU memory.
        accumulation_overhead_ms: Extra cost per additional gradient
            accumulation micro-batch, in milliseconds.
        checkpoint_mb_per_s: Effective checkpoint/restore serialisation
            bandwidth for this model (drives scaling overheads, Fig 12b).
    """

    name: str
    task: str
    dataset: str
    parameters_m: float
    compute_base_ms: float
    compute_per_sample_ms: float
    max_local_batch: int
    accumulation_overhead_ms: float = 1.0
    checkpoint_mb_per_s: float = 2000.0

    def __post_init__(self) -> None:
        if self.parameters_m <= 0:
            raise ConfigurationError(f"parameters_m must be > 0: {self}")
        if self.compute_base_ms < 0 or self.compute_per_sample_ms <= 0:
            raise ConfigurationError(f"compute coefficients invalid: {self}")
        if self.max_local_batch < 1:
            raise ConfigurationError(f"max_local_batch must be >= 1: {self}")

    @property
    def gradient_bytes(self) -> float:
        """Bytes moved by one all-reduce (fp32 gradients)."""
        return self.parameters_m * 1e6 * 4.0

    @property
    def checkpoint_bytes(self) -> float:
        """Bytes serialised by a checkpoint (weights + optimizer moments)."""
        return 3.0 * self.gradient_bytes

    def compute_seconds(self, local_batch: int) -> float:
        """Single-GPU forward+backward time for one iteration.

        Local batches above ``max_local_batch`` are executed with gradient
        accumulation, which adds a small per-micro-batch overhead but keeps
        any job runnable on a single GPU.
        """
        if local_batch < 1:
            raise ConfigurationError(f"local_batch must be >= 1, got {local_batch}")
        micro_batches = -(-local_batch // self.max_local_batch)  # ceil division
        accumulation = (micro_batches - 1) * self.accumulation_overhead_ms
        millis = (
            self.compute_base_ms
            + self.compute_per_sample_ms * local_batch
            + accumulation
        )
        return millis / 1e3


def _zoo(*profiles: ModelProfile) -> dict[str, ModelProfile]:
    return {profile.name: profile for profile in profiles}


#: All models from Table 1 of the paper.
MODEL_ZOO: dict[str, ModelProfile] = _zoo(
    ModelProfile(
        name="resnet50",
        task="cv",
        dataset="imagenet",
        parameters_m=25.6,
        compute_base_ms=4.0,
        compute_per_sample_ms=0.375,
        max_local_batch=256,
    ),
    ModelProfile(
        name="vgg16",
        task="cv",
        dataset="imagenet",
        parameters_m=138.4,
        compute_base_ms=5.0,
        compute_per_sample_ms=0.90,
        max_local_batch=128,
    ),
    ModelProfile(
        name="inceptionv3",
        task="cv",
        dataset="imagenet",
        parameters_m=23.8,
        compute_base_ms=6.0,
        compute_per_sample_ms=0.55,
        max_local_batch=192,
    ),
    ModelProfile(
        name="bert",
        task="nlp",
        dataset="cola",
        parameters_m=110.0,
        compute_base_ms=8.0,
        compute_per_sample_ms=1.40,
        max_local_batch=64,
    ),
    ModelProfile(
        name="gpt2",
        task="nlp",
        dataset="aclimdb",
        parameters_m=124.0,
        compute_base_ms=10.0,
        compute_per_sample_ms=1.80,
        max_local_batch=32,
    ),
    ModelProfile(
        name="deepspeech2",
        task="speech",
        dataset="librispeech",
        parameters_m=87.0,
        compute_base_ms=12.0,
        compute_per_sample_ms=3.20,
        max_local_batch=32,
    ),
)

#: The (model, global batch size) pool jobs are drawn from (paper Table 1).
TABLE1_SETTINGS: tuple[tuple[str, int], ...] = (
    ("resnet50", 64),
    ("resnet50", 128),
    ("resnet50", 256),
    ("vgg16", 64),
    ("vgg16", 128),
    ("vgg16", 256),
    ("inceptionv3", 64),
    ("inceptionv3", 128),
    ("bert", 64),
    ("bert", 128),
    ("gpt2", 128),
    ("gpt2", 256),
    ("deepspeech2", 32),
    ("deepspeech2", 64),
)


def get_model(name: str) -> ModelProfile:
    """Look up a model profile by name.

    Raises:
        UnknownModelError: If ``name`` is not in the zoo.
    """
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise UnknownModelError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> list[str]:
    """Names of every model in the zoo, sorted."""
    return sorted(MODEL_ZOO)
