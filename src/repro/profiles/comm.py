"""Ring all-reduce communication cost model.

Data-parallel training synchronises gradients once per iteration with an
all-reduce.  We model the standard ring algorithm: ``2 * (n - 1)`` steps,
each moving ``gradient_bytes / n``, bottlenecked by the slowest link the
ring crosses.  For a job whose workers span several nodes, the aggregate
inter-node bandwidth scales with the number of NICs the job can drive
(``min(gpus per node used, hcas per node)``), which is what makes placement
matter (paper Fig 2b).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.profiles.interconnect import InterconnectSpec

__all__ = ["ring_allreduce_seconds"]


def ring_allreduce_seconds(
    gradient_bytes: float,
    n_gpus: int,
    nodes_spanned: int,
    interconnect: InterconnectSpec,
) -> float:
    """Time for one gradient all-reduce, in seconds.

    Args:
        gradient_bytes: Total gradient volume per worker.
        n_gpus: Number of data-parallel workers.
        nodes_spanned: How many servers the workers are spread over.
        interconnect: Link characteristics of the cluster.

    Returns:
        All-reduce latency in seconds; ``0.0`` for a single worker.

    Raises:
        ConfigurationError: If the worker/node geometry is impossible.
    """
    if n_gpus < 1:
        raise ConfigurationError(f"n_gpus must be >= 1, got {n_gpus}")
    if nodes_spanned < 1:
        raise ConfigurationError(f"nodes_spanned must be >= 1, got {nodes_spanned}")
    if nodes_spanned > n_gpus:
        raise ConfigurationError(
            f"cannot span {nodes_spanned} nodes with only {n_gpus} GPUs"
        )
    if gradient_bytes < 0:
        raise ConfigurationError(f"gradient_bytes must be >= 0, got {gradient_bytes}")
    if n_gpus == 1:
        return 0.0

    per_node = -(-n_gpus // nodes_spanned)  # ceil: densest node decides NIC use
    if nodes_spanned == 1:
        if per_node > interconnect.gpus_per_node:
            raise ConfigurationError(
                f"{n_gpus} GPUs do not fit in one node of "
                f"{interconnect.gpus_per_node}"
            )
        alpha = interconnect.intra_node.alpha_s
        bandwidth = interconnect.intra_node.beta_bytes_per_s
    else:
        alpha = interconnect.inter_node.alpha_s
        bandwidth = interconnect.inter_node_bandwidth(per_node)

    steps = 2 * (n_gpus - 1)
    volume = 2.0 * (n_gpus - 1) / n_gpus * gradient_bytes
    return steps * alpha + volume / bandwidth
