"""Workload profiles: DNN model zoo and placement-aware throughput modelling.

This subpackage replaces the paper's measured A100 throughput profiles with
an analytic latency--bandwidth (alpha--beta) ring-allreduce cost model.  The
scheduler algorithms only ever consume the resulting concave iterations/sec
tables, so an analytic model calibrated against the paper's anchor points
(VGG16 ~76 % efficiency at 8 GPUs, ResNet50 same-node vs. 8-node ~2.17x)
exercises exactly the same code paths.
"""

from repro.profiles.interconnect import InterconnectSpec, LinkSpec
from repro.profiles.modelzoo import (
    MODEL_ZOO,
    TABLE1_SETTINGS,
    ModelProfile,
    get_model,
    list_models,
)
from repro.profiles.comm import ring_allreduce_seconds
from repro.profiles.throughput import (
    Placement,
    ScalingCurve,
    ThroughputModel,
    compact_placement,
)
from repro.profiles.profiler import PreRunProfiler, ProfilingReport
from repro.profiles.online import OnlineThroughputModel, ScaledThroughputModel

__all__ = [
    "InterconnectSpec",
    "LinkSpec",
    "MODEL_ZOO",
    "TABLE1_SETTINGS",
    "ModelProfile",
    "get_model",
    "list_models",
    "ring_allreduce_seconds",
    "Placement",
    "ScalingCurve",
    "ThroughputModel",
    "compact_placement",
    "PreRunProfiler",
    "ProfilingReport",
    "OnlineThroughputModel",
    "ScaledThroughputModel",
]
