"""The serverless front end (paper Section 3.1).

:class:`ElasticFlowPlatform` is the user-facing surface of the system: a
DL developer *submits a function* — model, hyper-parameters, termination
condition, deadline — and gets back a handle; the platform answers
admission immediately and manages all resources behind the scenes.  The
platform wraps the simulator in an interactive session, so jobs can be
submitted while earlier ones run — the shape of a real service, rather
than the replay-a-trace shape of the experiment harness.

Example::

    platform = ElasticFlowPlatform(ClusterSpec(n_nodes=2, gpus_per_node=8))
    handle = platform.submit(model_name="resnet50", global_batch_size=128,
                             max_iterations=60_000, deadline_in=3600.0)
    if handle.admitted:
        platform.run_until(platform.now + 7200.0)
        print(handle.status, handle.progress)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cluster.topology import ClusterSpec
from repro.core.job import JobSpec, JobStatus
from repro.core.scheduler import ElasticFlowPolicy
from repro.errors import ConfigurationError, SchedulingError
from repro.profiles.throughput import ThroughputModel
from repro.sim.engine import Simulator
from repro.sim.executor import ElasticExecutor
from repro.sim.interface import SchedulerPolicy
from repro.sim.metrics import SimulationResult

__all__ = ["JobHandle", "ElasticFlowPlatform"]


@dataclass(frozen=True)
class JobHandle:
    """A submitted job, as seen by its owner."""

    job_id: str
    _platform: "ElasticFlowPlatform"

    @property
    def _job(self):
        job = self._platform._simulator.jobs.get(self.job_id)
        if job is None:
            raise SchedulingError(f"job {self.job_id!r} not yet processed")
        return job

    @property
    def status(self) -> JobStatus:
        return self._job.status

    @property
    def admitted(self) -> bool:
        """Whether the platform guaranteed this job's deadline."""
        return self._job.admission_time is not None

    @property
    def progress(self) -> float:
        """Fraction of the termination condition reached, in [0, 1]."""
        job = self._job
        return job.iterations_done / job.spec.max_iterations

    @property
    def gpus(self) -> int:
        return self._job.n_gpus

    @property
    def completion_time(self) -> float | None:
        return self._job.completion_time

    @property
    def met_deadline(self) -> bool:
        return self._job.met_deadline()


class ElasticFlowPlatform:
    """An interactive ElasticFlow deployment over a simulated cluster.

    Args:
        cluster: Cluster shape.
        policy: Scheduler; defaults to ElasticFlow with the recommended
            overhead-protection knobs.
        throughput: Profiled scaling curves (a default model if omitted).
        slot_seconds: Scheduling interval.
        executor: Scaling-overhead model.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        policy: SchedulerPolicy | None = None,
        throughput: ThroughputModel | None = None,
        slot_seconds: float = 600.0,
        executor: ElasticExecutor | None = None,
    ) -> None:
        self.cluster = cluster
        self._policy = policy or ElasticFlowPolicy(
            safety_margin=0.03,
            deadline_padding_s=60.0,
            stability_threshold=0.3,
        )
        self._simulator = Simulator(
            cluster,
            self._policy,
            [],
            throughput=throughput,
            slot_seconds=slot_seconds,
            executor=executor,
        )
        self._auto_ids = itertools.count(1)

    # ------------------------------------------------------------- clock
    @property
    def now(self) -> float:
        """Current platform time (seconds)."""
        return self._simulator.now

    def run_until(self, time: float) -> None:
        """Advance the platform clock, executing everything due."""
        self._simulator.run_until(time)

    def drain(self) -> SimulationResult:
        """Run until every submitted job has completed or been dropped."""
        return self._simulator.run()

    def results(self) -> SimulationResult:
        """Metrics for everything processed so far."""
        return self._simulator.result()

    # ------------------------------------------------------------ jobs API
    def submit(
        self,
        *,
        model_name: str,
        global_batch_size: int,
        max_iterations: int,
        deadline_in: float | None = None,
        job_id: str | None = None,
        user: str = "default",
    ) -> JobHandle:
        """Submit a training function (Section 3.1's serverless interface).

        Args:
            model_name: Model-zoo key of the DNN to train.
            global_batch_size: Training hyper-parameter; the platform owns
                the per-worker split.
            max_iterations: Termination condition.
            deadline_in: Seconds from *now* until the deadline; ``None``
                submits a best-effort job.
            job_id: Optional explicit id (auto-generated otherwise).
            user: Tenant, for operator policies.

        Returns:
            A handle whose ``admitted`` property answers the admission
            decision immediately.
        """
        if deadline_in is not None and deadline_in <= 0:
            raise ConfigurationError(
                f"deadline_in must be > 0 seconds, got {deadline_in}"
            )
        job_id = job_id or f"job-{next(self._auto_ids):05d}"
        spec = JobSpec(
            job_id=job_id,
            model_name=model_name,
            global_batch_size=global_batch_size,
            max_iterations=max_iterations,
            submit_time=self.now,
            deadline=None if deadline_in is None else self.now + deadline_in,
            user=user,
        )
        self._simulator.submit(spec)
        # Process the arrival immediately so admission is answered now.
        self._simulator.run_until(self.now)
        return JobHandle(job_id=job_id, _platform=self)

    def handle(self, job_id: str) -> JobHandle:
        """Re-attach to a previously submitted job."""
        if job_id not in self._simulator.jobs:
            raise SchedulingError(f"unknown job {job_id!r}")
        return JobHandle(job_id=job_id, _platform=self)

    # ---------------------------------------------------------- telemetry
    @property
    def gpus_in_use(self) -> int:
        return sum(
            job.n_gpus
            for job in self._simulator.jobs.values()
            if job.status is JobStatus.RUNNING
        )

    @property
    def active_jobs(self) -> list[str]:
        return sorted(
            job.job_id for job in self._simulator.jobs.values() if job.is_active
        )
