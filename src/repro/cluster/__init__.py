"""Cluster substrate: GPU topology, buddy allocation, and job placement.

ElasticFlow organises the cluster's GPUs as a multi-layer hierarchical tree
(paper Fig 5) and places jobs with best-fit buddy allocation so that every
power-of-two job is topologically compact.  Combined with migration-based
defragmentation this guarantees a job can always be placed whenever enough
GPUs are idle anywhere in the cluster, which is what lets the scheduler
reason about a single scaling curve per job (Section 4.3).
"""

from repro.cluster.topology import (
    ClusterSpec,
    TopologyLevel,
    TopologyNode,
    build_topology,
)
from repro.cluster.buddy import Block, BuddyAllocator
from repro.cluster.placement import JobPlacement, PlacementManager
from repro.cluster.visualize import occupancy_legend, render_occupancy

__all__ = [
    "ClusterSpec",
    "TopologyLevel",
    "TopologyNode",
    "build_topology",
    "Block",
    "BuddyAllocator",
    "JobPlacement",
    "PlacementManager",
    "render_occupancy",
    "occupancy_legend",
]
