"""ASCII rendering of cluster occupancy.

A placement bug is much easier to see than to deduce; this module renders
the buddy-allocated GPU space one server per line, with one letter per
job, ``.`` for idle GPUs, and ``X`` for failed nodes.  Used by the
examples and handy in a debugger:

    node  0 | a a a a a a a a
    node  1 | b b b b . . . .
    node  2 | X X X X X X X X
"""

from __future__ import annotations

import string

from repro.cluster.placement import PlacementManager

__all__ = ["render_occupancy", "occupancy_legend"]

_SYMBOLS = string.ascii_lowercase + string.ascii_uppercase + string.digits


def _symbol_map(manager: PlacementManager) -> dict[str, str]:
    jobs = manager.placed_jobs
    return {
        job_id: _SYMBOLS[index % len(_SYMBOLS)] for index, job_id in enumerate(jobs)
    }


def render_occupancy(manager: PlacementManager) -> str:
    """One line per server; a letter per occupied GPU, ``.`` idle, ``X`` failed."""
    spec = manager.spec
    cells = ["."] * spec.total_gpus
    for job_id, symbol in _symbol_map(manager).items():
        for gpu in manager.placement_of(job_id).gpu_indices:
            cells[gpu] = symbol
    for node in manager.failed_nodes:
        base = node * spec.gpus_per_node
        for gpu in range(base, base + spec.gpus_per_node):
            cells[gpu] = "X"
    lines = []
    for node in range(spec.n_nodes):
        base = node * spec.gpus_per_node
        row = " ".join(cells[base : base + spec.gpus_per_node])
        lines.append(f"node {node:2d} | {row}")
    return "\n".join(lines)


def occupancy_legend(manager: PlacementManager) -> str:
    """Which letter stands for which job (plus idle/failed markers)."""
    entries = [
        f"{symbol} = {job_id}" for job_id, symbol in _symbol_map(manager).items()
    ]
    entries.append(". = idle")
    if manager.failed_nodes:
        entries.append("X = failed node")
    return "\n".join(entries)
