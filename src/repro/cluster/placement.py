"""Topology-aware job placement (paper Section 4.3).

The :class:`PlacementManager` combines the topology with the buddy allocator
and adds migration-based defragmentation: when a job's block cannot be carved
out but enough GPUs are idle cluster-wide, running jobs are repacked (the
paper's CoDDL-style migration) so the request always succeeds.  Callers are
told which jobs migrated so the simulator can charge them the migration
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.buddy import Block, BuddyAllocator
from repro.cluster.topology import ClusterSpec
from repro.errors import AllocationError, PlacementError

__all__ = ["JobPlacement", "PlacementManager"]


@dataclass(frozen=True)
class JobPlacement:
    """Where one job runs.

    Attributes:
        job_id: Owning job.
        block: The GPU index block assigned by the buddy allocator.
        nodes_spanned: Number of servers the block touches (drives the
            placement-dependent scaling curve).
    """

    job_id: str
    block: Block
    nodes_spanned: int

    @property
    def n_gpus(self) -> int:
        return self.block.size

    @property
    def gpu_indices(self) -> range:
        return self.block.gpu_indices


class PlacementManager:
    """Tracks which GPUs every running job occupies.

    Args:
        spec: Cluster shape; ``spec.total_gpus`` must be a power of two.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self._allocator = BuddyAllocator(spec.total_gpus)
        self._blocks: dict[str, Block] = {}
        self._failed_nodes: dict[int, Block] = {}

    # ----------------------------------------------------------- inspection
    @property
    def total_gpus(self) -> int:
        return self.spec.total_gpus

    @property
    def free_gpus(self) -> int:
        return self._allocator.free_gpus

    @property
    def placed_jobs(self) -> list[str]:
        return sorted(self._blocks)

    def placement_of(self, job_id: str) -> JobPlacement:
        """Current placement of a job.

        Raises:
            PlacementError: If the job is not placed.
        """
        block = self._blocks.get(job_id)
        if block is None:
            raise PlacementError(f"job {job_id!r} is not placed")
        return self._to_placement(job_id, block)

    def is_placed(self, job_id: str) -> bool:
        return job_id in self._blocks

    def block_of(self, job_id: str) -> Block:
        """The raw block of a placed job (no derived-placement construction).

        Raises:
            PlacementError: If the job is not placed.
        """
        block = self._blocks.get(job_id)
        if block is None:
            raise PlacementError(f"job {job_id!r} is not placed")
        return block

    # ------------------------------------------------------------- mutation
    def place(self, job_id: str, n_gpus: int) -> tuple[JobPlacement, list[str]]:
        """Place a new job on ``n_gpus`` GPUs.

        Returns the placement plus the ids of jobs that had to migrate to
        defragment the cluster (possibly empty).

        Raises:
            PlacementError: If the job is already placed, or the cluster
                genuinely lacks ``n_gpus`` idle GPUs.
        """
        if job_id in self._blocks:
            raise PlacementError(f"job {job_id!r} is already placed")
        if n_gpus > self._allocator.free_gpus:
            raise PlacementError(
                f"cannot place {job_id!r}: wants {n_gpus} GPUs, "
                f"{self._allocator.free_gpus} idle"
            )
        migrated = self._ensure_block_available(n_gpus)
        try:
            block = self._allocator.allocate(n_gpus)
        except AllocationError as exc:  # pragma: no cover - invariant guard
            raise PlacementError(
                f"buddy invariant violated placing {job_id!r}: {exc}"
            ) from exc
        self._blocks[job_id] = block
        return self._to_placement(job_id, block), migrated

    def release(self, job_id: str) -> None:
        """Free a job's GPUs.

        Raises:
            PlacementError: If the job is not placed.
        """
        block = self._blocks.pop(job_id, None)
        if block is None:
            raise PlacementError(f"job {job_id!r} is not placed")
        self._allocator.free(block)

    def resize(self, job_id: str, n_gpus: int) -> tuple[JobPlacement, list[str]]:
        """Change a placed job's GPU count (elastic scaling).

        The job keeps its block when the new size nests inside the old one;
        otherwise its old block is released and a fresh one is carved out
        (counting as a migration of the resized job itself is the caller's
        concern — the returned list only names *other* jobs moved by
        defragmentation).
        """
        old = self._blocks.get(job_id)
        if old is None:
            raise PlacementError(f"job {job_id!r} is not placed")
        if n_gpus == old.size:
            return self._to_placement(job_id, old), []
        if n_gpus < old.size:
            # Shrink in place: keep the aligned prefix, free the remainder.
            new_block = self._allocator.shrink(old, n_gpus)
            self._blocks[job_id] = new_block
            return self._to_placement(job_id, new_block), []
        growth = n_gpus - old.size
        if growth > self._allocator.free_gpus:
            raise PlacementError(
                f"cannot grow {job_id!r} to {n_gpus} GPUs: "
                f"only {self._allocator.free_gpus} idle"
            )
        self._allocator.free(old)
        del self._blocks[job_id]
        try:
            migrated = self._ensure_block_available(n_gpus)
            block = self._allocator.allocate(n_gpus)
        except PlacementError:
            # Growth impossible (e.g. failed nodes fragment the space):
            # restore the job's original block — or, if a repack already
            # claimed that exact range, any block of the original size —
            # and report the failure.
            try:
                restored = self._allocator.reserve_exact(old.offset, old.size)
            except AllocationError:
                restored = self._allocator.allocate(old.size)
            self._blocks[job_id] = restored
            raise
        self._blocks[job_id] = block
        return self._to_placement(job_id, block), migrated

    # ---------------------------------------------------------- node faults
    @property
    def failed_nodes(self) -> list[int]:
        return sorted(self._failed_nodes)

    @property
    def usable_gpus(self) -> int:
        """GPUs not lost to failed nodes."""
        return self.total_gpus - len(self._failed_nodes) * self.spec.gpus_per_node

    def fail_node(self, node_index: int) -> list[str]:
        """Take a server offline, evicting every job that touched it.

        Evicted jobs lose their placement entirely (the scheduler re-places
        survivors at its next decision).  Returns the evicted job ids.

        Raises:
            PlacementError: If the node index is invalid or already failed.
        """
        if not 0 <= node_index < self.spec.n_nodes:
            raise PlacementError(f"node {node_index} out of range")
        if node_index in self._failed_nodes:
            raise PlacementError(f"node {node_index} is already failed")
        size = self.spec.gpus_per_node
        offset = node_index * size
        evicted = [
            job_id
            for job_id, block in self._blocks.items()
            if block.offset < offset + size and offset < block.offset + block.size
        ]
        for job_id in evicted:
            self.release(job_id)
        self._failed_nodes[node_index] = self._allocator.reserve_exact(offset, size)
        return sorted(evicted)

    def repair_node(self, node_index: int) -> None:
        """Bring a failed server back online.

        Raises:
            PlacementError: If the node is not currently failed.
        """
        block = self._failed_nodes.pop(node_index, None)
        if block is None:
            raise PlacementError(f"node {node_index} is not failed")
        self._allocator.free(block)

    # -------------------------------------------------------------- helpers
    def _ensure_block_available(self, n_gpus: int) -> list[str]:
        """Defragment by migration until a block of ``n_gpus`` exists.

        With healthy nodes the buddy guarantee makes this always succeed; a
        failed node pins its block in place, and in rare layouts the
        remaining space cannot host a large block even after migration — in
        that case a :class:`PlacementError` surfaces and the caller treats
        the job as unplaceable for now.
        """
        if self._allocator.can_allocate(n_gpus):
            return []
        try:
            plan = self._allocator.repack_plan(
                pinned=frozenset(self._failed_nodes.values())
            )
            self._allocator.apply_repack(plan)
        except AllocationError as exc:
            raise PlacementError(
                f"defragmentation cannot produce a {n_gpus}-GPU block: {exc}"
            ) from exc
        old_to_new = {old: new for old, new in plan.items()}
        migrated: list[str] = []
        for job, block in list(self._blocks.items()):
            if block in old_to_new:
                self._blocks[job] = old_to_new[block]
                migrated.append(job)
        if not self._allocator.can_allocate(n_gpus):
            raise PlacementError(
                f"defragmentation failed to produce a {n_gpus}-GPU block"
            )
        return sorted(migrated)

    def _to_placement(self, job_id: str, block: Block) -> JobPlacement:
        nodes = self.spec.nodes_spanned(block.gpu_indices)
        return JobPlacement(job_id=job_id, block=block, nodes_spanned=nodes)
