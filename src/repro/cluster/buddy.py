"""Buddy allocator over the cluster's GPU index space.

Classic binary buddy allocation: every block has a power-of-two size and is
aligned to its size, so a block of ``2^k`` GPUs is always an index-contiguous
subtree of the topology (maximally compact).  Free buddies coalesce on
release.  Allocation is best-fit by construction: a request is served by
splitting the *smallest* free block that fits, which is the paper's Best-Fit
heuristic specialised to power-of-two subtrees.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

from repro.errors import AllocationError, ConfigurationError
from repro.numeric import floor_power_of_two, is_power_of_two

__all__ = ["Block", "BuddyAllocator"]


@dataclass(frozen=True, order=True)
class Block:
    """A contiguous, size-aligned range of GPU indices."""

    offset: int
    size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size):
            raise ConfigurationError(f"block size must be a power of two: {self.size}")
        if self.offset < 0 or self.offset % self.size:
            raise ConfigurationError(
                f"block offset {self.offset} not aligned to size {self.size}"
            )

    @property
    def gpu_indices(self) -> list[int]:
        return list(range(self.offset, self.offset + self.size))

    @property
    def buddy_offset(self) -> int:
        return self.offset ^ self.size

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.offset}, {self.offset + self.size})"


class BuddyAllocator:
    """Binary buddy allocator over ``capacity`` GPU slots.

    Args:
        capacity: Total number of GPUs; must be a power of two.
    """

    def __init__(self, capacity: int) -> None:
        if not is_power_of_two(capacity):
            raise ConfigurationError(
                f"capacity must be a power of two, got {capacity}"
            )
        self.capacity = capacity
        self._free: dict[int, set[int]] = {}  # size -> set of free offsets
        self._allocated: set[Block] = set()
        self._free.setdefault(capacity, set()).add(0)

    # ----------------------------------------------------------- inspection
    @property
    def free_gpus(self) -> int:
        """Total number of unallocated GPUs."""
        return sum(size * len(offsets) for size, offsets in self._free.items())

    @property
    def allocated_gpus(self) -> int:
        return self.capacity - self.free_gpus

    @property
    def allocated_blocks(self) -> list[Block]:
        return sorted(self._allocated)

    def largest_free_block(self) -> int:
        """Size of the biggest allocatable block (0 when full)."""
        sizes = [size for size, offsets in self._free.items() if offsets]
        return max(sizes, default=0)

    def can_allocate(self, size: int) -> bool:
        """Whether a block of ``size`` can be carved out *without* migration."""
        if not is_power_of_two(size):
            return False
        return any(s >= size and offsets for s, offsets in self._free.items())

    # ------------------------------------------------------------- mutation
    def allocate(self, size: int) -> Block:
        """Carve out a block of exactly ``size`` GPUs (best-fit).

        Raises:
            AllocationError: When no free block is large enough (the caller
                may defragment via :meth:`repack_plan` and retry).
        """
        if not is_power_of_two(size):
            raise ConfigurationError(f"size must be a power of two, got {size}")
        if size > self.capacity:
            raise AllocationError(
                f"requested {size} GPUs from a {self.capacity}-GPU cluster"
            )
        candidates = sorted(
            s for s, offsets in self._free.items() if s >= size and offsets
        )
        if not candidates:
            raise AllocationError(
                f"no free block of size {size} "
                f"(free={self.free_gpus}, largest={self.largest_free_block()})"
            )
        current = candidates[0]
        offset = min(self._free[current])
        self._free[current].remove(offset)
        while current > size:
            current //= 2
            self._free.setdefault(current, set()).add(offset + current)
        block = Block(offset=offset, size=size)
        self._allocated.add(block)
        return block

    def free(self, block: Block) -> None:
        """Return a block and coalesce with its buddy chain.

        Raises:
            AllocationError: If the block is not currently allocated.
        """
        if block not in self._allocated:
            raise AllocationError(f"block {block} is not allocated")
        self._allocated.remove(block)
        offset, size = block.offset, block.size
        while size < self.capacity:
            buddy = offset ^ size
            peers = self._free.get(size, set())
            if buddy not in peers:
                break
            peers.remove(buddy)
            offset = min(offset, buddy)
            size *= 2
        self._free.setdefault(size, set()).add(offset)

    def reserve_exact(self, offset: int, size: int) -> Block:
        """Carve out one *specific* aligned block (e.g. a failed node).

        The target range must currently be free; callers evict overlapping
        allocations first.

        Raises:
            AllocationError: If any part of the range is allocated, or the
                target is not a valid aligned block.
        """
        target = Block(offset=offset, size=size)  # validates alignment
        for block in self._allocated:
            if block.offset < offset + size and offset < block.offset + block.size:
                raise AllocationError(
                    f"cannot reserve {target}: overlaps allocated {block}"
                )
        # Find the free block containing the range and split it down.
        container: tuple[int, int] | None = None
        for free_size, offsets in self._free.items():
            if free_size < size:
                continue
            for free_offset in offsets:
                if free_offset <= offset < free_offset + free_size:
                    container = (free_offset, free_size)
                    break
            if container:
                break
        if container is None:  # pragma: no cover - guarded by overlap check
            raise AllocationError(f"no free block contains {target}")
        free_offset, free_size = container
        self._free[free_size].remove(free_offset)
        while free_size > size:
            free_size //= 2
            if offset < free_offset + free_size:
                # Target is in the left half; release the right half.
                self._free.setdefault(free_size, set()).add(free_offset + free_size)
            else:
                # Target is in the right half; release the left half.
                self._free.setdefault(free_size, set()).add(free_offset)
                free_offset += free_size
        self._allocated.add(target)
        return target

    def shrink(self, block: Block, new_size: int) -> Block:
        """Shrink an allocated block in place, keeping its aligned prefix.

        Used for elastic scale-down: the job keeps its first ``new_size``
        GPUs, so no data moves.  The freed suffix is returned to the free
        lists as the standard buddy decomposition.

        Raises:
            AllocationError: If the block is not allocated or ``new_size``
                is not a smaller power of two.
        """
        if block not in self._allocated:
            raise AllocationError(f"block {block} is not allocated")
        if not is_power_of_two(new_size) or new_size >= block.size:
            raise AllocationError(
                f"cannot shrink {block} to {new_size}: need a smaller power of two"
            )
        self._allocated.remove(block)
        kept = Block(offset=block.offset, size=new_size)
        self._allocated.add(kept)
        size = new_size
        while size < block.size:
            self._free.setdefault(size, set()).add(block.offset + size)
            size *= 2
        return kept

    # -------------------------------------------------------------- defrag
    def repack_plan(
        self, *, pinned: frozenset[Block] | None = None
    ) -> dict[Block, Block]:
        """Compute a fragmentation-free re-layout of all allocations.

        Movable blocks are packed first-fit in descending size order onto
        aligned addresses, skipping ``pinned`` blocks (failed nodes, which
        cannot move).  With no pins this degenerates to prefix packing, so
        all free space ends up in one aligned tail and any request within
        the free GPU count succeeds afterwards.  Returns a mapping
        ``old block -> new block`` with unmoved blocks omitted.

        Raises:
            AllocationError: If the movable blocks cannot be packed around
                the pinned ones (only possible when pins fragment the space).
        """
        pins = pinned or frozenset()
        occupied: list[Block] = sorted(pins)
        plan: dict[Block, Block] = {}
        movable = sorted(
            self._allocated - pins, key=lambda b: (-b.size, b.offset)
        )
        for block in movable:
            address = self._first_fit(block.size, occupied)
            if address is None:
                raise AllocationError(
                    f"cannot repack {block} around pinned blocks {sorted(pins)}"
                )
            target = Block(offset=address, size=block.size)
            if target != block:
                plan[block] = target
            insort(occupied, target)
        return plan

    def _first_fit(self, size: int, occupied: list[Block]) -> int | None:
        """Lowest aligned address for a ``size`` block avoiding ``occupied``.

        ``occupied`` must be sorted by offset and non-overlapping.  Walks
        the blocks once instead of probing every aligned address: a
        candidate that overlaps a block cannot succeed before that block's
        end, so it jumps straight to the next aligned address past it.
        """
        address = 0
        for block in occupied:
            block_end = block.offset + block.size
            if block_end <= address:
                continue  # entirely before the candidate
            if address + size <= block.offset:
                return address  # gap before this block fits
            address = -(-block_end // size) * size  # round up to alignment
        if address + size <= self.capacity:
            return address
        return None

    def apply_repack(self, plan: dict[Block, Block]) -> None:
        """Apply a plan produced by :meth:`repack_plan`."""
        for old, new in plan.items():
            if old not in self._allocated:
                raise AllocationError(f"stale repack plan: {old} not allocated")
            if old.size != new.size:
                raise AllocationError(f"repack cannot resize {old} -> {new}")
        survivors = self._allocated - set(plan)
        moved = set(plan.values())
        overlap_check = sorted(
            [(b.offset, b.size) for b in survivors | moved]
        )
        cursor = 0
        for offset, size in overlap_check:
            if offset < cursor:
                raise AllocationError("repack plan produces overlapping blocks")
            cursor = offset + size
        self._allocated = survivors | moved
        self._rebuild_free_lists()

    def _rebuild_free_lists(self) -> None:
        """Recompute free lists from the allocated set (after repack)."""
        self._free = {}
        taken = sorted(self._allocated)
        cursor = 0
        gaps: list[tuple[int, int]] = []
        for block in taken:
            if block.offset > cursor:
                gaps.append((cursor, block.offset - cursor))
            cursor = block.offset + block.size
        if cursor < self.capacity:
            gaps.append((cursor, self.capacity - cursor))
        for start, length in gaps:
            self._add_gap(start, length)

    def _add_gap(self, start: int, length: int) -> None:
        """Split an arbitrary gap into maximal aligned power-of-two blocks."""
        while length > 0:
            size = start & -start if start else length
            if not size:
                size = length
            while size > length:
                size //= 2
            largest = floor_power_of_two(length)
            size = min(size, largest)
            self._free.setdefault(size, set()).add(start)
            start += size
            length -= size
